//! Integration tests for the telemetry subsystem: the metrics registry
//! must agree with the transfer ledger (one truth, two views), and the
//! threaded and modeled executors must produce identical transfer-count
//! and byte metrics on matched scenarios.

use insitu::{
    concurrent_scenario, pattern_pairs, run_modeled_with, run_threaded_with, sequential_scenario,
    MappingStrategy,
};
use insitu_fabric::{Locality, TrafficClass};
use insitu_telemetry::{MetricsSnapshot, Recorder};

fn fabric_counter(snap: &MetricsSnapshot, kind: &str, class: TrafficClass, loc: Locality) -> u64 {
    snap.counter(&format!("fabric.{kind}.{}.{}", class.slug(), loc.slug()))
}

#[test]
fn threaded_byte_counters_equal_ledger_totals() {
    let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(2);
    s.cores_per_node = 4;
    let rec = Recorder::enabled();
    let o = run_threaded_with(&s, MappingStrategy::DataCentric, &rec);
    assert_eq!(o.verify_failures, 0);
    let snap = rec.metrics_snapshot();
    for class in TrafficClass::ALL {
        assert_eq!(
            fabric_counter(&snap, "bytes", class, Locality::SharedMemory),
            o.ledger.shm_bytes(class),
            "{class:?} shm"
        );
        assert_eq!(
            fabric_counter(&snap, "bytes", class, Locality::Network),
            o.ledger.network_bytes(class),
            "{class:?} net"
        );
    }
    // The dart layer saw every transfer the ledger saw.
    let transfers: u64 = TrafficClass::ALL
        .iter()
        .flat_map(|&c| Locality::ALL.iter().map(move |&l| (c, l)))
        .map(|(c, l)| fabric_counter(&snap, "transfers", c, l))
        .sum();
    assert_eq!(
        snap.counter("dart.transport.shm") + snap.counter("dart.transport.net"),
        transfers,
        "dart transport selections must cover every ledger record"
    );
    assert!(snap.counter("cods.put") > 0);
    assert!(snap.counter("cods.get") > 0);
}

#[test]
fn threaded_and_modeled_emit_identical_transfer_metrics() {
    // Matched blocked/blocked patterns, both coupling shapes: the two
    // executors must agree transfer-for-transfer, not just byte-for-byte.
    for (label, mut s) in [
        (
            "concurrent",
            concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]),
        ),
        (
            "sequential",
            sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]),
        ),
    ] {
        s.cores_per_node = 4;
        let s = s.with_iterations(2);
        for strategy in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
            let rec_t = Recorder::enabled();
            let rec_m = Recorder::enabled();
            let t = run_threaded_with(&s, strategy, &rec_t);
            run_modeled_with(&s, strategy, &rec_m);
            assert_eq!(t.verify_failures, 0);
            let st = rec_t.metrics_snapshot();
            let sm = rec_m.metrics_snapshot();
            for class in [TrafficClass::InterApp, TrafficClass::IntraApp] {
                for loc in Locality::ALL {
                    for kind in ["bytes", "transfers"] {
                        assert_eq!(
                            fabric_counter(&st, kind, class, loc),
                            fabric_counter(&sm, kind, class, loc),
                            "{label} {strategy:?} fabric.{kind}.{}.{}",
                            class.slug(),
                            loc.slug()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn trace_exports_are_valid_and_disabled_recorders_stay_empty() {
    let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
    s.cores_per_node = 4;
    let rec = Recorder::enabled();
    run_threaded_with(&s, MappingStrategy::RoundRobin, &rec);
    let trace = rec.trace_json();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("workflow.execute"));
    let metrics = rec.metrics_json();
    assert!(metrics.starts_with('{') && metrics.ends_with('}'));
    // A disabled recorder run must leave no residue and cost no metrics.
    let off = Recorder::disabled();
    run_threaded_with(&s, MappingStrategy::RoundRobin, &off);
    assert!(off.metrics_snapshot().counters.is_empty());
    assert_eq!(
        off.trace_json(),
        "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\",\"droppedSpans\":0}"
    );
}
