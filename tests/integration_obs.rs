//! Integration tests for the causal flight recorder and critical-path
//! profiler: category attribution must sum to the measured end-to-end
//! iteration time on BOTH executors (the acceptance bound is 5%), every
//! consumer pull must have a chrome-trace flow pair back to its producer
//! put, and the regression gate must trip on a synthetic 2× slowdown
//! (the chaos link-fault path is covered by the CLI crate's
//! `integration_gate` test).

use insitu::{
    concurrent_scenario, pattern_pairs, run_modeled_configured, run_threaded_configured,
    sequential_scenario, MappingStrategy, ModeledConfig, ThreadedConfig,
};
use insitu_obs::{
    chrome_trace_with_flows, gate_compare, profile_doc, EventKind, FlightRecorder, GateConfig,
    ProfileReport,
};
use insitu_telemetry::{Json, Recorder};

fn two_app_cont() -> insitu::Scenario {
    // The two-app `*_cont` coupling the CI example also runs.
    let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(3);
    s.cores_per_node = 4;
    s
}

fn run_threaded_flight(s: &insitu::Scenario) -> FlightRecorder {
    let flight = FlightRecorder::enabled();
    let cfg = ThreadedConfig {
        flight: flight.clone(),
        ..Default::default()
    };
    let o = run_threaded_configured(s, MappingStrategy::DataCentric, &Recorder::disabled(), &cfg);
    assert_eq!(o.verify_failures, 0);
    flight
}

#[test]
fn threaded_categories_sum_within_five_percent() {
    let s = two_app_cont();
    let flight = run_threaded_flight(&s);
    let report = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
    assert_eq!(report.dropped, 0);
    assert_eq!(report.iterations.len(), 3, "one profile per version");
    for it in &report.iterations {
        let cov = it.coverage();
        assert!(
            (cov - 1.0).abs() <= 0.05,
            "version {}: categories cover {:.1}% of end-to-end ({:?} vs {} us)",
            it.version,
            cov * 100.0,
            it.breakdown,
            it.end_to_end_us
        );
    }
}

#[test]
fn modeled_categories_sum_exactly() {
    let mut s = sequential_scenario(16, 8, 8, 8, pattern_pairs(&[4, 4, 4])[0]).with_iterations(2);
    s.cores_per_node = 4;
    let flight = FlightRecorder::enabled();
    let cfg = ModeledConfig {
        flight: flight.clone(),
        ..Default::default()
    };
    run_modeled_configured(
        &s,
        MappingStrategy::DataCentric,
        &Recorder::disabled(),
        &cfg,
    );
    let report = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
    assert_eq!(report.iterations.len(), 2);
    for it in &report.iterations {
        // The synthetic layout makes attribution exact, not just within 5%.
        assert!(
            (it.coverage() - 1.0).abs() < 1e-9,
            "version {}: {:?} vs {}",
            it.version,
            it.breakdown,
            it.end_to_end_us
        );
        assert_eq!(it.breakdown.wait_us, 0.0, "model has no queueing wait");
    }
    // The cold iteration pays the DHT schedule query; warm ones replay
    // the cached schedule, exactly as the threaded executor does.
    assert!(report.iterations[0].breakdown.schedule_us > 0.0);
    assert_eq!(report.iterations[1].breakdown.schedule_us, 0.0);
}

#[test]
fn every_pull_has_a_flow_pair_to_its_put() {
    let s = two_app_cont();
    let flight = run_threaded_flight(&s);
    let events = flight.snapshot();
    let pulls = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Pull { .. }))
        .count();
    assert!(pulls > 0);

    // Round-trip the rendered chrome trace through the JSON parser and
    // check the flow arrows pair up producer put -> consumer pull.
    let doc = chrome_trace_with_flows(None, &events, flight.dropped());
    let parsed = Json::parse(&doc.render()).expect("chrome trace parses");
    let trace = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    let ids = |ph: &str| -> Vec<u64> {
        let mut v: Vec<u64> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .map(|e| e.get("id").and_then(Json::as_u64).unwrap())
            .collect();
        v.sort_unstable();
        v
    };
    let starts = ids("s");
    let finishes = ids("f");
    assert_eq!(starts, finishes, "every flow start has a finish");
    assert_eq!(
        starts.len(),
        pulls,
        "every consumer pull is connected to its producer put"
    );
    // Flow ids are the pull event seqs — each appears exactly once.
    let mut dedup = starts.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), starts.len());
}

#[test]
fn gate_trips_on_synthetic_two_x_slowdown() {
    // The gate is fed the modeled executor's real profile numbers; the
    // chaos-spec path (link faults degrading the torus until the gate
    // exits nonzero) is exercised end-to-end in the CLI crate's
    // `integration_gate` test. Here the compare machinery itself must
    // flag a literal 2x slowdown of every metric.
    let mut s = sequential_scenario(16, 8, 8, 8, pattern_pairs(&[4, 4, 4])[0]);
    s.cores_per_node = 4;
    let rows_for = || {
        let flight = FlightRecorder::enabled();
        let o = run_modeled_configured(
            &s,
            MappingStrategy::DataCentric,
            &Recorder::disabled(),
            &ModeledConfig {
                flight: flight.clone(),
                ..Default::default()
            },
        );
        let report = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
        let mut rows: Vec<(String, f64)> = o
            .retrieve_ms
            .iter()
            .map(|(app, ms)| (format!("retrieve_ms.app{app}"), *ms))
            .collect();
        rows.push(("profile.e2e_us".into(), report.end_to_end_total_us()));
        rows
    };
    let rows = rows_for();
    assert!(rows.iter().all(|(_, v)| *v > 0.0));
    let baseline = profile_doc("gate", "test", &rows);

    // Healthy rerun: the modeled executor is deterministic, so the
    // regenerated document is bit-identical and the gate passes.
    let healthy = profile_doc("gate", "test", &rows_for());
    let out = gate_compare(&healthy, &baseline, &GateConfig::default()).unwrap();
    assert!(out.passed(), "healthy rerun regressed: {}", out.render());

    // Every metric at 2x: all rows sit far past the 10% threshold, so
    // every one must be flagged and the gate must fail.
    let doubled: Vec<(String, f64)> = rows.iter().map(|(k, v)| (k.clone(), v * 2.0)).collect();
    let slowed = profile_doc("gate", "test", &doubled);
    let out = gate_compare(&slowed, &baseline, &GateConfig::default()).unwrap();
    assert!(!out.passed(), "2x slowdown not caught: {}", out.render());
    assert_eq!(
        out.render().matches("REGRESSION").count(),
        rows.len(),
        "every doubled metric is flagged: {}",
        out.render()
    );
}

#[test]
fn threaded_and_modeled_profiles_share_schema() {
    // The same analysis must read both executors' logs: identical JSON
    // document shape, same link-class table keys.
    let s = two_app_cont();
    let flight_t = run_threaded_flight(&s);
    let flight_m = FlightRecorder::enabled();
    run_modeled_configured(
        &s,
        MappingStrategy::DataCentric,
        &Recorder::disabled(),
        &ModeledConfig {
            flight: flight_m.clone(),
            ..Default::default()
        },
    );
    for flight in [flight_t, flight_m] {
        let report = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
        let json = ProfileReport::analyze(&flight.snapshot(), flight.dropped())
            .to_json()
            .render();
        let parsed = Json::parse(&json).unwrap();
        assert!(parsed.get("iterations").and_then(Json::as_arr).is_some());
        assert!(parsed.get("links").is_some());
        assert!(!report.iterations.is_empty());
    }
}
