//! Multi-stage pipelines: workflows deeper than the paper's two scenarios
//! — chains and diamonds of sequentially coupled applications, exercising
//! wave-by-wave enactment, node reuse and multiple couplings in flight.

use insitu::{run_threaded, CouplingSpec, MappingStrategy, Scenario};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{NetworkModel, TrafficClass};
use insitu_workflow::{AppSpec, WorkflowSpec};

fn blocked(domain: &[u64], grid: &[u64]) -> Decomposition {
    Decomposition::new(
        BoundingBox::from_sizes(domain),
        ProcessGrid::new(grid),
        Distribution::Blocked,
    )
}

/// A -> B -> C -> D chain: each stage stages its output in CoDS for the
/// next.
fn chain_scenario() -> Scenario {
    let domain = [12u64, 12, 12];
    let apps = vec![
        AppSpec::new(1, "A", 8).with_decomposition(blocked(&domain, &[2, 2, 2])),
        AppSpec::new(2, "B", 8).with_decomposition(blocked(&domain, &[2, 2, 2])),
        AppSpec::new(3, "C", 4).with_decomposition(blocked(&domain, &[4, 1, 1])),
        AppSpec::new(4, "D", 8).with_decomposition(blocked(&domain, &[1, 2, 4])),
    ];
    let workflow = WorkflowSpec {
        apps,
        edges: vec![(1, 2), (2, 3), (3, 4)],
        bundles: vec![],
    };
    let mk = |var: &str, p: u32, c: u32| CouplingSpec {
        var: var.into(),
        producer_app: p,
        consumer_apps: vec![c],
        concurrent: false,
        region: None,
    };
    Scenario {
        name: "four-stage pipeline".into(),
        cores_per_node: 4,
        workflow,
        couplings: vec![mk("stage1", 1, 2), mk("stage2", 2, 3), mk("stage3", 3, 4)],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    }
}

#[test]
fn four_stage_chain_executes_in_order() {
    let s = chain_scenario();
    let waves = s.workflow.bundle_waves().unwrap();
    assert_eq!(waves.len(), 4);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    // Each coupling moved the full domain once: 3 stages.
    let domain_bytes = 12u64 * 12 * 12 * 8;
    assert_eq!(
        o.ledger.total_bytes(TrafficClass::InterApp),
        3 * domain_bytes
    );
    // Gets per stage: B 8, C 4, D 8.
    assert_eq!(o.reports.len(), 20);
}

#[test]
fn chain_under_round_robin_also_correct() {
    let o = run_threaded(&chain_scenario(), MappingStrategy::RoundRobin);
    assert_eq!(o.verify_failures, 0);
}

#[test]
fn four_dimensional_domain_coupling() {
    // Time-augmented 4-D domain (x, y, z, t): the framework's MAX_DIMS
    // case, end to end through SFC indexing, DHT and redistribution.
    let domain = [6u64, 6, 6, 4];
    let apps = vec![
        AppSpec::new(1, "sim4d", 8).with_decomposition(blocked(&domain, &[2, 2, 2, 1])),
        AppSpec::new(2, "ana4d", 4).with_decomposition(blocked(&domain, &[1, 1, 1, 4])),
    ];
    let workflow = WorkflowSpec {
        apps,
        edges: vec![],
        bundles: vec![vec![1, 2]],
    };
    let s = Scenario {
        name: "4-D coupling".into(),
        cores_per_node: 4,
        workflow,
        couplings: vec![CouplingSpec {
            var: "spacetime".into(),
            producer_app: 1,
            consumer_apps: vec![2],
            concurrent: true,
            region: None,
        }],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    };
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    assert_eq!(
        o.ledger.total_bytes(TrafficClass::InterApp),
        6 * 6 * 6 * 4 * 8
    );
}

/// Diamond: A feeds B and C (concurrently), both feed D.
#[test]
fn diamond_with_concurrent_middle_wave() {
    let domain = [8u64, 8, 8];
    let apps = vec![
        AppSpec::new(1, "src", 8).with_decomposition(blocked(&domain, &[2, 2, 2])),
        AppSpec::new(2, "left", 4).with_decomposition(blocked(&domain, &[4, 1, 1])),
        AppSpec::new(3, "right", 4).with_decomposition(blocked(&domain, &[1, 4, 1])),
        AppSpec::new(4, "sink", 8).with_decomposition(blocked(&domain, &[2, 2, 2])),
    ];
    let workflow = WorkflowSpec {
        apps,
        edges: vec![(1, 2), (1, 3), (2, 4), (3, 4)],
        bundles: vec![],
    };
    let s = Scenario {
        name: "diamond".into(),
        cores_per_node: 4,
        workflow,
        couplings: vec![
            CouplingSpec {
                var: "src_out".into(),
                producer_app: 1,
                consumer_apps: vec![2, 3],
                concurrent: false,
                region: None,
            },
            CouplingSpec {
                var: "left_out".into(),
                producer_app: 2,
                consumer_apps: vec![4],
                concurrent: false,
                region: None,
            },
            CouplingSpec {
                var: "right_out".into(),
                producer_app: 3,
                consumer_apps: vec![4],
                concurrent: false,
                region: None,
            },
        ],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    };
    // Waves: [src], [left, right], [sink].
    let waves = s.workflow.bundle_waves().unwrap();
    assert_eq!(waves.len(), 3);
    assert_eq!(waves[1].len(), 2);

    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    let domain_bytes = 8u64 * 8 * 8 * 8;
    // src_out read twice, left_out once, right_out once.
    assert_eq!(
        o.ledger.total_bytes(TrafficClass::InterApp),
        4 * domain_bytes
    );
    // Sink consumed two different variables, 8 gets each.
    let sink_gets = o.reports.iter().filter(|(a, _, _)| *a == 4).count();
    assert_eq!(sink_gets, 16);
}
