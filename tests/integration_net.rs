//! End-to-end test of the socketized workflow server: `insitu launch`
//! forks real joiner processes over loopback, runs the mixed
//! concurrent + sequential distrib workflow, and certifies the merged
//! transfer ledger byte-identical to the single-process executor. Also
//! covers the fail-fast paths: a joiner pointed at a dead address and a
//! launch whose `--procs` does not fit the workflow.

use std::path::PathBuf;
use std::process::Command;

fn workflow_path(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../workflows")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn insitu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_insitu"))
}

#[test]
fn launch_runs_distributed_workflow_with_identical_ledger() {
    let ledger = std::env::temp_dir().join("insitu_integration_launch_ledger.json");
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            "--timeout-ms",
            "60000",
            "--ledger-out",
            ledger.to_str().unwrap(),
        ])
        .output()
        .expect("spawn insitu launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "launch failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("byte-identical to the single-process run"),
        "{stdout}"
    );
    assert!(stdout.contains("verified:  0 cell mismatches"), "{stdout}");
    let body = std::fs::read_to_string(&ledger).expect("ledger JSON written");
    assert!(body.contains("\"inter_app.shm\""), "{body}");
    std::fs::remove_file(&ledger).unwrap();
}

#[test]
fn join_exits_nonzero_fast_when_server_unreachable() {
    // Bind-then-drop reserves an address nothing listens on.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    let out = insitu()
        .args([
            "join",
            "--connect",
            &addr,
            "--node",
            "0",
            "--timeout-ms",
            "300",
        ])
        .output()
        .expect("spawn insitu join");
    assert!(!out.status.success(), "join must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&addr),
        "error must name the address: {stderr}"
    );
}

#[test]
fn launch_rejects_mismatched_proc_count() {
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "5",
        ])
        .output()
        .expect("spawn insitu launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--procs 5"), "{stderr}");
    assert!(stderr.contains("3 processes"), "{stderr}");
}
