//! End-to-end test of the socketized workflow server: `insitu launch`
//! forks real joiner processes over loopback, runs the mixed
//! concurrent + sequential distrib workflow, and certifies the merged
//! transfer ledger byte-identical to the single-process executor — in
//! star mode and in `--p2p` reactor mode (where zero `PullData` frames
//! may traverse the hub). Also covers the fail-fast paths (a joiner
//! pointed at a dead address, a launch whose `--procs` does not fit the
//! workflow) and a reactor soak: 64 concurrent connections served with
//! O(1) threads per process.

use std::path::PathBuf;
use std::process::Command;

fn workflow_path(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../workflows")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn insitu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_insitu"))
}

#[test]
fn launch_runs_distributed_workflow_with_identical_ledger() {
    let ledger = std::env::temp_dir().join("insitu_integration_launch_ledger.json");
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            "--timeout-ms",
            "60000",
            "--ledger-out",
            ledger.to_str().unwrap(),
        ])
        .output()
        .expect("spawn insitu launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "launch failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("byte-identical to the single-process run"),
        "{stdout}"
    );
    assert!(stdout.contains("verified:  0 cell mismatches"), "{stdout}");
    let body = std::fs::read_to_string(&ledger).expect("ledger JSON written");
    assert!(body.contains("\"inter_app.shm\""), "{body}");
    std::fs::remove_file(&ledger).unwrap();
}

#[test]
fn launch_p2p_keeps_ledger_identical_and_hub_data_free() {
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            "--timeout-ms",
            "60000",
            "--p2p",
        ])
        .output()
        .expect("spawn insitu launch --p2p");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "launch --p2p failed:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("byte-identical to the single-process run"),
        "{stdout}"
    );
    assert!(
        stdout.contains("p2p:       0 PullData / 0 SubPush frames through the hub"),
        "{stdout}"
    );
    assert!(stdout.contains("verified:  0 cell mismatches"), "{stdout}");
}

/// Pull the three counters out of launch's greppable census line:
/// `shm: <frames> shared-memory frame event(s), <hub> PullData through
/// the hub, <fallbacks> fallback(s)`.
fn parse_shm_census(stdout: &str) -> (u64, u64, u64) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("shm:"))
        .unwrap_or_else(|| panic!("no shm census line in:\n{stdout}"));
    let mut nums = line
        .split_whitespace()
        .filter_map(|w| w.parse::<u64>().ok());
    (
        nums.next().expect("frame count"),
        nums.next().expect("hub pull count"),
        nums.next().expect("fallback count"),
    )
}

/// The PR 9 tentpole, end to end over real processes: every launch
/// process shares this host, so with the shared-memory plane on (the
/// default) all cross-node `PullData` must ride `/dev/shm` segments —
/// zero data frames on the loopback socket — while the merged ledger
/// stays byte-identical to the single-process run (transport is
/// physical, the ledger's locality accounting is simulated placement).
#[test]
fn launch_routes_same_host_pull_data_through_shared_memory() {
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            // Round-robin mapping forces cross-node coupling pulls, so
            // the shm plane carries real traffic.
            "--strategy",
            "round-robin",
            "--timeout-ms",
            "60000",
        ])
        .output()
        .expect("spawn insitu launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "launch failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("byte-identical to the single-process run"),
        "{stdout}"
    );
    assert!(stdout.contains("verified:  0 cell mismatches"), "{stdout}");
    let (frames, hub_pulls, fallbacks) = parse_shm_census(&stdout);
    assert!(frames > 0, "no PullData rode shared memory:\n{stdout}");
    assert_eq!(hub_pulls, 0, "PullData leaked onto the socket:\n{stdout}");
    assert_eq!(fallbacks, 0, "unexpected TCP fallback:\n{stdout}");
}

/// `--no-shm` is the escape hatch: the same workflow must complete with
/// the identical ledger over the plain socket path, and the census line
/// must say the plane was off rather than silently vanish.
#[test]
fn launch_no_shm_falls_back_to_the_socket_with_identical_ledger() {
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            "--strategy",
            "round-robin",
            "--timeout-ms",
            "60000",
            "--no-shm",
        ])
        .output()
        .expect("spawn insitu launch --no-shm");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "launch --no-shm failed:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("byte-identical to the single-process run"),
        "{stdout}"
    );
    assert!(
        stdout.contains("shm:       disabled (--no-shm)"),
        "{stdout}"
    );
}

/// OS thread count of this process, from `/proc/self/status`.
fn os_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn reactor_soaks_64_connections_with_constant_threads() {
    use insitu_fabric::FaultInjector;
    use insitu_net::{ConnEvent, Frame, NetMetrics, Reactor};
    use insitu_telemetry::Recorder;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const CONNS: usize = 64;
    const FRAMES_PER_CONN: usize = 50;

    let metrics = NetMetrics::new(&Recorder::disabled());
    let before = os_threads();

    // Server: one reactor echoing every frame straight back.
    let server = Reactor::spawn("soak-server", FaultInjector::none(), metrics.clone())
        .expect("spawn server reactor");
    let handle = server.handle();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    {
        let echo = handle.clone();
        handle.add_listener(
            listener,
            Box::new(move |token, _| {
                let echo = echo.clone();
                Box::new(move |event| {
                    if let ConnEvent::Frame(f) = event {
                        echo.send(token, f);
                    }
                })
            }),
        );
    }

    // Clients: one more reactor owning all 64 outbound connections; a
    // shared counter tracks echoed frames.
    let echoed = Arc::new(AtomicU64::new(0));
    let client = Reactor::spawn("soak-client", FaultInjector::none(), metrics.clone())
        .expect("spawn client reactor");
    let chandle = client.handle();
    let mut tokens = Vec::new();
    for _ in 0..CONNS {
        let stream = std::net::TcpStream::connect(addr).expect("dial soak server");
        let token = chandle.alloc_token();
        let echoed = Arc::clone(&echoed);
        chandle.add_stream(
            token,
            stream,
            Box::new(move |event| {
                if let ConnEvent::Frame(_) = event {
                    echoed.fetch_add(1, Ordering::Relaxed);
                }
            }),
        );
        tokens.push(token);
    }
    for round in 0..FRAMES_PER_CONN {
        for &token in &tokens {
            chandle.send(token, Frame::RunWave { wave: round as u32 });
        }
    }

    let expected = (CONNS * FRAMES_PER_CONN) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while echoed.load(Ordering::Relaxed) < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        echoed.load(Ordering::Relaxed),
        expected,
        "every frame must come back within the deadline"
    );

    // The tentpole claim: 64 live connections in each direction, yet
    // thread count stays O(1) per process — two reactor loops and their
    // wake plumbing, not a thread (or two) per connection.
    let during = os_threads();
    let added = during.saturating_sub(before);
    assert!(
        added <= 8,
        "64 connections added {added} threads (before {before}, during {during}); \
         a thread-per-peer transport would have added >= 64"
    );

    client.shutdown();
    server.shutdown();
}

#[test]
fn join_exits_nonzero_fast_when_server_unreachable() {
    // Bind-then-drop reserves an address nothing listens on.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    let out = insitu()
        .args([
            "join",
            "--connect",
            &addr,
            "--node",
            "0",
            "--timeout-ms",
            "300",
        ])
        .output()
        .expect("spawn insitu join");
    assert!(!out.status.success(), "join must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&addr),
        "error must name the address: {stderr}"
    );
}

#[test]
fn launch_rejects_mismatched_proc_count() {
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "5",
        ])
        .output()
        .expect("spawn insitu launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--procs 5"), "{stderr}");
    assert!(stderr.contains("3 processes"), "{stderr}");
}
