//! End-to-end test of the `insitu compare --gate` path: writing a
//! baseline from a healthy modeled run, passing a healthy re-comparison,
//! and exiting with failure once the chaos `link-slow` fault spec
//! degrades the torus (each hit link is slowed 2-8x, so retrieve times
//! and the profiled critical path regress past the threshold).

use std::path::PathBuf;

use insitu_chaos::FaultSpec;
use insitu_cli::{gate, GateOptions};

fn workflow_file(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../workflows")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn healthy_options() -> GateOptions {
    GateOptions {
        baseline: None,
        threshold_pct: 10.0,
        faults: None,
        seed: 42,
        write_baseline: None,
    }
}

#[test]
fn gate_fails_under_chaos_link_slowdown() {
    let dag = workflow_file("online.dag");
    let config = workflow_file("online.cfg");
    let baseline_path =
        std::env::temp_dir().join(format!("insitu-gate-baseline-{}.json", std::process::id()));

    // Step 1: record the healthy baseline (what CI checks in).
    let opts = GateOptions {
        write_baseline: Some(baseline_path.clone()),
        ..healthy_options()
    };
    let (out, passed) = gate(&dag, &config, &opts).expect("baseline run");
    assert!(passed, "writing a baseline never fails the gate: {out}");
    assert!(out.contains("baseline written"));

    // Step 2: a healthy rerun against that baseline passes — the modeled
    // gate document is deterministic, so the comparison is bit-exact.
    let opts = GateOptions {
        baseline: Some(baseline_path.clone()),
        ..healthy_options()
    };
    let (out, passed) = gate(&dag, &config, &opts).expect("healthy compare");
    assert!(passed, "healthy rerun regressed: {out}");
    assert!(out.contains("PASS"), "gate table reports PASS rows: {out}");

    // Step 3: the chaos link-fault spec at rate 1.0 slows every torus
    // link by a seeded 2-8x factor; the gate must catch the regression.
    let opts = GateOptions {
        baseline: Some(baseline_path.clone()),
        faults: Some(FaultSpec::parse("link-slow:1.0").expect("spec parses")),
        ..healthy_options()
    };
    let (out, passed) = gate(&dag, &config, &opts).expect("faulted compare");
    assert!(!passed, "chaos link slowdown not caught: {out}");
    assert!(out.contains("torus links degraded"), "{out}");
    assert!(out.contains("REGRESSION"), "{out}");

    std::fs::remove_file(&baseline_path).ok();
}
