//! Failure injection: the framework's error paths under missing
//! producers, uncovered queries, staging exhaustion and malformed inputs.

use insitu_cli::{build_scenario, CliError};
use insitu_cods::{var_id, CodsConfig, CodsError, CodsSpace, Dht, LocationEntry};
use insitu_dart::DartRuntime;
use insitu_domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use std::sync::Arc;
use std::time::Duration;

fn small_space(staging_limit: Option<u64>) -> Arc<CodsSpace> {
    let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
    CodsSpace::new(
        dart,
        dht,
        CodsConfig {
            get_timeout: Duration::from_millis(50),
            staging_limit_per_node: staging_limit,
            ..Default::default()
        },
    )
}

#[test]
fn dead_producer_surfaces_as_timeout() {
    let space = small_space(None);
    // The DHT advertises a piece whose producer never registered the
    // buffer (crashed between DHT insert and registration).
    let b = BoundingBox::from_sizes(&[4, 4]);
    space.dht().insert(
        var_id("orphan"),
        0,
        LocationEntry {
            bbox: b,
            owner: 3,
            piece: 0,
        },
    );
    let err = space.get_seq(0, 1, "orphan", 0, &b).unwrap_err();
    assert!(matches!(err, CodsError::Timeout { owner: 3, .. }));
    // The error display names the variable, version and the owner rank
    // that failed to serve the piece — the reproducer's first suspect.
    let msg = err.to_string();
    assert!(msg.contains("v0"), "{msg}");
    assert!(msg.contains("from client 3"), "{msg}");
}

#[test]
fn partially_produced_domain_is_incomplete() {
    let space = small_space(None);
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[8, 8]),
        ProcessGrid::new(&[2, 2]),
        Distribution::Blocked,
    );
    // Only 3 of 4 producers ever put.
    for r in 0..3u64 {
        let piece = dec.blocked_box(r).unwrap();
        let data = layout::fill_with(&piece, |p| p[0] as f64);
        space
            .put_seq(r as u32, 1, "partial", 0, 0, &piece, &data)
            .unwrap();
    }
    let err = space
        .get_seq(0, 2, "partial", 0, &BoundingBox::from_sizes(&[8, 8]))
        .unwrap_err();
    assert_eq!(err, CodsError::IncompleteCover { missing_cells: 16 });
}

#[test]
fn get_of_sub_region_avoids_the_missing_producer() {
    // Same partial production, but a query confined to the produced part
    // succeeds — failures are scoped to the data actually needed.
    let space = small_space(None);
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[8, 8]),
        ProcessGrid::new(&[2, 2]),
        Distribution::Blocked,
    );
    for r in 0..3u64 {
        let piece = dec.blocked_box(r).unwrap();
        let data = layout::fill_with(&piece, |p| p[0] as f64);
        space
            .put_seq(r as u32, 1, "partial2", 0, 0, &piece, &data)
            .unwrap();
    }
    let ok_region = dec.blocked_box(0).unwrap();
    let (data, _) = space.get_seq(1, 2, "partial2", 0, &ok_region).unwrap();
    assert_eq!(data.len() as u128, ok_region.num_cells());
}

#[test]
fn staging_exhaustion_blocks_put_not_get() {
    let space = small_space(Some(256));
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[8, 8]),
        ProcessGrid::new(&[2, 2]),
        Distribution::Blocked,
    );
    let piece = |r: u64| dec.blocked_box(r).unwrap(); // 16 cells = 128 B each
    let data = |r: u64| layout::fill_with(&piece(r), |p| p[1] as f64);
    // Clients 0 and 1 live on node 0 (2 cores/node): two puts fill it.
    space
        .put_seq(0, 1, "mem", 0, 0, &piece(0), &data(0))
        .unwrap();
    space
        .put_seq(1, 1, "mem", 0, 0, &piece(1), &data(1))
        .unwrap();
    let err = space
        .put_seq(0, 1, "mem", 1, 0, &piece(0), &data(0))
        .unwrap_err();
    assert!(matches!(err, CodsError::StagingFull { node: 0, .. }));
    // Node 1 still has room.
    space
        .put_seq(2, 1, "mem", 0, 0, &piece(2), &data(2))
        .unwrap();
    // Reads of already-staged data still work.
    let (got, _) = space.get_seq(3, 2, "mem", 0, &piece(0)).unwrap();
    assert_eq!(got, data(0));
}

#[test]
fn staging_limit_boundary_is_exact() {
    // Two clients per node, 128 B per piece: a 256 B limit fits exactly
    // two pieces. Landing exactly *at* the limit succeeds; one byte past
    // fails with the typed error, naming the node and its usage.
    let space = small_space(Some(256));
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[8, 8]),
        ProcessGrid::new(&[2, 2]),
        Distribution::Blocked,
    );
    let piece = |r: u64| dec.blocked_box(r).unwrap(); // 16 cells = 128 B
    let data = |r: u64| layout::fill_with(&piece(r), |p| p[0] as f64);
    space
        .put_seq(0, 1, "edge", 0, 0, &piece(0), &data(0))
        .unwrap();
    assert_eq!(space.staging_bytes(0), 128);
    // Exactly at the limit: allowed.
    space
        .put_seq(1, 1, "edge", 0, 1, &piece(1), &data(1))
        .unwrap();
    assert_eq!(space.staging_bytes(0), 256);
    // One past: typed failure carrying the accounting.
    let err = space
        .put_seq(0, 1, "edge", 1, 0, &piece(0), &data(0))
        .unwrap_err();
    match err {
        CodsError::StagingFull { node, used, limit } => {
            assert_eq!(node, 0);
            assert_eq!(used, 256);
            assert_eq!(limit, 256);
        }
        other => panic!("expected StagingFull, got {other:?}"),
    }
}

#[test]
fn eviction_frees_staging_in_version_order() {
    let space = small_space(Some(256));
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[8, 8]),
        ProcessGrid::new(&[2, 2]),
        Distribution::Blocked,
    );
    let piece = |r: u64| dec.blocked_box(r).unwrap();
    let data = |r: u64| layout::fill_with(&piece(r), |p| p[1] as f64);
    // Fill node 0 with versions 0 and 1 of the same variable.
    space
        .put_seq(0, 1, "ring", 0, 0, &piece(0), &data(0))
        .unwrap();
    space
        .put_seq(1, 1, "ring", 1, 1, &piece(1), &data(1))
        .unwrap();
    let err = space
        .put_seq(0, 1, "ring", 2, 0, &piece(0), &data(0))
        .unwrap_err();
    assert!(matches!(err, CodsError::StagingFull { node: 0, .. }));
    // Evicting the *oldest* version (the producer reclaim order) frees
    // exactly its bytes and unblocks the next put; the newer version
    // stays readable.
    space.evict_version("ring", 0);
    assert_eq!(space.staging_bytes(0), 128);
    assert!(space.get_seq(3, 2, "ring", 0, &piece(0)).is_err());
    space
        .put_seq(0, 1, "ring", 2, 0, &piece(0), &data(0))
        .unwrap();
    assert_eq!(space.staging_bytes(0), 256);
    let (got, _) = space.get_seq(3, 2, "ring", 1, &piece(1)).unwrap();
    assert_eq!(got, data(1));
    assert_eq!(space.latest_version("ring"), Some(2));
}

#[test]
fn cli_rejects_structurally_broken_inputs() {
    // DAG references a bundle app that was never declared.
    let bad_dag = "APP_ID 1\nBUNDLE 1 2\n";
    let cfg = "DOMAIN 8 8\nAPP 1 GRID 2 2 DIST blocked\n";
    let err = build_scenario(bad_dag, cfg).unwrap_err();
    assert!(matches!(err, CliError::Mismatch(_)), "{err}");

    // Config with an app the DAG doesn't know stays an error too.
    let dag = "APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n";
    let bad_cfg = "DOMAIN 8 8\nAPP 1 GRID 2 2 DIST blocked\n";
    let err = build_scenario(dag, bad_cfg).unwrap_err();
    assert!(err.to_string().contains("app 2"));
}

#[test]
fn workflow_cycle_rejected_before_any_execution() {
    let dag = "APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\nPARENT_APPID 2 CHILD_APPID 1\n";
    let cfg = "\
DOMAIN 8 8
APP 1 GRID 2 2 DIST blocked
APP 2 GRID 2 2 DIST blocked
";
    let err = build_scenario(dag, cfg).unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");
}
