//! Interface-region coupling (Fig. 1's climate case): only the overlap
//! region between the models is exchanged, not the full domain — e.g. the
//! boundary layer between atmosphere and ocean.

use insitu::{run_modeled, run_threaded, CouplingSpec, MappingStrategy, Scenario};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{Locality, NetworkModel, TrafficClass};
use insitu_workflow::{AppSpec, WorkflowSpec};

fn blocked(domain: &[u64], grid: &[u64]) -> Decomposition {
    Decomposition::new(
        BoundingBox::from_sizes(domain),
        ProcessGrid::new(grid),
        Distribution::Blocked,
    )
}

/// Atmosphere over a 16^3 domain feeds the ocean model, but only through
/// the z = [0, 1] boundary slab.
fn interface_scenario(concurrent: bool) -> Scenario {
    let domain = [16u64, 16, 16];
    let slab = BoundingBox::new(&[0, 0, 0], &[15, 15, 1]);
    let apps = vec![
        AppSpec::new(1, "atm", 8).with_decomposition(blocked(&domain, &[2, 2, 2])),
        AppSpec::new(2, "ocean", 8).with_decomposition(blocked(&domain, &[4, 2, 1])),
    ];
    let workflow = if concurrent {
        WorkflowSpec {
            apps,
            edges: vec![],
            bundles: vec![vec![1, 2]],
        }
    } else {
        WorkflowSpec {
            apps,
            edges: vec![(1, 2)],
            bundles: vec![],
        }
    };
    Scenario {
        name: "interface coupling".into(),
        cores_per_node: 4,
        workflow,
        couplings: vec![CouplingSpec {
            var: "boundary_flux".into(),
            producer_app: 1,
            consumer_apps: vec![2],
            concurrent,
            region: Some(slab),
        }],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    }
}

#[test]
fn only_the_interface_region_moves() {
    for concurrent in [true, false] {
        let s = interface_scenario(concurrent);
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0, "concurrent={concurrent}");
        // Exactly the slab volume: 16 x 16 x 2 cells x 8 B.
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            16 * 16 * 2 * 8,
            "concurrent={concurrent}"
        );
        // Only consumer tasks whose region touches the slab issued gets:
        // ocean grid [4,2,1] -> all 8 tasks own z in [0,16) so all touch.
        assert_eq!(o.reports.len(), 8);
    }
}

#[test]
fn tasks_outside_the_interface_do_not_couple() {
    // Ocean grid [1, 1, 8]: only the z-lowest task touches the slab.
    let domain = [16u64, 16, 16];
    let slab = BoundingBox::new(&[0, 0, 0], &[15, 15, 1]);
    let apps = vec![
        AppSpec::new(1, "atm", 8).with_decomposition(blocked(&domain, &[2, 2, 2])),
        AppSpec::new(2, "ocean", 8).with_decomposition(blocked(&domain, &[1, 1, 8])),
    ];
    let s = Scenario {
        name: "sparse interface".into(),
        cores_per_node: 4,
        workflow: WorkflowSpec {
            apps,
            edges: vec![],
            bundles: vec![vec![1, 2]],
        },
        couplings: vec![CouplingSpec {
            var: "flux".into(),
            producer_app: 1,
            consumer_apps: vec![2],
            concurrent: true,
            region: Some(slab),
        }],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    };
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    // Only ocean rank 0 (z = 0..1) touches the slab.
    assert_eq!(o.reports.len(), 1);
    assert_eq!(
        o.ledger.total_bytes(TrafficClass::InterApp),
        16 * 16 * 2 * 8
    );
}

#[test]
fn interface_region_modeled_threaded_equivalence() {
    for concurrent in [true, false] {
        let s = interface_scenario(concurrent);
        for strategy in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
            let m = run_modeled(&s, strategy);
            let t = run_threaded(&s, strategy);
            assert_eq!(t.verify_failures, 0);
            for class in [TrafficClass::InterApp, TrafficClass::IntraApp] {
                for loc in [Locality::SharedMemory, Locality::Network] {
                    for app in [1u32, 2] {
                        assert_eq!(
                            m.ledger.app_bytes(app, class, loc),
                            t.ledger.app_bytes(app, class, loc),
                            "concurrent={concurrent} {strategy:?} app {app} {class:?} {loc:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn data_centric_favors_interface_locality() {
    let s = interface_scenario(false);
    let rr = run_threaded(&s, MappingStrategy::RoundRobin);
    let dc = run_threaded(&s, MappingStrategy::DataCentric);
    assert!(
        dc.ledger.network_bytes(TrafficClass::InterApp)
            <= rr.ledger.network_bytes(TrafficClass::InterApp)
    );
}
