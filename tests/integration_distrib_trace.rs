//! End-to-end test of the distributed telemetry plane: a loopback
//! `insitu launch --procs 3 --p2p` run whose joiners ship their flight
//! recordings to the hub, which stitches them into one cross-process
//! trace. Mirrors the PR 3 single-process invariant at distributed
//! scale: every `PullData` wire hop must find both halves (zero
//! unmatched send/recv pairs) and the merged critical-path profile must
//! account for the end-to-end time within 5%.

use insitu::{join, serve, DistribOutcome, JoinOptions, MappingStrategy, ServeOptions};
use insitu_chaos::{FaultKind, FaultPlan, FaultSpec};
use insitu_cli::build_scenario;
use insitu_fabric::FaultInjector;
use insitu_obs::{merge_traces, FlightRecorder};
use insitu_telemetry::{Json, Recorder};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

fn workflow_path(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../workflows")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn insitu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_insitu"))
}

/// The chaos crate sits below the transport in the dependency order,
/// so it duplicates the `Telemetry` kind byte its `net-telemetry`
/// fault site classifies frames by. Pin the two constants together.
#[test]
fn telemetry_kind_byte_pinned_across_crates() {
    assert_eq!(
        insitu_net::KIND_TELEMETRY,
        insitu_chaos::TELEMETRY_FRAME_KIND
    );
}

#[test]
fn merged_trace_stitches_every_wire_pair_and_profile_covers_e2e() {
    let trace = std::env::temp_dir().join("insitu_integration_merged_trace.json");
    let profile = std::env::temp_dir().join("insitu_integration_merged_profile.json");
    // Round-robin mapping forces cross-node coupling pulls, so the
    // p2p data plane carries real wire traffic to stitch.
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            "--p2p",
            "--strategy",
            "round-robin",
            "--timeout-ms",
            "60000",
            "--trace-out",
            trace.to_str().unwrap(),
            "--profile-out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("launch runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "launch failed:\n{stdout}");
    assert!(stdout.contains("verified:  0 cell mismatches"), "{stdout}");
    assert!(
        stdout.contains("byte-identical to the single-process run"),
        "{stdout}"
    );
    // The merge must not degrade: no warnings in the report.
    assert!(!stdout.contains("warning:"), "{stdout}");

    // Merged chrome trace: one lane per joiner process, every PullData
    // send/recv pair stitched into a cross-process edge.
    let trace_body = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_body.contains("\"processes\":2"), "{trace_body}");
    assert!(trace_body.contains("\"unmatchedSends\":0"), "{trace_body}");
    assert!(trace_body.contains("\"unmatchedRecvs\":0"), "{trace_body}");
    let stitched: u64 = trace_body
        .split("\"stitched\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .expect("stitched count present");
    assert!(
        stitched > 0,
        "no cross-process edges stitched:\n{trace_body}"
    );

    // Merged critical-path profile: category attribution sums to the
    // end-to-end total within 5% (the PR 3 invariant, now cross-process).
    let doc = Json::parse(&std::fs::read_to_string(&profile).unwrap()).unwrap();
    let totals = doc.get("totals").expect("profile totals");
    let num = |key: &str| totals.get(key).and_then(Json::as_f64).unwrap();
    let e2e = num("end_to_end_us");
    let attributed = num("schedule_us") + num("shm_us") + num("rdma_us") + num("wait_us");
    assert!(e2e > 0.0, "empty merged profile: {doc:?}");
    assert!(
        (attributed - e2e).abs() <= 0.05 * e2e,
        "attribution {attributed} us vs end-to-end {e2e} us drifts past 5%"
    );

    std::fs::remove_file(trace).unwrap();
    std::fs::remove_file(profile).unwrap();
}

/// Run the distrib workflow in-process (hub + 2 joiner threads, the
/// same shape `launch --procs 3 --p2p` spawns) with a chaos plan that
/// drops telemetry frames on the joiners' wire at `rate`.
fn run_with_telemetry_faults(seed: u64, rate: f64) -> DistribOutcome {
    let dag = std::fs::read_to_string(workflow_path("distrib.dag")).unwrap();
    let cfg = std::fs::read_to_string(workflow_path("distrib.cfg")).unwrap();
    let scenario = build_scenario(&dag, &cfg).unwrap();
    let spec = FaultSpec::none().with_rate(FaultKind::NetTelemetry, rate);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut joiners = Vec::new();
    for node in 0..2u32 {
        let addr = addr.clone();
        let sc = scenario.clone();
        let injector = FaultInjector::new(Arc::new(FaultPlan::new(seed, spec)));
        joiners.push(std::thread::spawn(move || {
            join(
                &addr,
                node,
                move |_, _| Ok(sc),
                &JoinOptions {
                    timeout: Duration::from_secs(30),
                    injector,
                    recorder: Recorder::enabled(),
                    flight: FlightRecorder::enabled(),
                    shm: true,
                },
            )
        }));
    }
    let outcome = serve(
        &listener,
        &dag,
        &cfg,
        &scenario,
        &ServeOptions {
            strategy: MappingStrategy::RoundRobin,
            timeout: Duration::from_secs(30),
            p2p: true,
            ..ServeOptions::default()
        },
    )
    .expect("telemetry loss must never fail the run");
    for j in joiners {
        j.join().unwrap().expect("joiner must complete");
    }
    outcome
}

/// Chaos: every telemetry batch dropped on the wire. The run itself
/// must finish clean — telemetry is best-effort — and the merge must
/// degrade to "incomplete" with a warning, never hang or corrupt.
#[test]
fn telemetry_loss_degrades_to_per_process_traces() {
    let outcome = run_with_telemetry_faults(7, 1.0);
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(outcome.verify_failures, 0);
    assert!(outcome.gets > 0, "run must have executed real work");
    assert_eq!(outcome.telemetry.len(), 2, "lost nodes still appear");
    for t in &outcome.telemetry {
        assert!(
            !t.complete,
            "node {} lost every batch, must report incomplete",
            t.node
        );
    }
    let merged = merge_traces(outcome.telemetry);
    let mut incomplete = merged.incomplete.clone();
    incomplete.sort_unstable();
    assert_eq!(incomplete, vec![0, 1]);
    assert_eq!(merged.stitched, 0, "nothing arrived, nothing to stitch");
    assert_eq!(merged.unmatched_sends, 0, "no phantom sends");
    assert_eq!(merged.unmatched_recvs, 0, "no phantom recvs");
    let warnings = merged.warnings();
    assert!(
        warnings.iter().any(|w| w.contains("incomplete")),
        "merge must warn about the degraded trace: {warnings:?}"
    );
}

/// The chaos plan is a pure function of (seed, site): two runs with
/// the same seed must drop the same telemetry batches and degrade the
/// same nodes.
#[test]
fn telemetry_loss_replays_bit_for_bit() {
    let fates = |o: &DistribOutcome| {
        o.telemetry
            .iter()
            .map(|t| (t.node, t.complete))
            .collect::<Vec<_>>()
    };
    let a = run_with_telemetry_faults(1234, 0.5);
    let b = run_with_telemetry_faults(1234, 0.5);
    assert_eq!(fates(&a), fates(&b), "same seed, same dropped batches");
    let mut ia = merge_traces(a.telemetry).incomplete;
    let mut ib = merge_traces(b.telemetry).incomplete;
    ia.sort_unstable();
    ib.sort_unstable();
    assert_eq!(ia, ib, "degraded node set must replay bit-for-bit");
}
