//! End-to-end concurrent coupling (the paper's online-data-processing
//! scenario, CAP1 + CAP2) on the threaded executor: real threads, real
//! data movement, exact verification, and the paper's qualitative result
//! (data-centric mapping slashes network-coupled bytes).

use insitu::{concurrent_scenario, pattern_pairs, run_threaded, MappingStrategy, Scenario};
use insitu_fabric::TrafficClass;

fn small_cap(pattern_idx: usize) -> Scenario {
    // 16 producer tasks -> 8 consumer tasks, 6^3 regions, 4-core nodes.
    let mut s = concurrent_scenario(16, 8, 6, pattern_pairs(&[3, 3, 3])[pattern_idx]);
    s.cores_per_node = 4;
    s
}

#[test]
fn concurrent_coupling_moves_exact_data() {
    let s = small_cap(0);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0, "retrieved data corrupted");
    // The whole shared domain is redistributed once.
    let domain_bytes = s.decomposition(1).domain().num_cells() as u64 * 8;
    assert_eq!(o.ledger.total_bytes(TrafficClass::InterApp), domain_bytes);
    // Concurrent coupling never touches the DHT.
    assert_eq!(o.ledger.total_bytes(TrafficClass::Dht), 0);
}

#[test]
fn data_centric_beats_round_robin_on_network_bytes() {
    let s = small_cap(0); // matched blocked/blocked
    let rr = run_threaded(&s, MappingStrategy::RoundRobin);
    let dc = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(rr.verify_failures + dc.verify_failures, 0);
    let rr_net = rr.ledger.network_bytes(TrafficClass::InterApp);
    let dc_net = dc.ledger.network_bytes(TrafficClass::InterApp);
    assert!(
        (dc_net as f64) < 0.5 * rr_net as f64,
        "expected a large reduction: rr={rr_net} dc={dc_net}"
    );
    // Totals identical: mapping only changes locality, never volume.
    assert_eq!(
        rr.ledger.total_bytes(TrafficClass::InterApp),
        dc.ledger.total_bytes(TrafficClass::InterApp)
    );
}

#[test]
fn mismatched_distributions_erode_the_benefit() {
    let matched = small_cap(0);
    let mismatched = small_cap(4); // blocked producer, cyclic consumer
    let reduction = |s: &Scenario| {
        let rr = run_threaded(s, MappingStrategy::RoundRobin);
        let dc = run_threaded(s, MappingStrategy::DataCentric);
        assert_eq!(rr.verify_failures + dc.verify_failures, 0);
        1.0 - dc.ledger.network_bytes(TrafficClass::InterApp) as f64
            / rr.ledger.network_bytes(TrafficClass::InterApp) as f64
    };
    let r_matched = reduction(&matched);
    let r_mismatched = reduction(&mismatched);
    assert!(
        r_matched > r_mismatched,
        "matched {r_matched:.2} should beat mismatched {r_mismatched:.2}"
    );
}

#[test]
fn consumer_intra_app_traffic_grows_under_data_centric() {
    // The Fig. 12 trade-off: CAP2's tasks scatter to follow data. Use a
    // coupling-dominant configuration (the paper's regime, §V.B: the
    // benefit "depends on the ratio of inter-application data transfer
    // size to intra-application exchange size").
    let mut s = concurrent_scenario(16, 8, 12, pattern_pairs(&[3, 3, 3])[0]);
    s.cores_per_node = 4;
    s.halo = 1;
    let rr = run_threaded(&s, MappingStrategy::RoundRobin);
    let dc = run_threaded(&s, MappingStrategy::DataCentric);
    let net = |o: &insitu::ThreadedOutcome, app| {
        o.ledger.app_bytes(
            app,
            TrafficClass::IntraApp,
            insitu_fabric::Locality::Network,
        )
    };
    assert!(
        net(&dc, 2) >= net(&rr, 2),
        "dc {} < rr {}",
        net(&dc, 2),
        net(&rr, 2)
    );
    // ...but the coupling reduction dominates total network traffic.
    assert!(dc.ledger.network_total() < rr.ledger.network_total());
}

#[test]
fn every_consumer_task_reports_a_get() {
    let s = small_cap(0);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    let per_task_bytes = s.decomposition(2).rank_cells(0) as u64 * 8;
    let consumer_reports: Vec<_> = o.reports.iter().filter(|(app, _, _)| *app == 2).collect();
    assert_eq!(consumer_reports.len(), 8);
    for (_, _, r) in consumer_reports {
        assert!(r.ops > 0);
        assert_eq!(r.shm_bytes + r.net_bytes, per_task_bytes);
    }
}

#[test]
fn node_cyclic_ablation_runs_clean() {
    let s = small_cap(1); // block-cyclic/block-cyclic
    let o = run_threaded(&s, MappingStrategy::NodeCyclic);
    assert_eq!(o.verify_failures, 0);
}
