//! End-to-end standing queries: a monitor application subscribes to a
//! coupled variable and the producers push every matching version into
//! its sink — no consumer-side polling. The engine byte-compares every
//! delivered push against a fresh `get` of the same piece, so
//! `verify_failures == 0` certifies the acceptance anchor: pushed bytes
//! are byte-identical to pulled bytes, version for version.

use insitu::workflow::{AppSpec, WorkflowSpec};
use insitu::{
    join, run_threaded, run_threaded_with, serve, CouplingSpec, DistribOutcome, JoinOptions,
    MappingStrategy, Scenario, ServeOptions, SubscriptionSpec,
};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::NetworkModel;
use insitu_telemetry::Recorder;
use std::net::TcpListener;
use std::time::Duration;

/// Producer (4 tasks) -> consumer (2 tasks), with a one-task monitor app
/// holding a standing query over the whole domain. All three apps run as
/// one bundle so the concurrent-coupling operators apply.
fn sub_scenario(every_k: u64, iterations: u64) -> Scenario {
    let domain = BoundingBox::from_sizes(&[8, 8, 8]);
    let pdec = Decomposition::new(domain, ProcessGrid::new(&[2, 2, 1]), Distribution::Blocked);
    let cdec = Decomposition::new(domain, ProcessGrid::new(&[2, 1, 1]), Distribution::Blocked);
    let mdec = Decomposition::new(domain, ProcessGrid::new(&[1, 1, 1]), Distribution::Blocked);
    let workflow = WorkflowSpec {
        apps: vec![
            AppSpec::new(1, "SIM", 4).with_decomposition(pdec),
            AppSpec::new(2, "ANA", 2).with_decomposition(cdec),
            AppSpec::new(3, "MON", 1).with_decomposition(mdec),
        ],
        edges: vec![],
        bundles: vec![vec![1, 2, 3]],
    };
    Scenario {
        name: "standing query".into(),
        cores_per_node: 4,
        workflow,
        couplings: vec![CouplingSpec {
            var: "coupled".into(),
            producer_app: 1,
            consumer_apps: vec![2],
            concurrent: true,
            region: None,
        }],
        subscriptions: vec![SubscriptionSpec {
            var: "coupled".into(),
            producer_app: 1,
            subscriber_app: 3,
            every_k,
            region: None,
            queue_cap: 8,
        }],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations,
    }
}

#[test]
fn pushed_bytes_match_pulled_bytes_end_to_end() {
    let s = sub_scenario(1, 3);
    let rec = Recorder::enabled();
    let o = run_threaded_with(&s, MappingStrategy::DataCentric, &rec);
    assert_eq!(o.verify_failures, 0, "push plane diverged from pull plane");
    assert!(o.errors.is_empty(), "{:?}", o.errors);
    // Consumer: 2 tasks x 3 versions; monitor: 1 piece x 3 versions.
    assert_eq!(o.reports.len(), 6 + 3);

    let snap = rec.metrics_snapshot();
    // 4 producer pieces pushed per version, assembled into one delivery.
    assert_eq!(snap.counter("sub.pushes"), 4 * 3);
    assert_eq!(snap.counter("sub.deliveries"), 3);
    assert_eq!(snap.counter("sub.lagged"), 0);
    assert_eq!(snap.counter("sub.push_drops"), 0);
    // Every push moved the fragment's bytes: whole domain per version.
    assert_eq!(snap.counter("sub.push_bytes"), 8 * 8 * 8 * 8 * 3);
}

#[test]
fn stride_subscription_skips_off_stride_versions() {
    let s = sub_scenario(2, 4); // versions 0 and 2 are on-stride
    let rec = Recorder::enabled();
    let o = run_threaded_with(&s, MappingStrategy::DataCentric, &rec);
    assert_eq!(o.verify_failures, 0);
    assert!(o.errors.is_empty(), "{:?}", o.errors);
    // Consumer: 2 x 4 versions; monitor: only the 2 on-stride versions.
    assert_eq!(o.reports.len(), 8 + 2);
    let snap = rec.metrics_snapshot();
    assert_eq!(snap.counter("sub.pushes"), 4 * 2);
    assert_eq!(snap.counter("sub.deliveries"), 2);
}

/// Run `scenario` distributed over loopback (one serve thread, one join
/// thread per node) and return the server's merged outcome.
fn run_distributed(
    scenario: &Scenario,
    strategy: MappingStrategy,
    nodes: u32,
    recorder: &Recorder,
    p2p: bool,
) -> DistribOutcome {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let serve_opts = ServeOptions {
        strategy,
        timeout: Duration::from_secs(20),
        recorder: recorder.clone(),
        p2p,
        shm: false,
        ..ServeOptions::default()
    };
    let mut joiners = Vec::new();
    for node in 0..nodes {
        let addr = addr.clone();
        let s = scenario.clone();
        let rec = recorder.clone();
        joiners.push(std::thread::spawn(move || {
            join(
                &addr,
                node,
                move |_dag, _config| Ok(s),
                &JoinOptions {
                    timeout: Duration::from_secs(20),
                    recorder: rec,
                    ..JoinOptions::default()
                },
            )
        }));
    }
    let outcome = serve(&listener, "", "", scenario, &serve_opts).unwrap();
    for j in joiners {
        j.join().unwrap().unwrap();
    }
    outcome
}

#[test]
fn distributed_subscription_matches_single_process() {
    let s = sub_scenario(1, 2);
    let expected = run_threaded(&s, MappingStrategy::RoundRobin);
    assert_eq!(expected.verify_failures, 0);

    // RoundRobin splits the producers across both nodes, so some pushes
    // must cross processes; with p2p off they ride the hub.
    let rec = Recorder::enabled();
    let got = run_distributed(&s, MappingStrategy::RoundRobin, 2, &rec, false);
    assert_eq!(got.verify_failures, 0);
    assert!(got.errors.is_empty(), "{:?}", got.errors);
    assert_eq!(
        got.ledger, expected.ledger,
        "merged ledger must be byte-identical to the single-process run"
    );
    assert_eq!(got.gets, expected.reports.len() as u64);

    let snap = rec.metrics_snapshot();
    assert!(
        snap.counter("net.sub_push_hub") > 0,
        "cross-process pushes must ride the hub when p2p is off"
    );
    // Deliveries happen only in the process hosting the sink; the
    // push count (all producer processes) still covers every piece.
    assert_eq!(snap.counter("sub.deliveries"), 2);
}

#[test]
fn p2p_subscription_pushes_bypass_the_hub() {
    let s = sub_scenario(1, 2);
    let expected = run_threaded(&s, MappingStrategy::RoundRobin);
    assert_eq!(expected.verify_failures, 0);

    let rec = Recorder::enabled();
    let got = run_distributed(&s, MappingStrategy::RoundRobin, 2, &rec, true);
    assert_eq!(got.verify_failures, 0);
    assert!(got.errors.is_empty(), "{:?}", got.errors);
    assert_eq!(
        got.ledger, expected.ledger,
        "p2p merged ledger must be byte-identical to the single-process run"
    );

    let snap = rec.metrics_snapshot();
    assert_eq!(
        snap.counter("net.sub_push_hub"),
        0,
        "no SubPush may traverse the hub in p2p mode"
    );
    assert!(
        snap.counter("net.sub_push_p2p") > 0,
        "cross-process pushes must take direct links"
    );
}
