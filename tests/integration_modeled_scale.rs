//! Regression net for the paper-scale modeled experiments: volume
//! conservation, reduction bounds and time-model sanity at the largest
//! weak-scaling point (8192 producer cores), plus randomized
//! modeled-vs-threaded equivalence.

use insitu::{
    concurrent_scenario, pattern_pairs, run_modeled, run_threaded, sequential_scenario,
    MappingStrategy,
};
use insitu_fabric::TrafficClass;
use insitu_util::check::forall;

#[test]
fn weak_scaling_largest_point_conserves_volume() {
    // 8192/1024 concurrent: 128 GiB redistributed.
    let s = concurrent_scenario(8192, 1024, 128, pattern_pairs(&[32, 32, 32])[0]);
    let o = run_modeled(&s, MappingStrategy::DataCentric);
    assert_eq!(o.ledger.total_bytes(TrafficClass::InterApp), 128 << 30);
    // Data-centric at scale keeps the reduction of the base scale.
    assert!(o.ledger.network_fraction(TrafficClass::InterApp) < 0.35);
    let t = o.retrieve_ms[&2];
    assert!(t.is_finite() && t > 0.0);
}

#[test]
fn weak_scaling_largest_sequential_point() {
    // 8192/(2048+6144): 256 GiB redistributed.
    let s = sequential_scenario(8192, 2048, 6144, 128, pattern_pairs(&[32, 32, 32])[0]);
    let o = run_modeled(&s, MappingStrategy::DataCentric);
    assert_eq!(o.ledger.total_bytes(TrafficClass::InterApp), 256 << 30);
    assert!(o.retrieve_ms[&2] > 0.0 && o.retrieve_ms[&3] > 0.0);
}

#[test]
fn round_robin_at_scale_is_worse() {
    let s = concurrent_scenario(8192, 1024, 32, pattern_pairs(&[16, 16, 16])[0]);
    let rr = run_modeled(&s, MappingStrategy::RoundRobin);
    let dc = run_modeled(&s, MappingStrategy::DataCentric);
    assert!(
        dc.ledger.network_bytes(TrafficClass::InterApp)
            < rr.ledger.network_bytes(TrafficClass::InterApp) / 2
    );
}

/// The reproduction's core guarantee, randomized: for arbitrary small
/// scenarios, the analytic executor's ledger matches the threaded
/// executor that really moves data.
#[test]
fn randomized_modeled_threaded_equivalence() {
    forall(8, |rng| {
        let pexp = rng.range_u32(1, 4);
        let cexp = rng.range_u32(0, 3);
        let pattern_idx = rng.range_usize(0, 5);
        let strategies = [
            MappingStrategy::RoundRobin,
            MappingStrategy::DataCentric,
            MappingStrategy::NodeCyclic,
        ];
        let strategy = *rng.choose(&strategies);
        let sequential = rng.bool();
        let prod = 1u64 << (pexp + 1);
        let cons = (1u64 << cexp).min(prod);
        let mut s = if sequential {
            sequential_scenario(prod, cons, cons, 4, pattern_pairs(&[2, 2, 2])[pattern_idx])
        } else {
            concurrent_scenario(prod, cons, 4, pattern_pairs(&[2, 2, 2])[pattern_idx])
        };
        s.cores_per_node = 4;
        let modeled = run_modeled(&s, strategy);
        let threaded = run_threaded(&s, strategy);
        assert_eq!(threaded.verify_failures, 0);
        for class in [TrafficClass::InterApp, TrafficClass::IntraApp] {
            assert_eq!(
                modeled.ledger.shm_bytes(class),
                threaded.ledger.shm_bytes(class),
                "{strategy:?} {class:?} shm"
            );
            assert_eq!(
                modeled.ledger.network_bytes(class),
                threaded.ledger.network_bytes(class),
                "{strategy:?} {class:?} net"
            );
        }
    });
}
