//! Modeled-vs-threaded equivalence: the analytic executor used for the
//! paper-scale experiments must produce byte-for-byte the same transfer
//! ledger as the threaded executor that really moves data. This is the
//! license to trust the 8192-core numbers in EXPERIMENTS.md.

use insitu::{
    concurrent_scenario, pattern_pairs, run_modeled, run_threaded, sequential_scenario,
    MappingStrategy, Scenario,
};
use insitu_fabric::{Locality, TrafficClass};

fn assert_ledgers_match(s: &Scenario, strategy: MappingStrategy) {
    let modeled = run_modeled(s, strategy);
    let threaded = run_threaded(s, strategy);
    assert_eq!(threaded.verify_failures, 0);
    for class in [TrafficClass::InterApp, TrafficClass::IntraApp] {
        assert_eq!(
            modeled.ledger.shm_bytes(class),
            threaded.ledger.shm_bytes(class),
            "{strategy:?} {class:?} shm mismatch"
        );
        assert_eq!(
            modeled.ledger.network_bytes(class),
            threaded.ledger.network_bytes(class),
            "{strategy:?} {class:?} network mismatch"
        );
        // Per-app breakdowns too.
        for app in s.workflow.apps.iter().map(|a| a.id) {
            for loc in [Locality::SharedMemory, Locality::Network] {
                assert_eq!(
                    modeled.ledger.app_bytes(app, class, loc),
                    threaded.ledger.app_bytes(app, class, loc),
                    "{strategy:?} app {app} {class:?} {loc:?} mismatch"
                );
            }
        }
    }
    // Same placements.
    assert_eq!(modeled.mapped.app_cores, threaded.mapped.app_cores);
}

#[test]
fn concurrent_blocked_equivalence() {
    let mut s = concurrent_scenario(16, 8, 4, pattern_pairs(&[2, 2, 2])[0]);
    s.cores_per_node = 4;
    for strat in [
        MappingStrategy::RoundRobin,
        MappingStrategy::DataCentric,
        MappingStrategy::NodeCyclic,
    ] {
        assert_ledgers_match(&s, strat);
    }
}

#[test]
fn concurrent_block_cyclic_equivalence() {
    let mut s = concurrent_scenario(8, 8, 4, pattern_pairs(&[2, 2, 2])[1]);
    s.cores_per_node = 4;
    assert_ledgers_match(&s, MappingStrategy::DataCentric);
}

#[test]
fn concurrent_mismatched_equivalence() {
    let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[2]);
    s.cores_per_node = 4;
    assert_ledgers_match(&s, MappingStrategy::RoundRobin);
}

#[test]
fn sequential_equivalence() {
    let mut s = sequential_scenario(16, 8, 8, 4, pattern_pairs(&[2, 2, 2])[0]);
    s.cores_per_node = 4;
    for strat in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        assert_ledgers_match(&s, strat);
    }
}

#[test]
fn sequential_cyclic_consumer_equivalence() {
    let mut s = sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[4]);
    s.cores_per_node = 4;
    assert_ledgers_match(&s, MappingStrategy::DataCentric);
}

#[test]
fn iterative_equivalence() {
    // Iterations multiply both coupling and stencil traffic identically
    // in both executors.
    let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(3);
    s.cores_per_node = 4;
    assert_ledgers_match(&s, MappingStrategy::DataCentric);
    let mut s = sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(2);
    s.cores_per_node = 4;
    assert_ledgers_match(&s, MappingStrategy::RoundRobin);
}
