//! From DAG description file to executed workflow: parse the paper's
//! Listing-1 files, attach task counts and decompositions, and run the
//! resulting workflows end to end.

use insitu::{run_threaded, CouplingSpec, MappingStrategy, Scenario};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::NetworkModel;
use insitu_workflow::{parse_dag, CLIMATE_MODELING_DAG, ONLINE_PROCESSING_DAG};

fn blocked(domain: &[u64], grid: &[u64]) -> Decomposition {
    Decomposition::new(
        BoundingBox::from_sizes(domain),
        ProcessGrid::new(grid),
        Distribution::Blocked,
    )
}

#[test]
fn online_processing_dag_runs() {
    let mut wf = parse_dag(ONLINE_PROCESSING_DAG).unwrap();
    // Attach workload configuration (not part of the file format).
    for app in &mut wf.apps {
        match app.id {
            1 => {
                app.ntasks = 8;
                app.decomposition = Some(blocked(&[8, 8, 8], &[2, 2, 2]));
            }
            2 => {
                app.ntasks = 4;
                app.decomposition = Some(blocked(&[8, 8, 8], &[4, 1, 1]));
            }
            _ => unreachable!(),
        }
    }
    let scenario = Scenario {
        name: "online processing from DAG file".into(),
        cores_per_node: 4,
        workflow: wf,
        couplings: vec![CouplingSpec {
            var: "sim_output".into(),
            producer_app: 1,
            consumer_apps: vec![2],
            concurrent: true,
            region: None,
        }],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    };
    let o = run_threaded(&scenario, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    assert_eq!(o.reports.len(), 4);
}

#[test]
fn climate_dag_runs_with_two_consumer_models() {
    let mut wf = parse_dag(CLIMATE_MODELING_DAG).unwrap();
    for app in &mut wf.apps {
        match app.id {
            1 => {
                app.ntasks = 8;
                app.decomposition = Some(blocked(&[8, 8, 8], &[2, 2, 2]));
            }
            2 => {
                app.ntasks = 4;
                app.decomposition = Some(blocked(&[8, 8, 8], &[2, 2, 1]));
            }
            3 => {
                app.ntasks = 4;
                app.decomposition = Some(blocked(&[8, 8, 8], &[1, 2, 2]));
            }
            _ => unreachable!(),
        }
    }
    let scenario = Scenario {
        name: "climate modeling from DAG file".into(),
        cores_per_node: 4,
        workflow: wf,
        couplings: vec![CouplingSpec {
            var: "atmosphere_boundary".into(),
            producer_app: 1,
            consumer_apps: vec![2, 3],
            concurrent: false,
            region: None,
        }],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    };
    // The engine must schedule atmosphere first, then land + sea-ice.
    let waves = scenario.workflow.bundle_waves().unwrap();
    assert_eq!(waves.len(), 2);
    assert_eq!(waves[0], vec![vec![1]]);
    assert_eq!(waves[1].len(), 2);

    let o = run_threaded(&scenario, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    // Land and sea-ice each did 4 gets.
    assert_eq!(o.reports.iter().filter(|(a, _, _)| *a == 2).count(), 4);
    assert_eq!(o.reports.iter().filter(|(a, _, _)| *a == 3).count(), 4);
}

#[test]
fn malformed_dag_is_rejected_with_line_info() {
    let err = parse_dag("APP_ID 1\nPARENT_APPID 1\n").unwrap_err();
    assert_eq!(err.line, 2);
}

// Golden-file fixtures: structurally well-formed DAG files the validator
// must reject, with the exact user-facing message pinned so error-path
// regressions show up as test diffs.

#[test]
fn cyclic_dag_fixture_fails_validation_with_exact_message() {
    let wf = parse_dag(include_str!("../workflows/cyclic.dag"))
        .expect("the cycle is a semantic error, not a parse error");
    let err = wf.validate().unwrap_err();
    assert_eq!(err.to_string(), "workflow DAG has a cycle");
    // The wave scheduler refuses it too — the error is caught before any
    // execution machinery spins up.
    assert!(wf.bundle_waves().is_err());
}

#[test]
fn undeclared_bundle_member_fixture_fails_validation_with_exact_message() {
    let wf = parse_dag(include_str!("../workflows/unknown-bundle.dag"))
        .expect("the undeclared member is a semantic error, not a parse error");
    let err = wf.validate().unwrap_err();
    assert_eq!(err.to_string(), "unknown app id 4");
}
