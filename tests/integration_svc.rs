//! End-to-end test of the multi-tenant workflow service: one real
//! `insitu serve` process (service mode) executes many concurrently
//! submitted runs — raw DAG/config submissions mixed with
//! workflow.toml-authored ones, all using identical variable names and
//! versions — over a shared joiner pool, and every completed run's
//! merged transfer ledger must be byte-identical to the single-process
//! baseline. Also covers mid-service cancellation (the service stays
//! healthy) and the `submit`/`status --json`/`cancel` CLI clients.

use insitu_net::RunState;
use insitu_svc::RpcClient;
use insitu_workflow::compile_workflow;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn workflow_path(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../workflows")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn insitu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_insitu"))
}

/// Kills the service process when the test ends (pass or panic).
struct ServiceGuard(Child);

impl Drop for ServiceGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Start `insitu serve` in service mode on an ephemeral port and return
/// the guard plus the address it announced on stdout.
fn start_service(artifacts: &std::path::Path) -> (ServiceGuard, String) {
    let mut child = insitu()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--max-runs",
            "4",
            "--pool-nodes",
            "8",
            "--artifacts",
            artifacts.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn insitu serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = std::io::BufReader::new(stdout);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = Some(rest.split_whitespace().next().unwrap().to_string());
            break;
        }
        line.clear();
    }
    // Keep draining the service's run-lifecycle chatter so a full pipe
    // never blocks it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    let addr = addr.expect("service announced its address");
    (ServiceGuard(child), addr)
}

/// The single-process baseline ledger, produced (and itself verified
/// byte-identical to `run_threaded`) by `insitu launch --ledger-out`.
fn baseline_ledger() -> String {
    let path = std::env::temp_dir().join("insitu_integration_svc_baseline.json");
    let out = insitu()
        .args([
            "launch",
            &workflow_path("distrib.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
            "--procs",
            "3",
            "--timeout-ms",
            "60000",
            "--ledger-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn insitu launch");
    assert!(
        out.status.success(),
        "baseline launch failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&path).expect("baseline ledger written");
    std::fs::remove_file(&path).unwrap();
    body.trim_end().to_string()
}

#[test]
fn service_executes_concurrent_mixed_submissions_with_identical_ledgers() {
    let artifacts = std::env::temp_dir().join("insitu_integration_svc_artifacts");
    let _ = std::fs::remove_dir_all(&artifacts);
    std::fs::create_dir_all(&artifacts).unwrap();
    let expected = baseline_ledger();
    let (_guard, addr) = start_service(&artifacts);

    let dag = std::fs::read_to_string(workflow_path("distrib.dag")).unwrap();
    let config = std::fs::read_to_string(workflow_path("distrib.cfg")).unwrap();
    let toml = std::fs::read_to_string(workflow_path("distrib.toml")).unwrap();
    // The toml defaults compile to the same workflow as the dag/cfg pair.
    let authored = compile_workflow(&toml, &[]).unwrap();

    let mut rpc = RpcClient::connect(&addr, Duration::from_secs(10)).unwrap();
    let get_timeout = Duration::from_secs(60);

    // Nine concurrent submissions of the same logical workflow — five
    // raw dag/config, four authored from workflow.toml — all with
    // identical variable names ("temperature", "pressure") and version
    // sequences, so any cross-run key collision would corrupt ledgers.
    let mut runs = Vec::new();
    for i in 0..9 {
        let (d, c, name) = if i % 2 == 0 {
            (&dag, &config, format!("plain-{i}"))
        } else {
            (&authored.dag, &authored.config, format!("toml-{i}"))
        };
        let (run, _) = rpc
            .submit(&name, d, c, "data-centric", get_timeout)
            .unwrap();
        runs.push(run);
    }
    // A tenth run is cancelled mid-service; whichever way the race
    // lands, it must terminate and leave the service healthy.
    let (victim, _) = rpc
        .submit("victim", &dag, &config, "data-centric", get_timeout)
        .unwrap();
    rpc.cancel(victim).unwrap();

    for &run in &runs {
        let s = rpc.wait_terminal(run, Duration::from_secs(300)).unwrap();
        assert_eq!(s.state, RunState::Done, "run {run}: {}", s.detail);
        assert_eq!(s.nodes, 2, "run {run}");
        let art = rpc.result(run).unwrap();
        assert!(art.errors.is_empty(), "run {run}: {:?}", art.errors);
        assert_eq!(
            art.ledger_json, expected,
            "run {run} ledger must be byte-identical to the single-process baseline"
        );
        assert!(!art.profile_json.is_empty(), "run {run}");
    }
    let s = rpc.wait_terminal(victim, Duration::from_secs(300)).unwrap();
    assert!(
        matches!(s.state, RunState::Cancelled | RunState::Done),
        "victim ended {:?}",
        s.state
    );

    // The service stayed healthy after the cancel: a fresh submission
    // still completes correctly.
    let (after, _) = rpc
        .submit("after-cancel", &dag, &config, "data-centric", get_timeout)
        .unwrap();
    let s = rpc.wait_terminal(after, Duration::from_secs(300)).unwrap();
    assert_eq!(s.state, RunState::Done, "{}", s.detail);
    assert_eq!(rpc.result(after).unwrap().ledger_json, expected);

    // Per-run artifact files landed in --artifacts.
    let run1_ledger = artifacts.join("run-1.ledger.json");
    assert_eq!(
        std::fs::read_to_string(&run1_ledger).expect("run-1 ledger file"),
        expected
    );
    assert!(artifacts.join("run-1.profile.json").exists());

    // The CLI clients speak to the same service. `submit --wait` blocks
    // until Done; `status --run N --json` returns the artifacts.
    let out = insitu()
        .args([
            "submit",
            "--connect",
            &addr,
            &workflow_path("distrib.toml"),
            "--set",
            "iters=1",
            "--wait",
            "--timeout-ms",
            "300000",
        ])
        .output()
        .expect("spawn insitu submit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "submit --wait failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("submitted: run"), "{stdout}");
    assert!(stdout.contains("done"), "{stdout}");

    let out = insitu()
        .args(["status", "--connect", &addr, "--run", "1", "--json"])
        .output()
        .expect("spawn insitu status");
    assert!(out.status.success());
    let body = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"state\":\"done\"",
        "\"ledger\"",
        "\"metrics\"",
        "\"profile\"",
    ] {
        assert!(body.contains(key), "status --json missing {key}: {body}");
    }

    let out = insitu()
        .args(["status", "--connect", &addr])
        .output()
        .expect("spawn insitu status");
    let listing = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(
        listing.contains("plain-0") && listing.contains("toml-1"),
        "{listing}"
    );

    let _ = std::fs::remove_dir_all(&artifacts);
}

#[test]
fn submit_rejects_invalid_workflows_client_side() {
    // No service needed: local validation refuses before connecting.
    let out = insitu()
        .args([
            "submit",
            "--connect",
            "127.0.0.1:9",
            "--dag",
            &workflow_path("unknown-bundle.dag"),
            "--config",
            &workflow_path("distrib.cfg"),
        ])
        .output()
        .expect("spawn insitu submit");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn cancel_against_dead_service_fails_cleanly() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    let out = insitu()
        .args([
            "cancel",
            "--connect",
            &addr,
            "--run",
            "1",
            "--timeout-ms",
            "300",
        ])
        .output()
        .expect("spawn insitu cancel");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains(&addr), "{stderr}");
}
