//! End-to-end sequential coupling (the paper's climate-modeling shape,
//! SAP1 -> SAP2 + SAP3) on the threaded executor: data staged in CoDS by a
//! finished producer is discovered through the DHT and pulled by two
//! consumer applications launched on the same nodes.

use insitu::{pattern_pairs, run_threaded, sequential_scenario, MappingStrategy, Scenario};
use insitu_fabric::TrafficClass;

fn small_sap(pattern_idx: usize) -> Scenario {
    // SAP1=16 tasks -> SAP2=8 + SAP3=8, 6^3 regions, 4-core nodes.
    let mut s = sequential_scenario(16, 8, 8, 6, pattern_pairs(&[3, 3, 3])[pattern_idx]);
    s.cores_per_node = 4;
    s
}

#[test]
fn sequential_coupling_moves_exact_data() {
    let s = small_sap(0);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    // Both consumers read the whole domain: 2x volume redistributed.
    let domain_bytes = s.decomposition(1).domain().num_cells() as u64 * 8;
    assert_eq!(
        o.ledger.total_bytes(TrafficClass::InterApp),
        2 * domain_bytes
    );
}

#[test]
fn dht_is_exercised_by_sequential_gets() {
    let s = small_sap(0);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    // Location queries and inserts cost DHT traffic.
    assert!(o.ledger.total_bytes(TrafficClass::Dht) > 0);
    // Every consumer get either queried the DHT or hit the cache.
    for (app, _, r) in &o.reports {
        assert!(*app == 2 || *app == 3);
        assert!(r.dht_cores_queried > 0 || r.cache_hit);
    }
}

#[test]
fn client_side_mapping_beats_round_robin() {
    let s = small_sap(0);
    let rr = run_threaded(&s, MappingStrategy::RoundRobin);
    let dc = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(rr.verify_failures + dc.verify_failures, 0);
    let rr_net = rr.ledger.network_bytes(TrafficClass::InterApp);
    let dc_net = dc.ledger.network_bytes(TrafficClass::InterApp);
    assert!(
        dc_net < rr_net,
        "client-side mapping should reduce network coupling: rr={rr_net} dc={dc_net}"
    );
}

#[test]
fn consumers_run_on_producer_nodes() {
    // In-situ execution: SAP2/SAP3 land on the same node set SAP1 used.
    let s = small_sap(0);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    let m = &o.mapped;
    let producer_nodes: std::collections::HashSet<u32> =
        (0..16).map(|r| m.node_of_task(1, r)).collect();
    for app in [2u32, 3] {
        for r in 0..8 {
            assert!(
                producer_nodes.contains(&m.node_of_task(app, r)),
                "app {app} rank {r} landed off the data nodes"
            );
        }
    }
}

#[test]
fn both_consumers_verify_with_mismatched_patterns() {
    let s = small_sap(2); // blocked producer, block-cyclic consumers
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
}

#[test]
fn sap1_stencil_unaffected_by_strategy() {
    // Fig. 13: the producer is packed under both strategies, so its own
    // intra-app traffic is identical.
    let s = small_sap(0);
    let rr = run_threaded(&s, MappingStrategy::RoundRobin);
    let dc = run_threaded(&s, MappingStrategy::DataCentric);
    let net = |o: &insitu::ThreadedOutcome| {
        o.ledger
            .app_bytes(1, TrafficClass::IntraApp, insitu_fabric::Locality::Network)
    };
    assert_eq!(net(&rr), net(&dc));
}
