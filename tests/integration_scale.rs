//! Paper-scale threaded runs: the real task counts of the evaluation
//! (576 clients for the concurrent scenario, 512 for the sequential one)
//! with real threads and real data movement — shrunk per-task regions
//! keep memory modest while every code path (mailboxes, rendezvous, DHT,
//! schedules, collectives of the mapping pipeline) runs at full width.

use insitu::{
    concurrent_scenario, pattern_pairs, run_threaded, sequential_scenario, MappingStrategy,
};
use insitu_fabric::TrafficClass;

#[test]
fn concurrent_576_clients_at_paper_task_counts() {
    // CAP1=512, CAP2=64 on 12-core nodes — the paper's exact task layout,
    // with 8^3 regions instead of 128^3 (16 MB -> 4 KB per task).
    let s = concurrent_scenario(512, 64, 8, pattern_pairs(&[4, 4, 4])[0]);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    assert_eq!(o.reports.len(), 64);
    let total = o.ledger.total_bytes(TrafficClass::InterApp);
    assert_eq!(total, s.decomposition(1).domain().num_cells() as u64 * 8);
    // The paper's headline: most coupled bytes stay on-node.
    let net_frac = o.ledger.network_fraction(TrafficClass::InterApp);
    assert!(
        net_frac < 0.35,
        "expected ~80% in-situ, got {:.0}% network",
        net_frac * 100.0
    );
}

#[test]
fn sequential_512_clients_at_paper_task_counts() {
    // SAP1=512 -> SAP2=128 + SAP3=384 on 12-core nodes.
    let s = sequential_scenario(512, 128, 384, 8, pattern_pairs(&[4, 4, 4])[0]);
    let o = run_threaded(&s, MappingStrategy::DataCentric);
    assert_eq!(o.verify_failures, 0);
    assert_eq!(o.reports.len(), 128 + 384);
    // Both consumers read the full domain.
    let total = o.ledger.total_bytes(TrafficClass::InterApp);
    assert_eq!(
        total,
        2 * s.decomposition(1).domain().num_cells() as u64 * 8
    );
    let net_frac = o.ledger.network_fraction(TrafficClass::InterApp);
    assert!(
        net_frac < 0.35,
        "expected ~90% in-situ, got {:.0}% network",
        net_frac * 100.0
    );
}

#[test]
fn round_robin_baseline_at_scale_is_nearly_all_network() {
    let s = concurrent_scenario(512, 64, 8, pattern_pairs(&[4, 4, 4])[0]);
    let o = run_threaded(&s, MappingStrategy::RoundRobin);
    assert_eq!(o.verify_failures, 0);
    assert!(
        o.ledger.network_fraction(TrafficClass::InterApp) > 0.9,
        "launcher placement should couple almost entirely over the network"
    );
}
