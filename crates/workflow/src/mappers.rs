//! Task-mapping strategies.
//!
//! Three strategies, as in the paper:
//!
//! * [`RoundRobinMapper`] — the baseline used by plain MPI launchers;
//! * [`DataCentricServerMapper`] — for bundles of *concurrently* coupled
//!   applications: partition the inter-application communication graph
//!   (METIS-style) into node-sized groups so communicating tasks share a
//!   node (§IV.B);
//! * [`map_client_side`] — for *sequentially* coupled consumers: each
//!   task is dispatched to the node already holding the largest share of
//!   its required data (§IV.B).

use crate::comm_graph::build_inter_app_graph_region;
use crate::spec::AppSpec;
use insitu_fabric::{CoreId, MachineSpec, NodeId};
use insitu_partition::{MultilevelPartitioner, PartitionConfig, Partitioner};
use std::collections::HashMap;

/// Tracks free cores while mapping one or more applications onto a
/// (possibly shared) machine.
#[derive(Clone, Debug)]
pub struct CoreAllocator {
    spec: MachineSpec,
    free: Vec<Vec<bool>>, // [node][local core]
}

impl CoreAllocator {
    /// All cores free.
    pub fn new(spec: MachineSpec) -> Self {
        CoreAllocator {
            spec,
            free: vec![vec![true; spec.cores_per_node as usize]; spec.nodes as usize],
        }
    }

    /// The machine.
    pub fn spec(&self) -> MachineSpec {
        self.spec
    }

    /// Free cores remaining on `node`.
    pub fn free_on(&self, node: NodeId) -> u32 {
        self.free[node as usize].iter().filter(|&&f| f).count() as u32
    }

    /// Total free cores.
    pub fn total_free(&self) -> u32 {
        (0..self.spec.nodes).map(|n| self.free_on(n)).sum()
    }

    /// Claim the lowest free core on `node`.
    pub fn alloc_on(&mut self, node: NodeId) -> Option<CoreId> {
        let locals = &mut self.free[node as usize];
        let local = locals.iter().position(|&f| f)?;
        locals[local] = false;
        Some(self.spec.core(node, local as u32))
    }

    /// Claim a core on the first node with space at or after `start`,
    /// cycling around.
    pub fn alloc_cyclic_from(&mut self, start: NodeId) -> Option<CoreId> {
        for i in 0..self.spec.nodes {
            let node = (start + i) % self.spec.nodes;
            if let Some(c) = self.alloc_on(node) {
                return Some(c);
            }
        }
        None
    }

    /// Release a core.
    pub fn release(&mut self, core: CoreId) {
        let node = self.spec.node_of_core(core) as usize;
        let local = self.spec.local_core(core) as usize;
        assert!(!self.free[node][local], "double release of core {core}");
        self.free[node][local] = true;
    }
}

/// Per-app task -> core assignment for one bundle.
#[derive(Clone, Debug, Default)]
pub struct BundleMapping {
    /// `cores[&app_id][rank]` is the core of that app's task `rank`.
    pub cores: HashMap<u32, Vec<CoreId>>,
}

impl BundleMapping {
    /// Core of one task.
    pub fn core_of(&self, app: u32, rank: u32) -> CoreId {
        self.cores[&app][rank as usize]
    }
}

/// Strategy interface for mapping a bundle of concurrently launched
/// applications.
pub trait BundleMapper {
    /// Map every task of every app in the bundle onto free cores.
    ///
    /// # Panics
    /// Panics if the allocator lacks capacity.
    fn map_bundle(&self, alloc: &mut CoreAllocator, apps: &[&AppSpec]) -> BundleMapping;

    /// Strategy name for experiment output.
    fn name(&self) -> &'static str;
}

/// The baseline: deal tasks (apps concatenated in declaration order) to
/// nodes cyclically, taking the next free core on each — what a plain
/// launcher does with no knowledge of coupling.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinMapper;

impl BundleMapper for RoundRobinMapper {
    fn map_bundle(&self, alloc: &mut CoreAllocator, apps: &[&AppSpec]) -> BundleMapping {
        let mut mapping = BundleMapping::default();
        let mut node: NodeId = 0;
        for app in apps {
            let mut cores = Vec::with_capacity(app.ntasks as usize);
            for _ in 0..app.ntasks {
                let core = alloc
                    .alloc_cyclic_from(node)
                    .expect("not enough cores for bundle");
                node = (alloc.spec().node_of_core(core) + 1) % alloc.spec().nodes;
                cores.push(core);
            }
            mapping.cores.insert(app.id, cores);
        }
        mapping
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Launcher-style sequential packing (ranks fill node 0, then node 1,
/// ...): the other common baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct PackedMapper;

impl BundleMapper for PackedMapper {
    fn map_bundle(&self, alloc: &mut CoreAllocator, apps: &[&AppSpec]) -> BundleMapping {
        let mut mapping = BundleMapping::default();
        for app in apps {
            let mut cores = Vec::with_capacity(app.ntasks as usize);
            for _ in 0..app.ntasks {
                let core = alloc
                    .alloc_cyclic_from(0)
                    .expect("not enough cores for bundle");
                cores.push(core);
            }
            mapping.cores.insert(app.id, cores);
        }
        mapping
    }

    fn name(&self) -> &'static str {
        "packed"
    }
}

/// Server-side data-centric mapping for concurrently coupled bundles:
/// build the inter-application communication graph, partition it into
/// `total_tasks / cores_per_node` groups with a hard per-group cap of
/// `cores_per_node`, map each group to one node, and deal the group's
/// tasks to that node's cores.
#[derive(Clone, Debug)]
pub struct DataCentricServerMapper {
    /// Bytes per coupled cell, the edge-weight unit.
    pub elem_bytes: u64,
    /// The graph partitioner (METIS substitute).
    pub partitioner: MultilevelPartitioner,
    /// Coupled region restriction (interface-region coupling); `None`
    /// couples the full shared domain.
    pub region: Option<insitu_domain::BoundingBox>,
}

impl Default for DataCentricServerMapper {
    fn default() -> Self {
        DataCentricServerMapper {
            elem_bytes: 8,
            partitioner: MultilevelPartitioner::default(),
            region: None,
        }
    }
}

impl BundleMapper for DataCentricServerMapper {
    fn map_bundle(&self, alloc: &mut CoreAllocator, apps: &[&AppSpec]) -> BundleMapping {
        // Single-app bundles have no inter-app edges; pack them.
        if apps.len() < 2 {
            return PackedMapper.map_bundle(alloc, apps);
        }
        let (graph, offsets) =
            build_inter_app_graph_region(apps, self.elem_bytes, self.region.as_ref());
        let total: u32 = apps.iter().map(|a| a.ntasks).sum();
        let cap = alloc.spec().cores_per_node as u64;
        let nparts = (total as u64).div_ceil(cap) as usize;
        let parts = self
            .partitioner
            .partition(&graph, &PartitionConfig::with_cap(nparts, cap));

        // Choose a distinct node (with full capacity preferred) per group.
        let mut group_node: Vec<Option<NodeId>> = vec![None; nparts];
        let mut next_node: NodeId = 0;
        let mut node_for_group = |g: usize, alloc: &CoreAllocator| -> NodeId {
            let mut hops = 0;
            while alloc.free_on(next_node) == 0 {
                next_node = (next_node + 1) % alloc.spec().nodes;
                hops += 1;
                assert!(hops <= alloc.spec().nodes, "no capacity for group {g}");
            }
            let n = next_node;
            next_node = (next_node + 1) % alloc.spec().nodes;
            n
        };

        let mut mapping = BundleMapping::default();
        for (ai, app) in apps.iter().enumerate() {
            mapping.cores.insert(app.id, vec![0; app.ntasks as usize]);
            let _ = ai;
        }
        for (ai, app) in apps.iter().enumerate() {
            for rank in 0..app.ntasks {
                let v = (offsets[ai] + rank) as usize;
                let g = parts[v] as usize;
                let node = match group_node[g] {
                    Some(n) => n,
                    None => {
                        let n = node_for_group(g, alloc);
                        group_node[g] = Some(n);
                        n
                    }
                };
                let core = alloc
                    .alloc_on(node)
                    .or_else(|| alloc.alloc_cyclic_from(node))
                    .expect("not enough cores for bundle");
                mapping.cores.get_mut(&app.id).unwrap()[rank as usize] = core;
            }
        }
        mapping
    }

    fn name(&self) -> &'static str {
        "data-centric(server)"
    }
}

/// Client-side data-centric mapping for a sequentially coupled consumer:
/// for each task, `locate(rank)` reports how many bytes of the task's
/// required region live on each node (from the Data Lookup service); the
/// task is dispatched to the feasible node holding the most.
///
/// Returns the task -> core assignment.
///
/// # Panics
/// Panics if the allocator runs out of cores.
pub fn map_client_side(
    alloc: &mut CoreAllocator,
    ntasks: u32,
    mut locate: impl FnMut(u32) -> Vec<(NodeId, u64)>,
) -> Vec<CoreId> {
    let mut cores = Vec::with_capacity(ntasks as usize);
    for rank in 0..ntasks {
        let mut candidates = locate(rank);
        // Prefer max local bytes; deterministic tie-break on node id.
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let chosen = candidates
            .iter()
            .find_map(|&(node, _)| alloc.alloc_on(node))
            .or_else(|| alloc.alloc_cyclic_from(rank % alloc.spec().nodes))
            .expect("not enough cores for consumer app");
        cores.push(chosen);
    }
    cores
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};

    fn blocked_app(id: u32, sizes: &[u64], procs: &[u64]) -> AppSpec {
        let ntasks: u64 = procs.iter().product();
        AppSpec::new(id, format!("a{id}"), ntasks as u32).with_decomposition(Decomposition::new(
            BoundingBox::from_sizes(sizes),
            ProcessGrid::new(procs),
            Distribution::Blocked,
        ))
    }

    #[test]
    fn allocator_basics() {
        let mut a = CoreAllocator::new(MachineSpec::new(2, 2));
        assert_eq!(a.total_free(), 4);
        let c0 = a.alloc_on(0).unwrap();
        assert_eq!(c0, 0);
        assert_eq!(a.free_on(0), 1);
        a.release(c0);
        assert_eq!(a.free_on(0), 2);
    }

    #[test]
    fn allocator_cyclic_skips_full_nodes() {
        let mut a = CoreAllocator::new(MachineSpec::new(2, 1));
        assert_eq!(a.alloc_cyclic_from(0), Some(0));
        assert_eq!(a.alloc_cyclic_from(0), Some(1));
        assert_eq!(a.alloc_cyclic_from(0), None);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn allocator_rejects_double_release() {
        let mut a = CoreAllocator::new(MachineSpec::new(1, 1));
        let c = a.alloc_on(0).unwrap();
        a.release(c);
        a.release(c);
    }

    #[test]
    fn round_robin_spreads_across_nodes() {
        let spec = MachineSpec::new(4, 2);
        let mut alloc = CoreAllocator::new(spec);
        let apps = [blocked_app(1, &[8, 8], &[2, 2])];
        let m = RoundRobinMapper.map_bundle(&mut alloc, &[&apps[0]]);
        let nodes: Vec<NodeId> = m.cores[&1].iter().map(|&c| spec.node_of_core(c)).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn packed_fills_first_node() {
        let spec = MachineSpec::new(4, 2);
        let mut alloc = CoreAllocator::new(spec);
        let apps = [blocked_app(1, &[8, 8], &[2, 2])];
        let m = PackedMapper.map_bundle(&mut alloc, &[&apps[0]]);
        let nodes: Vec<NodeId> = m.cores[&1].iter().map(|&c| spec.node_of_core(c)).collect();
        assert_eq!(nodes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn data_centric_colocates_coupled_pairs() {
        // Producer 2x2 and consumer 2x2 with identical decompositions:
        // coupled pairs (same rank) must share a node; 4 nodes x 2 cores.
        let spec = MachineSpec::new(4, 2);
        let mut alloc = CoreAllocator::new(spec);
        let p = blocked_app(1, &[8, 8], &[2, 2]);
        let c = blocked_app(2, &[8, 8], &[2, 2]);
        let m = DataCentricServerMapper::default().map_bundle(&mut alloc, &[&p, &c]);
        for rank in 0..4u32 {
            let np = spec.node_of_core(m.core_of(1, rank));
            let nc = spec.node_of_core(m.core_of(2, rank));
            assert_eq!(np, nc, "coupled pair {rank} split across nodes");
        }
    }

    #[test]
    fn data_centric_respects_capacity() {
        let spec = MachineSpec::new(2, 4);
        let mut alloc = CoreAllocator::new(spec);
        let p = blocked_app(1, &[8, 8], &[2, 2]);
        let c = blocked_app(2, &[8, 8], &[2, 2]);
        let m = DataCentricServerMapper::default().map_bundle(&mut alloc, &[&p, &c]);
        // 8 tasks on 8 cores, no node oversubscribed.
        let mut per_node = [0u32; 2];
        for cores in m.cores.values() {
            for &core in cores {
                per_node[spec.node_of_core(core) as usize] += 1;
            }
        }
        assert_eq!(per_node, [4, 4]);
        assert_eq!(alloc.total_free(), 0);
    }

    #[test]
    fn data_centric_single_app_falls_back_to_packed() {
        let spec = MachineSpec::new(2, 2);
        let mut alloc = CoreAllocator::new(spec);
        let p = blocked_app(1, &[8, 8], &[2, 2]);
        let m = DataCentricServerMapper::default().map_bundle(&mut alloc, &[&p]);
        assert_eq!(m.cores[&1].len(), 4);
    }

    #[test]
    fn client_side_follows_data() {
        let spec = MachineSpec::new(4, 2);
        let mut alloc = CoreAllocator::new(spec);
        // Task r's data lives on node r.
        let cores = map_client_side(&mut alloc, 4, |r| vec![(r, 1000)]);
        for (r, &core) in cores.iter().enumerate() {
            assert_eq!(spec.node_of_core(core), r as u32);
        }
    }

    #[test]
    fn client_side_prefers_biggest_share() {
        let spec = MachineSpec::new(3, 2);
        let mut alloc = CoreAllocator::new(spec);
        let cores = map_client_side(&mut alloc, 1, |_| vec![(0, 10), (1, 500), (2, 20)]);
        assert_eq!(spec.node_of_core(cores[0]), 1);
    }

    #[test]
    fn client_side_overflows_when_preferred_full() {
        let spec = MachineSpec::new(2, 1);
        let mut alloc = CoreAllocator::new(spec);
        // Both tasks want node 0, which has one core.
        let cores = map_client_side(&mut alloc, 2, |_| vec![(0, 100), (1, 1)]);
        assert_eq!(spec.node_of_core(cores[0]), 0);
        assert_eq!(spec.node_of_core(cores[1]), 1);
    }

    #[test]
    fn client_side_no_location_info_falls_back() {
        let spec = MachineSpec::new(2, 2);
        let mut alloc = CoreAllocator::new(spec);
        let cores = map_client_side(&mut alloc, 4, |_| vec![]);
        assert_eq!(cores.len(), 4);
    }
}
