//! Parser for the DAG description-file format of Listing 1.
//!
//! ```text
//! # Climate Modeling Workflow
//! APP_ID 1
//! APP_ID 2
//! APP_ID 3
//! PARENT_APPID 1 CHILD_APPID 2
//! PARENT_APPID 1 CHILD_APPID 3
//! BUNDLE 1
//! BUNDLE 2
//! BUNDLE 3
//! ```
//!
//! `#` starts a comment; blank lines are ignored. `BUNDLE` lists the app
//! ids of one bundle. Task counts and decompositions are attached
//! programmatically after parsing (they are not part of the paper's file
//! format).

use crate::spec::{AppSpec, WorkflowSpec};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a DAG description file into a [`WorkflowSpec`] skeleton (apps
/// have `ntasks = 0` and no decomposition until configured).
pub fn parse_dag(input: &str) -> Result<WorkflowSpec, ParseError> {
    let mut spec = WorkflowSpec::default();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |m: String| ParseError {
            line: lineno,
            message: m,
        };
        let parse_id = |s: &str| -> Result<u32, ParseError> {
            s.parse::<u32>()
                .map_err(|_| err(format!("invalid app id '{s}'")))
        };
        match toks[0] {
            "APP_ID" => {
                if toks.len() != 2 {
                    return Err(err("APP_ID takes exactly one id".into()));
                }
                let id = parse_id(toks[1])?;
                if spec.apps.iter().any(|a| a.id == id) {
                    return Err(err(format!("app {id} declared twice")));
                }
                spec.apps.push(AppSpec::new(id, format!("app{id}"), 0));
            }
            "PARENT_APPID" => {
                if toks.len() != 4 || toks[2] != "CHILD_APPID" {
                    return Err(err("expected 'PARENT_APPID <id> CHILD_APPID <id>'".into()));
                }
                spec.edges.push((parse_id(toks[1])?, parse_id(toks[3])?));
            }
            "BUNDLE" => {
                if toks.len() < 2 {
                    return Err(err("BUNDLE needs at least one app id".into()));
                }
                let ids = toks[1..]
                    .iter()
                    .map(|s| parse_id(s))
                    .collect::<Result<Vec<u32>, _>>()?;
                spec.bundles.push(ids);
            }
            other => return Err(err(format!("unknown directive '{other}'"))),
        }
    }
    Ok(spec)
}

/// The paper's Listing 1, first workflow (online data processing).
pub const ONLINE_PROCESSING_DAG: &str = "\
# Online Data Processing Workflow
# Simulation code has appid=1
# Bundle is specified by IDs of its applications
APP_ID 1
APP_ID 2

BUNDLE 1 2
";

/// The paper's Listing 1, second workflow (climate modeling).
pub const CLIMATE_MODELING_DAG: &str = "\
# Climate Modeling Workflow
# Atmosphere model has appid=1
# Land model has appid=2, Sea-ice model has appid=3
APP_ID 1
APP_ID 2
APP_ID 3
PARENT_APPID 1 CHILD_APPID 2
PARENT_APPID 1 CHILD_APPID 3
BUNDLE 1
BUNDLE 2
BUNDLE 3
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_online_processing() {
        let w = parse_dag(ONLINE_PROCESSING_DAG).unwrap();
        assert_eq!(w.apps.len(), 2);
        assert!(w.edges.is_empty());
        assert_eq!(w.bundles, vec![vec![1, 2]]);
        w.validate().unwrap();
    }

    #[test]
    fn parses_listing1_climate() {
        let w = parse_dag(CLIMATE_MODELING_DAG).unwrap();
        assert_eq!(w.apps.len(), 3);
        assert_eq!(w.edges, vec![(1, 2), (1, 3)]);
        assert_eq!(w.bundles, vec![vec![1], vec![2], vec![3]]);
        w.validate().unwrap();
        let sched = w.bundle_schedule().unwrap();
        assert_eq!(sched[0], vec![1]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let w = parse_dag("# just a comment\n\nAPP_ID 7 # trailing comment\n").unwrap();
        assert_eq!(w.apps.len(), 1);
        assert_eq!(w.apps[0].id, 7);
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_dag("APP_ID 1\nBOGUS 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("BOGUS"));
    }

    #[test]
    fn rejects_malformed_parent_child() {
        let err = parse_dag("PARENT_APPID 1 KID 2").unwrap_err();
        assert!(err.message.contains("CHILD_APPID"));
    }

    #[test]
    fn rejects_duplicate_app() {
        let err = parse_dag("APP_ID 1\nAPP_ID 1").unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn rejects_bad_id() {
        let err = parse_dag("APP_ID banana").unwrap_err();
        assert!(err.message.contains("invalid app id"));
    }

    #[test]
    fn rejects_empty_bundle() {
        let err = parse_dag("BUNDLE").unwrap_err();
        assert!(err.message.contains("at least one"));
    }

    #[test]
    fn multi_app_bundle() {
        let w = parse_dag("APP_ID 1\nAPP_ID 2\nAPP_ID 3\nBUNDLE 1 2 3").unwrap();
        assert_eq!(w.bundles, vec![vec![1, 2, 3]]);
    }
}
