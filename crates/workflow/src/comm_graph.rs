//! Inter-application communication graph construction.
//!
//! For a bundle of concurrently coupled applications the server-side
//! mapper builds a graph whose vertices are computation tasks and whose
//! edges connect tasks of *different* applications that exchange coupled
//! data, weighted by overlap volume (§IV.B). Because all supported
//! distributions are separable per dimension, pairwise overlaps are
//! computed dimension-by-dimension with a single sweep over block
//! boundaries — never by enumerating cells — so 8192-task graphs are cheap.

use crate::spec::AppSpec;
use insitu_domain::{BoundingBox, Decomposition};
use insitu_partition::{Graph, GraphBuilder};

/// Joint ownership counts between two block-cyclic layouts of the same
/// 1-D extent: `m[g1][g2]` = number of positions owned by coordinate `g1`
/// of layout 1 *and* coordinate `g2` of layout 2. One sweep over block
/// boundaries, O(extent / min(b1, b2)) steps.
pub fn joint_dim_counts(extent: u64, b1: u64, p1: u64, b2: u64, p2: u64) -> Vec<Vec<u64>> {
    joint_dim_counts_range(0, extent - 1, b1, p1, b2, p2)
}

/// [`joint_dim_counts`] restricted to the inclusive position window
/// `[lo, hi]` — the per-dimension primitive of interface-region coupling.
pub fn joint_dim_counts_range(
    lo: u64,
    hi: u64,
    b1: u64,
    p1: u64,
    b2: u64,
    p2: u64,
) -> Vec<Vec<u64>> {
    assert!(b1 > 0 && b2 > 0 && p1 > 0 && p2 > 0);
    assert!(lo <= hi, "empty window");
    let mut m = vec![vec![0u64; p2 as usize]; p1 as usize];
    let mut x = lo;
    loop {
        let g1 = (x / b1) % p1;
        let g2 = (x / b2) % p2;
        let next = ((x / b1 + 1) * b1).min((x / b2 + 1) * b2).min(hi + 1);
        m[g1 as usize][g2 as usize] += next - x;
        if next > hi {
            return m;
        }
        x = next;
    }
}

/// Pairwise task-overlap volumes between two decompositions of the same
/// domain, as a sparse list `(rank_a, rank_b, cells)`.
#[allow(clippy::needless_range_loop)]
pub fn pairwise_overlaps(a: &Decomposition, b: &Decomposition) -> Vec<(u64, u64, u128)> {
    pairwise_overlaps_region(a, b, a.domain())
}

/// [`pairwise_overlaps`] restricted to a coupled `region` (clamped to the
/// domain): the interface-region coupling of Fig. 1's climate case, where
/// only the boundary layer is exchanged.
#[allow(clippy::needless_range_loop)]
pub fn pairwise_overlaps_region(
    a: &Decomposition,
    b: &Decomposition,
    region: &BoundingBox,
) -> Vec<(u64, u64, u128)> {
    assert_eq!(
        a.domain(),
        b.domain(),
        "coupled apps must share the data domain"
    );
    let Some(region) = a.domain().intersect(region) else {
        return Vec::new();
    };
    let ndim = a.domain().ndim();
    // Per-dimension sparse joint counts.
    let mut dims: Vec<Vec<(u64, u64, u64)>> = Vec::with_capacity(ndim);
    for d in 0..ndim {
        let lo = region.lb(d) - a.domain().lb(d);
        let hi = region.ub(d) - a.domain().lb(d);
        let m = joint_dim_counts_range(
            lo,
            hi,
            a.block_extent(d),
            a.grid().dim(d),
            b.block_extent(d),
            b.grid().dim(d),
        );
        let mut sparse = Vec::new();
        for (g1, row) in m.iter().enumerate() {
            for (g2, &c) in row.iter().enumerate() {
                if c > 0 {
                    sparse.push((g1 as u64, g2 as u64, c));
                }
            }
        }
        dims.push(sparse);
    }
    // Cartesian product of nonzero per-dim pairs -> nonzero rank pairs.
    let mut out = Vec::new();
    let mut idx = vec![0usize; ndim];
    if dims.iter().any(|d| d.is_empty()) {
        return out;
    }
    loop {
        let mut ca = [0u64; insitu_domain::MAX_DIMS];
        let mut cb = [0u64; insitu_domain::MAX_DIMS];
        let mut cells: u128 = 1;
        for d in 0..ndim {
            let (g1, g2, c) = dims[d][idx[d]];
            ca[d] = g1;
            cb[d] = g2;
            cells *= c as u128;
        }
        out.push((a.grid().rank_of(&ca), b.grid().rank_of(&cb), cells));
        let mut d = ndim;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            if idx[d] + 1 < dims[d].len() {
                idx[d] += 1;
                for cd in d + 1..ndim {
                    idx[cd] = 0;
                }
                break;
            }
        }
    }
}

/// The inter-application communication graph of a bundle, plus the global
/// vertex offset of each app's task 0.
///
/// Vertex `offsets[i] + rank` is task `rank` of `apps[i]`. Edge weights
/// are coupled bytes (`cells * elem_bytes`).
///
/// # Panics
/// Panics if any app lacks a decomposition or domains differ.
pub fn build_inter_app_graph(apps: &[&AppSpec], elem_bytes: u64) -> (Graph, Vec<u32>) {
    build_inter_app_graph_region(apps, elem_bytes, None)
}

/// [`build_inter_app_graph`] with the coupling restricted to `region`
/// (interface-region coupling); `None` couples the full shared domain.
pub fn build_inter_app_graph_region(
    apps: &[&AppSpec],
    elem_bytes: u64,
    region: Option<&BoundingBox>,
) -> (Graph, Vec<u32>) {
    assert!(!apps.is_empty());
    let mut offsets = Vec::with_capacity(apps.len());
    let mut total = 0u32;
    for a in apps {
        offsets.push(total);
        total += a.ntasks;
    }
    let mut builder = GraphBuilder::new(total);
    for i in 0..apps.len() {
        for j in i + 1..apps.len() {
            let da = apps[i]
                .decomposition
                .as_ref()
                .unwrap_or_else(|| panic!("app {} lacks a decomposition", apps[i].id));
            let db = apps[j]
                .decomposition
                .as_ref()
                .unwrap_or_else(|| panic!("app {} lacks a decomposition", apps[j].id));
            let coupled = region.copied().unwrap_or(*da.domain());
            for (ra, rb, cells) in pairwise_overlaps_region(da, db, &coupled) {
                let w = (cells as u64).saturating_mul(elem_bytes);
                builder.add_edge(offsets[i] + ra as u32, offsets[j] + rb as u32, w);
            }
        }
    }
    (builder.build(), offsets)
}

/// Fan-out statistics of the coupling between two decompositions: for
/// each consumer rank of `b`, how many producer ranks of `a` it must
/// contact. This quantifies Fig. 10's mismatched-distribution effect.
pub fn fanout_per_consumer(a: &Decomposition, b: &Decomposition) -> Vec<u32> {
    let mut fanout = vec![0u32; b.num_ranks() as usize];
    for (_ra, rb, _cells) in pairwise_overlaps(a, b) {
        fanout[rb as usize] += 1;
    }
    fanout
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{BoundingBox, Distribution, ProcessGrid};

    fn dec(sizes: &[u64], procs: &[u64], dist: Distribution) -> Decomposition {
        Decomposition::new(
            BoundingBox::from_sizes(sizes),
            ProcessGrid::new(procs),
            dist,
        )
    }

    #[test]
    fn joint_counts_match_brute_force() {
        for (b1, p1, b2, p2, extent) in [
            (2u64, 3u64, 3u64, 2u64, 17u64),
            (1, 4, 4, 1, 16),
            (3, 2, 2, 3, 20),
        ] {
            let m = joint_dim_counts(extent, b1, p1, b2, p2);
            for g1 in 0..p1 {
                for g2 in 0..p2 {
                    let brute = (0..extent)
                        .filter(|x| (x / b1) % p1 == g1 && (x / b2) % p2 == g2)
                        .count() as u64;
                    assert_eq!(m[g1 as usize][g2 as usize], brute, "g1={g1} g2={g2}");
                }
            }
        }
    }

    #[test]
    fn pairwise_overlaps_match_brute_force() {
        let a = dec(&[12, 10], &[2, 2], Distribution::Blocked);
        let b = dec(&[12, 10], &[3, 1], Distribution::Cyclic);
        let overlaps = pairwise_overlaps(&a, &b);
        // Brute force over cells.
        let mut brute = std::collections::HashMap::new();
        for p in a.domain().iter_points() {
            let ra = a.owner_of_point(&p[..2]);
            let rb = b.owner_of_point(&p[..2]);
            *brute.entry((ra, rb)).or_insert(0u128) += 1;
        }
        assert_eq!(overlaps.len(), brute.len());
        for (ra, rb, cells) in overlaps {
            assert_eq!(brute[&(ra, rb)], cells);
        }
    }

    #[test]
    fn overlaps_sum_to_domain_volume() {
        let a = dec(&[16, 16], &[4, 2], Distribution::block_cyclic(&[2, 4]));
        let b = dec(&[16, 16], &[2, 2], Distribution::Blocked);
        let total: u128 = pairwise_overlaps(&a, &b).iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn identical_blocked_decompositions_pair_one_to_one() {
        let a = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let b = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let o = pairwise_overlaps(&a, &b);
        assert_eq!(o.len(), 4);
        assert!(o.iter().all(|&(ra, rb, c)| ra == rb && c == 16));
    }

    #[test]
    fn mismatched_distributions_fan_out() {
        // Blocked producer vs cyclic consumer: every consumer touches
        // every producer (the Fig. 10 pathology).
        let a = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let b = dec(&[8, 8], &[2, 2], Distribution::Cyclic);
        let fan = fanout_per_consumer(&a, &b);
        assert!(fan.iter().all(|&f| f == 4), "{fan:?}");
        // Matched: fan-out exactly 1.
        let fan_matched = fanout_per_consumer(&a, &a);
        assert!(fan_matched.iter().all(|&f| f == 1));
    }

    #[test]
    fn m_to_n_coarsening() {
        // 4-rank producer, 1-rank consumer: consumer touches all 4.
        let a = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let b = dec(&[8, 8], &[1, 1], Distribution::Blocked);
        let o = pairwise_overlaps(&a, &b);
        assert_eq!(o.len(), 4);
        assert!(o.iter().all(|&(_, rb, _)| rb == 0));
    }

    #[test]
    fn graph_vertices_and_offsets() {
        let a = AppSpec::new(1, "p", 4).with_decomposition(dec(
            &[8, 8],
            &[2, 2],
            Distribution::Blocked,
        ));
        let b = AppSpec::new(2, "c", 1).with_decomposition(dec(
            &[8, 8],
            &[1, 1],
            Distribution::Blocked,
        ));
        let (g, off) = build_inter_app_graph(&[&a, &b], 8);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(off, vec![0, 4]);
        // Consumer vertex 4 connects to all four producer tasks.
        assert_eq!(g.degree(4), 4);
        // Edge weights: 16 cells x 8 bytes.
        for (_, w) in g.neighbors(4) {
            assert_eq!(w, 128);
        }
    }

    #[test]
    fn three_app_bundle_graph() {
        let d = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let apps: Vec<AppSpec> = (1..=3)
            .map(|i| AppSpec::new(i, format!("a{i}"), 4).with_decomposition(d))
            .collect();
        let refs: Vec<&AppSpec> = apps.iter().collect();
        let (g, off) = build_inter_app_graph(&refs, 1);
        assert_eq!(off, vec![0, 4, 8]);
        // Identical decompositions: each task couples 1:1 with its peer in
        // each other app -> degree 2.
        for v in 0..12u32 {
            assert_eq!(g.degree(v), 2, "vertex {v}");
        }
    }

    #[test]
    #[should_panic(expected = "share the data domain")]
    fn rejects_mismatched_domains() {
        let a = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let b = dec(&[16, 16], &[2, 2], Distribution::Blocked);
        pairwise_overlaps(&a, &b);
    }

    #[test]
    #[should_panic(expected = "lacks a decomposition")]
    fn rejects_missing_decomposition() {
        let a = AppSpec::new(1, "p", 4).with_decomposition(dec(
            &[8, 8],
            &[2, 2],
            Distribution::Blocked,
        ));
        let b = AppSpec::new(2, "c", 1);
        build_inter_app_graph(&[&a, &b], 8);
    }
}
