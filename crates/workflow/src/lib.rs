//! Workflow management for in-situ coupled scientific applications.
//!
//! Implements the paper's workflow management server and mapping logic:
//!
//! * [`parser`] — the DAG description-file format of Listing 1;
//! * [`spec`] — applications, dependency edges, bundles and the wave
//!   schedule the Workflow Engine enacts;
//! * [`comm_graph`] — inter-application communication graphs built from
//!   declared data decompositions (closed-form overlap volumes);
//! * [`mappers`] — round-robin baseline, server-side data-centric mapping
//!   (graph partitioning) and client-side data-centric mapping (follow the
//!   data);
//! * [`groups`] — dynamic client grouping by application color, the
//!   `MPI_Comm_split` analog;
//! * [`engine`] — client registration and wave-by-wave DAG enactment.

#![warn(missing_docs)]

pub mod authoring;
pub mod comm_graph;
pub mod engine;
pub mod groups;
pub mod mappers;
pub mod parser;
pub mod spec;

pub use authoring::{compile_workflow, parse_override, AuthorError, AuthoredWorkflow};
pub use comm_graph::{
    build_inter_app_graph, build_inter_app_graph_region, fanout_per_consumer, pairwise_overlaps,
    pairwise_overlaps_region,
};
pub use engine::{ClientRegistry, ClientState, WaveLaunch, WorkflowEngine};
pub use groups::{split_by_color, AppGroup};
pub use mappers::{
    map_client_side, BundleMapper, BundleMapping, CoreAllocator, DataCentricServerMapper,
    PackedMapper, RoundRobinMapper,
};
pub use parser::{parse_dag, ParseError, CLIMATE_MODELING_DAG, ONLINE_PROCESSING_DAG};
pub use spec::{AppSpec, SpecError, WorkflowSpec};
