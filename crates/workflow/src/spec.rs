//! Workflow specifications: applications, dependency edges and bundles.
//!
//! The DAG representation extends DAGMan-style DAGs "with the concept of a
//! 'bundle' which represents a group of parallel applications that need to
//! be scheduled simultaneously" (§III.B). Edges represent data dependencies
//! between sequentially coupled applications.

use insitu_domain::Decomposition;
use std::collections::{HashMap, HashSet};

/// One parallel application of the workflow.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// User-assigned unique application id (the "color" of its clients).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Number of computation tasks (MPI processes) the app runs with.
    pub ntasks: u32,
    /// Declared decomposition of the coupled data domain, required for
    /// data-centric mapping.
    pub decomposition: Option<Decomposition>,
}

impl AppSpec {
    /// An app with no declared decomposition.
    pub fn new(id: u32, name: impl Into<String>, ntasks: u32) -> Self {
        AppSpec {
            id,
            name: name.into(),
            ntasks,
            decomposition: None,
        }
    }

    /// Attach the coupled-data decomposition.
    pub fn with_decomposition(mut self, dec: Decomposition) -> Self {
        assert_eq!(
            dec.num_ranks(),
            self.ntasks as u64,
            "decomposition ranks must equal ntasks"
        );
        self.decomposition = Some(dec);
        self
    }
}

/// Errors from workflow validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Two applications share an id.
    DuplicateAppId(u32),
    /// An edge or bundle references an unknown application.
    UnknownApp(u32),
    /// An application appears in more than one bundle.
    AppInMultipleBundles(u32),
    /// The dependency graph has a cycle.
    Cyclic,
    /// A bundle would depend on itself through its member apps.
    IntraBundleDependency(u32, u32),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::DuplicateAppId(id) => write!(f, "duplicate app id {id}"),
            SpecError::UnknownApp(id) => write!(f, "unknown app id {id}"),
            SpecError::AppInMultipleBundles(id) => {
                write!(f, "app {id} appears in multiple bundles")
            }
            SpecError::Cyclic => write!(f, "workflow DAG has a cycle"),
            SpecError::IntraBundleDependency(a, b) => {
                write!(f, "apps {a} and {b} are bundled but sequentially dependent")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete workflow: apps, edges and bundles.
#[derive(Clone, Debug, Default)]
pub struct WorkflowSpec {
    /// The component applications.
    pub apps: Vec<AppSpec>,
    /// Data-dependency edges `(parent_app, child_app)`.
    pub edges: Vec<(u32, u32)>,
    /// Bundles of concurrently coupled applications (by app id). Apps not
    /// listed in any bundle are treated as singleton bundles by
    /// [`WorkflowSpec::normalized_bundles`].
    pub bundles: Vec<Vec<u32>>,
}

impl WorkflowSpec {
    /// Look up an app by id.
    pub fn app(&self, id: u32) -> Option<&AppSpec> {
        self.apps.iter().find(|a| a.id == id)
    }

    /// Bundles with singleton bundles added for unbundled apps, preserving
    /// declaration order.
    pub fn normalized_bundles(&self) -> Vec<Vec<u32>> {
        let mut bundles = self.bundles.clone();
        let bundled: HashSet<u32> = bundles.iter().flatten().copied().collect();
        for a in &self.apps {
            if !bundled.contains(&a.id) {
                bundles.push(vec![a.id]);
            }
        }
        bundles
    }

    /// Validate ids, bundle membership and acyclicity.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut ids = HashSet::new();
        for a in &self.apps {
            if !ids.insert(a.id) {
                return Err(SpecError::DuplicateAppId(a.id));
            }
        }
        for &(p, c) in &self.edges {
            if !ids.contains(&p) {
                return Err(SpecError::UnknownApp(p));
            }
            if !ids.contains(&c) {
                return Err(SpecError::UnknownApp(c));
            }
        }
        let mut seen = HashSet::new();
        for b in &self.bundles {
            for &id in b {
                if !ids.contains(&id) {
                    return Err(SpecError::UnknownApp(id));
                }
                if !seen.insert(id) {
                    return Err(SpecError::AppInMultipleBundles(id));
                }
            }
        }
        // No dependency may connect two apps of the same bundle.
        for b in &self.normalized_bundles() {
            let set: HashSet<u32> = b.iter().copied().collect();
            for &(p, c) in &self.edges {
                if set.contains(&p) && set.contains(&c) {
                    return Err(SpecError::IntraBundleDependency(p, c));
                }
            }
        }
        self.bundle_schedule().map(|_| ())
    }

    /// Execution *waves* of (normalized) bundles: wave `k+1` contains
    /// every bundle whose dependencies are all satisfied by waves `0..=k`.
    /// Bundles of the same wave launch simultaneously — this is how SAP2
    /// and SAP3 run concurrently after SAP1 in the paper's sequential
    /// scenario.
    pub fn bundle_waves(&self) -> Result<Vec<Vec<Vec<u32>>>, SpecError> {
        let bundles = self.normalized_bundles();
        let bundle_of: HashMap<u32, usize> = bundles
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.iter().map(move |&id| (id, i)))
            .collect();
        let n = bundles.len();
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for &(p, c) in &self.edges {
            let (bp, bc) = (bundle_of[&p], bundle_of[&c]);
            if bp != bc {
                deps[bc].insert(bp);
            }
        }
        let mut waves = Vec::new();
        let mut done: HashSet<usize> = HashSet::new();
        while done.len() < n {
            let ready: Vec<usize> = (0..n)
                .filter(|i| !done.contains(i) && deps[*i].iter().all(|d| done.contains(d)))
                .collect();
            if ready.is_empty() {
                return Err(SpecError::Cyclic);
            }
            waves.push(ready.iter().map(|&i| bundles[i].clone()).collect());
            done.extend(ready);
        }
        Ok(waves)
    }

    /// Topological order of (normalized) bundles: [`Self::bundle_waves`]
    /// flattened. This is the Workflow Engine's enactment order.
    pub fn bundle_schedule(&self) -> Result<Vec<Vec<u32>>, SpecError> {
        Ok(self.bundle_waves()?.into_iter().flatten().collect())
    }

    /// Total tasks across all apps.
    pub fn total_tasks(&self) -> u32 {
        self.apps.iter().map(|a| a.ntasks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's online-data-processing workflow: two concurrently
    /// coupled apps in one bundle.
    fn online_processing() -> WorkflowSpec {
        WorkflowSpec {
            apps: vec![
                AppSpec::new(1, "simulation", 8),
                AppSpec::new(2, "analysis", 2),
            ],
            edges: vec![],
            bundles: vec![vec![1, 2]],
        }
    }

    /// The paper's climate-modeling workflow: atmosphere feeds land and
    /// sea-ice, each a singleton bundle.
    fn climate() -> WorkflowSpec {
        WorkflowSpec {
            apps: vec![
                AppSpec::new(1, "atmosphere", 8),
                AppSpec::new(2, "land", 2),
                AppSpec::new(3, "sea-ice", 6),
            ],
            edges: vec![(1, 2), (1, 3)],
            bundles: vec![vec![1], vec![2], vec![3]],
        }
    }

    #[test]
    fn online_processing_valid_single_bundle() {
        let w = online_processing();
        w.validate().unwrap();
        assert_eq!(w.bundle_schedule().unwrap(), vec![vec![1, 2]]);
        assert_eq!(w.total_tasks(), 10);
    }

    #[test]
    fn climate_schedule_order() {
        let w = climate();
        w.validate().unwrap();
        let sched = w.bundle_schedule().unwrap();
        assert_eq!(sched[0], vec![1]);
        // Land and sea-ice both after atmosphere (order between them free).
        assert_eq!(sched.len(), 3);
        assert!(sched[1..].iter().any(|b| b == &vec![2]));
        assert!(sched[1..].iter().any(|b| b == &vec![3]));
    }

    #[test]
    fn unbundled_apps_get_singletons() {
        let mut w = online_processing();
        w.bundles.clear();
        let b = w.normalized_bundles();
        assert_eq!(b, vec![vec![1], vec![2]]);
    }

    #[test]
    fn rejects_duplicate_ids() {
        let w = WorkflowSpec {
            apps: vec![AppSpec::new(1, "a", 1), AppSpec::new(1, "b", 1)],
            ..Default::default()
        };
        assert_eq!(w.validate(), Err(SpecError::DuplicateAppId(1)));
    }

    #[test]
    fn rejects_unknown_edge_app() {
        let w = WorkflowSpec {
            apps: vec![AppSpec::new(1, "a", 1)],
            edges: vec![(1, 9)],
            ..Default::default()
        };
        assert_eq!(w.validate(), Err(SpecError::UnknownApp(9)));
    }

    #[test]
    fn rejects_app_in_two_bundles() {
        let w = WorkflowSpec {
            apps: vec![AppSpec::new(1, "a", 1), AppSpec::new(2, "b", 1)],
            bundles: vec![vec![1, 2], vec![2]],
            ..Default::default()
        };
        assert_eq!(w.validate(), Err(SpecError::AppInMultipleBundles(2)));
    }

    #[test]
    fn rejects_cycle() {
        let w = WorkflowSpec {
            apps: vec![AppSpec::new(1, "a", 1), AppSpec::new(2, "b", 1)],
            edges: vec![(1, 2), (2, 1)],
            ..Default::default()
        };
        assert_eq!(w.validate(), Err(SpecError::Cyclic));
    }

    #[test]
    fn rejects_dependency_inside_bundle() {
        let w = WorkflowSpec {
            apps: vec![AppSpec::new(1, "a", 1), AppSpec::new(2, "b", 1)],
            edges: vec![(1, 2)],
            bundles: vec![vec![1, 2]],
        };
        assert_eq!(w.validate(), Err(SpecError::IntraBundleDependency(1, 2)));
    }

    #[test]
    fn diamond_dependency_schedules_correctly() {
        let w = WorkflowSpec {
            apps: (1..=4)
                .map(|i| AppSpec::new(i, format!("a{i}"), 1))
                .collect(),
            edges: vec![(1, 2), (1, 3), (2, 4), (3, 4)],
            bundles: vec![],
        };
        let sched = w.bundle_schedule().unwrap();
        let pos = |id: u32| sched.iter().position(|b| b.contains(&id)).unwrap();
        assert!(pos(1) < pos(2) && pos(1) < pos(3));
        assert!(pos(2) < pos(4) && pos(3) < pos(4));
    }

    #[test]
    #[should_panic(expected = "decomposition ranks must equal ntasks")]
    fn decomposition_rank_mismatch_panics() {
        use insitu_domain::{BoundingBox, Distribution, ProcessGrid};
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        let _ = AppSpec::new(1, "a", 3).with_decomposition(dec);
    }
}
