//! Dynamic execution-client grouping: the `MPI_Comm_split` analog.
//!
//! After mapping, each execution client is "colored" with the application
//! id of its assigned task; clients with the same color form a process
//! group with ranks assigned by the task's rank key (§IV.C). The group is
//! the communicator the application routine uses for all intra-application
//! communication.

use insitu_fabric::ClientId;
use std::collections::BTreeMap;

/// One application's process group: `members[rank]` is the execution
/// client running that rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppGroup {
    /// The color: the application id.
    pub app_id: u32,
    /// Clients ordered by rank.
    pub members: Vec<ClientId>,
}

impl AppGroup {
    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// Rank of a client within the group, if a member.
    pub fn rank_of(&self, client: ClientId) -> Option<u32> {
        self.members
            .iter()
            .position(|&c| c == client)
            .map(|p| p as u32)
    }

    /// Client of a rank.
    pub fn client_of(&self, rank: u32) -> ClientId {
        self.members[rank as usize]
    }
}

/// Form one group per color from `(client, color, rank_key)` triples,
/// ordering ranks by `(rank_key, client)` — the same tie-breaking rule as
/// `MPI_Comm_split(color, key)`. Groups are returned sorted by color.
pub fn split_by_color(colored: &[(ClientId, u32, u64)]) -> Vec<AppGroup> {
    let mut by_color: BTreeMap<u32, Vec<(u64, ClientId)>> = BTreeMap::new();
    for &(client, color, key) in colored {
        by_color.entry(color).or_default().push((key, client));
    }
    by_color
        .into_iter()
        .map(|(app_id, mut v)| {
            v.sort_unstable();
            AppGroup {
                app_id,
                members: v.into_iter().map(|(_, c)| c).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_two_colors() {
        let colored = vec![(0, 1, 0), (1, 2, 0), (2, 1, 1), (3, 2, 1)];
        let groups = split_by_color(&colored);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].app_id, 1);
        assert_eq!(groups[0].members, vec![0, 2]);
        assert_eq!(groups[1].members, vec![1, 3]);
    }

    #[test]
    fn rank_key_controls_order() {
        // Client 5 requests rank 0, client 2 requests rank 1.
        let groups = split_by_color(&[(5, 1, 0), (2, 1, 1)]);
        assert_eq!(groups[0].members, vec![5, 2]);
        assert_eq!(groups[0].rank_of(5), Some(0));
        assert_eq!(groups[0].rank_of(2), Some(1));
        assert_eq!(groups[0].client_of(1), 2);
    }

    #[test]
    fn equal_keys_tie_break_by_client() {
        let groups = split_by_color(&[(9, 1, 0), (3, 1, 0), (7, 1, 0)]);
        assert_eq!(groups[0].members, vec![3, 7, 9]);
    }

    #[test]
    fn single_color() {
        let groups = split_by_color(&[(0, 4, 0), (1, 4, 1)]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].size(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(split_by_color(&[]).is_empty());
    }

    #[test]
    fn non_member_rank_lookup() {
        let groups = split_by_color(&[(0, 1, 0)]);
        assert_eq!(groups[0].rank_of(42), None);
    }

    #[test]
    fn k_bundled_apps_form_k_groups() {
        // A "bundle" of 3 apps over 6 clients forms 3 process groups.
        let colored: Vec<(ClientId, u32, u64)> =
            (0..6).map(|c| (c, 1 + (c % 3), (c / 3) as u64)).collect();
        let groups = split_by_color(&colored);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.size() == 2));
    }
}
