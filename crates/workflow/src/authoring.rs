//! The `workflow.toml` authoring format: a parameterized front-end that
//! compiles down to the Listing-1 DAG text and the workload
//! configuration text the existing parsers consume.
//!
//! The format is a deliberately small TOML subset (hand-rolled — the
//! workspace is hermetic): single tables `[workflow]`, `[machine]` and
//! `[params]`, array tables `[[app]]`, `[[coupling]]`, `[[subscribe]]`,
//! `[[bundle]]` and `[[edge]]`, and three value shapes — quoted strings,
//! unsigned integers and flat arrays thereof.
//!
//! ```toml
//! [workflow]
//! name = "heat-coupling"
//! iterations = ${iters}
//!
//! [params]          # defaults; override with --set key=value
//! iters = 2
//! grid = [2, 2, 1]
//!
//! [machine]
//! cores_per_node = 4
//! domain = [8, 8, 8]
//! halo = 1
//!
//! [[app]]
//! id = 1
//! grid = ${grid}
//! dist = "blocked"
//!
//! [[coupling]]
//! var = "temperature"
//! producer = 1
//! consumers = [2]
//! mode = "concurrent"
//! ```
//!
//! Every `${key}` anywhere in the file is textually replaced by the
//! value of `key` from `[params]` (after overrides) before the full
//! parse, so grid sizes, iteration counts and whole coupling patterns
//! can be template variables. Apps without an explicit `[[bundle]]`
//! membership each get their own bundle, in id order.

use std::collections::BTreeMap;

/// An authoring failure with its 1-based line (0 for file-level
/// problems such as a missing section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorError {
    /// Line the error occurred on (0 = whole file).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for AuthorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "workflow.toml: {}", self.message)
        } else {
            write!(f, "workflow.toml line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AuthorError {}

/// A compiled workflow: the two text documents the rest of the system
/// already understands, plus the display name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthoredWorkflow {
    /// Display name from `[workflow] name`, or `"workflow"`.
    pub name: String,
    /// Listing-1 DAG text (`APP_ID`/`PARENT_APPID`/`BUNDLE` lines).
    pub dag: String,
    /// Workload configuration text (`DOMAIN`/`APP`/`COUPLING` lines).
    pub config: String,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(u64),
    Arr(Vec<Value>),
}

impl Value {
    /// Render the value as the TOML fragment it was parsed from, so a
    /// `${param}` substitution re-parses to the same value.
    fn render_toml(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{s}\""),
            Value::Int(n) => n.to_string(),
            Value::Arr(items) => format!(
                "[{}]",
                items
                    .iter()
                    .map(Value::render_toml)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

type Table = Vec<(String, Value, usize)>;

fn err(line: usize, message: impl Into<String>) -> AuthorError {
    AuthorError {
        line,
        message: message.into(),
    }
}

fn parse_value(s: &str, line: usize) -> Result<Value, AuthorError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(err(line, format!("malformed string {s}"))),
        };
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array"))?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // tolerate trailing commas
            }
            match parse_value(part, line)? {
                Value::Arr(_) => return Err(err(line, "nested arrays are not supported")),
                v => items.push(v),
            }
        }
        return Ok(Value::Arr(items));
    }
    s.parse::<u64>().map(Value::Int).map_err(|_| {
        err(
            line,
            format!("expected a string, integer or array, got '{s}'"),
        )
    })
}

/// One logical document: named single tables plus ordered array tables.
#[derive(Default)]
struct Doc {
    tables: BTreeMap<String, Table>,
    arrays: BTreeMap<String, Vec<Table>>,
}

impl Doc {
    fn parse(source: &str) -> Result<Doc, AuthorError> {
        const SINGLE: [&str; 3] = ["workflow", "machine", "params"];
        const ARRAY: [&str; 5] = ["app", "coupling", "subscribe", "bundle", "edge"];
        let mut doc = Doc::default();
        let mut current: Option<&mut Table> = None;
        for (idx, raw) in source.lines().enumerate() {
            let line = idx + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            if let Some(h) = text.strip_prefix("[[") {
                let name = h
                    .strip_suffix("]]")
                    .map(str::trim)
                    .ok_or_else(|| err(line, "malformed [[section]] header"))?;
                if !ARRAY.contains(&name) {
                    return Err(err(line, format!("unknown section [[{name}]]")));
                }
                let entries = doc.arrays.entry(name.to_string()).or_default();
                entries.push(Table::new());
                current = Some(entries.last_mut().unwrap());
            } else if let Some(h) = text.strip_prefix('[') {
                let name = h
                    .strip_suffix(']')
                    .map(str::trim)
                    .ok_or_else(|| err(line, "malformed [section] header"))?;
                if !SINGLE.contains(&name) {
                    let hint = if ARRAY.contains(&name) {
                        format!(" (did you mean [[{name}]]?)")
                    } else {
                        String::new()
                    };
                    return Err(err(line, format!("unknown section [{name}]{hint}")));
                }
                if doc.tables.contains_key(name) {
                    return Err(err(line, format!("section [{name}] appears twice")));
                }
                current = Some(doc.tables.entry(name.to_string()).or_default());
            } else if let Some((key, value)) = text.split_once('=') {
                let key = key.trim();
                if key.is_empty() {
                    return Err(err(line, "missing key before '='"));
                }
                let table = current
                    .as_deref_mut()
                    .ok_or_else(|| err(line, format!("'{key}' appears before any section")))?;
                if table.iter().any(|(k, _, _)| k == key) {
                    return Err(err(line, format!("key '{key}' set twice in this section")));
                }
                table.push((key.to_string(), parse_value(value, line)?, line));
            } else {
                return Err(err(line, format!("expected 'key = value', got '{text}'")));
            }
        }
        Ok(doc)
    }
}

/// Extract `[params]` defaults, merge `overrides` on top (every
/// override must name a declared parameter) and return the source with
/// all `${key}` references substituted.
fn substitute(source: &str, overrides: &[(String, String)]) -> Result<String, AuthorError> {
    // First pass parses *only* section headers and `[params]` lines, so
    // `${...}` references elsewhere never reach the value parser early.
    let mut params: BTreeMap<String, String> = BTreeMap::new();
    let mut in_params = false;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if text.starts_with('[') {
            in_params = text == "[params]";
            continue;
        }
        if !in_params {
            continue;
        }
        let (key, value) = text
            .split_once('=')
            .ok_or_else(|| err(line, "expected 'key = value' in [params]"))?;
        params.insert(
            key.trim().to_string(),
            parse_value(value, line)?.render_toml(),
        );
    }
    for (key, value) in overrides {
        if !params.contains_key(key) {
            return Err(err(
                0,
                format!("--set {key}: no such parameter in [params]"),
            ));
        }
        params.insert(key.clone(), override_value(value).render_toml());
    }

    let mut out = String::with_capacity(source.len());
    let mut rest = source;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        let tail = &rest[start + 2..];
        let end = tail
            .find('}')
            .ok_or_else(|| err(0, "unterminated ${...} reference"))?;
        let key = tail[..end].trim();
        let value = params
            .get(key)
            .ok_or_else(|| err(0, format!("${{{key}}}: no such parameter in [params]")))?;
        out.push_str(value);
        rest = &tail[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Interpret a `--set key=value` value leniently: TOML syntax if it
/// parses ("[2, 2, 1]", "\"name\"", "5"), space-separated integers as
/// an array ("2 2 1"), anything else as a bare string.
fn override_value(raw: &str) -> Value {
    if let Ok(v) = parse_value(raw, 0) {
        return v;
    }
    let ints: Option<Vec<u64>> = raw
        .split_whitespace()
        .map(|t| t.parse::<u64>().ok())
        .collect();
    match ints {
        Some(ns) if !ns.is_empty() => Value::Arr(ns.into_iter().map(Value::Int).collect()),
        _ => Value::Str(raw.to_string()),
    }
}

fn get<'t>(table: &'t Table, key: &str) -> Option<&'t Value> {
    table.iter().find(|(k, _, _)| k == key).map(|(_, v, _)| v)
}

fn require<'t>(table: &'t Table, key: &str, section: &str) -> Result<&'t Value, AuthorError> {
    get(table, key).ok_or_else(|| {
        let line = table.first().map(|(_, _, l)| *l).unwrap_or(0);
        err(line, format!("[{section}] is missing '{key}'"))
    })
}

fn as_int(v: &Value, what: &str) -> Result<u64, AuthorError> {
    match v {
        Value::Int(n) => Ok(*n),
        _ => Err(err(0, format!("{what} must be an integer"))),
    }
}

fn as_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, AuthorError> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(err(0, format!("{what} must be a string"))),
    }
}

fn as_ints(v: &Value, what: &str) -> Result<Vec<u64>, AuthorError> {
    match v {
        Value::Arr(items) if !items.is_empty() => items
            .iter()
            .map(|i| as_int(i, what))
            .collect::<Result<Vec<_>, _>>(),
        Value::Int(n) => Ok(vec![*n]),
        _ => Err(err(0, format!("{what} must be a non-empty integer array"))),
    }
}

fn render_ints(ns: &[u64]) -> String {
    ns.iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Compile a `workflow.toml` source into the DAG and configuration
/// texts, after substituting `[params]` (with `overrides` applied).
pub fn compile_workflow(
    source: &str,
    overrides: &[(String, String)],
) -> Result<AuthoredWorkflow, AuthorError> {
    let substituted = substitute(source, overrides)?;
    let doc = Doc::parse(&substituted)?;
    let empty = Table::new();
    let workflow = doc.tables.get("workflow").unwrap_or(&empty);
    let machine = doc.tables.get("machine").ok_or_else(|| {
        err(
            0,
            "missing [machine] section (cores_per_node, domain, halo)",
        )
    })?;
    let apps = doc
        .arrays
        .get("app")
        .filter(|a| !a.is_empty())
        .ok_or_else(|| err(0, "at least one [[app]] section is required"))?;

    let name = match get(workflow, "name") {
        Some(v) => as_str(v, "[workflow] name")?.to_string(),
        None => "workflow".to_string(),
    };

    // ---- the DAG document -------------------------------------------
    let mut dag = format!("# {name} — generated from workflow.toml\n");
    let mut app_ids = Vec::new();
    for app in apps {
        let id = as_int(require(app, "id", "app")?, "[[app]] id")?;
        if app_ids.contains(&id) {
            return Err(err(0, format!("app {id} declared twice")));
        }
        app_ids.push(id);
        dag.push_str(&format!("APP_ID {id}\n"));
    }
    for edge in doc.arrays.get("edge").map(Vec::as_slice).unwrap_or(&[]) {
        let parent = as_int(require(edge, "parent", "edge")?, "[[edge]] parent")?;
        let child = as_int(require(edge, "child", "edge")?, "[[edge]] child")?;
        dag.push_str(&format!("PARENT_APPID {parent} CHILD_APPID {child}\n"));
    }
    match doc.arrays.get("bundle").filter(|b| !b.is_empty()) {
        Some(bundles) => {
            for bundle in bundles {
                let ids = as_ints(require(bundle, "apps", "bundle")?, "[[bundle]] apps")?;
                dag.push_str(&format!("BUNDLE {}\n", render_ints(&ids)));
            }
        }
        // Default: every app in its own bundle, in declaration order.
        None => {
            for id in &app_ids {
                dag.push_str(&format!("BUNDLE {id}\n"));
            }
        }
    }

    // ---- the configuration document ---------------------------------
    let mut config = format!("# {name} — generated from workflow.toml\n");
    if let Some(v) = get(machine, "cores_per_node") {
        config.push_str(&format!(
            "CORES_PER_NODE {}\n",
            as_int(v, "[machine] cores_per_node")?
        ));
    }
    let domain = as_ints(require(machine, "domain", "machine")?, "[machine] domain")?;
    config.push_str(&format!("DOMAIN {}\n", render_ints(&domain)));
    if let Some(v) = get(machine, "halo") {
        config.push_str(&format!("HALO {}\n", as_int(v, "[machine] halo")?));
    }
    if let Some(v) = get(workflow, "iterations") {
        config.push_str(&format!(
            "ITERATIONS {}\n",
            as_int(v, "[workflow] iterations")?
        ));
    }
    for app in apps {
        let id = as_int(require(app, "id", "app")?, "[[app]] id")?;
        let grid = as_ints(require(app, "grid", "app")?, "[[app]] grid")?;
        let dist = match get(app, "dist") {
            Some(v) => as_str(v, "[[app]] dist")?,
            None => "blocked",
        };
        let mut line = format!("APP {id} GRID {} DIST {dist}", render_ints(&grid));
        if dist == "block-cyclic" {
            let blocks = as_ints(
                require(app, "blocks", "app")?,
                "[[app]] blocks (required by block-cyclic)",
            )?;
            line.push_str(&format!(" {}", render_ints(&blocks)));
        }
        config.push_str(&line);
        config.push('\n');
    }
    for c in doc.arrays.get("coupling").map(Vec::as_slice).unwrap_or(&[]) {
        let var = as_str(require(c, "var", "coupling")?, "[[coupling]] var")?;
        let producer = as_int(require(c, "producer", "coupling")?, "[[coupling]] producer")?;
        let consumers = as_ints(
            require(c, "consumers", "coupling")?,
            "[[coupling]] consumers",
        )?;
        let mode = match get(c, "mode") {
            Some(v) => as_str(v, "[[coupling]] mode")?,
            None => "concurrent",
        };
        let mut line = format!(
            "COUPLING VAR {var} PRODUCER {producer} CONSUMERS {} MODE {mode}",
            render_ints(&consumers)
        );
        match (get(c, "region_lb"), get(c, "region_ub")) {
            (Some(lb), Some(ub)) => {
                line.push_str(&format!(
                    " REGION {} UB {}",
                    render_ints(&as_ints(lb, "[[coupling]] region_lb")?),
                    render_ints(&as_ints(ub, "[[coupling]] region_ub")?)
                ));
            }
            (None, None) => {}
            _ => {
                return Err(err(
                    0,
                    "region_lb and region_ub must be given together".to_string(),
                ))
            }
        }
        config.push_str(&line);
        config.push('\n');
    }
    for s in doc
        .arrays
        .get("subscribe")
        .map(Vec::as_slice)
        .unwrap_or(&[])
    {
        let at = s.first().map(|(_, _, l)| *l).unwrap_or(0);
        let var = as_str(require(s, "var", "subscribe")?, "[[subscribe]] var")?;
        let producer = as_int(
            require(s, "producer", "subscribe")?,
            "[[subscribe]] producer",
        )?;
        let subscriber = as_int(
            require(s, "subscriber", "subscribe")?,
            "[[subscribe]] subscriber",
        )?;
        let every = match get(s, "every") {
            Some(v) => as_int(v, "[[subscribe]] every")?,
            None => 1,
        };
        // The three classic authoring mistakes get pointed errors here,
        // at the TOML layer, instead of line numbers into generated text.
        if every == 0 {
            return Err(err(
                at,
                "[[subscribe]] every must be at least 1: a stride of 0 would match no version",
            ));
        }
        if !doc
            .arrays
            .get("coupling")
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .any(|c| {
                get(c, "var").and_then(|v| as_str(v, "").ok()) == Some(var)
                    && get(c, "producer").and_then(|v| as_int(v, "").ok()) == Some(producer)
            })
        {
            return Err(err(
                at,
                format!(
                    "[[subscribe]] references unknown variable '{var}' from producer {producer}: no [[coupling]] declares it"
                ),
            ));
        }
        let mut line = format!(
            "SUBSCRIBE VAR {var} PRODUCER {producer} SUBSCRIBER {subscriber} EVERY {every}"
        );
        match (get(s, "region_lb"), get(s, "region_ub")) {
            (Some(lb), Some(ub)) => {
                let lb = as_ints(lb, "[[subscribe]] region_lb")?;
                let ub = as_ints(ub, "[[subscribe]] region_ub")?;
                if let Some(d) = (0..lb.len().min(ub.len())).find(|&d| lb[d] > ub[d]) {
                    return Err(err(
                        at,
                        format!(
                            "[[subscribe]] region is inverted in dimension {d}: lower bound {} exceeds upper bound {}",
                            lb[d], ub[d]
                        ),
                    ));
                }
                line.push_str(&format!(
                    " REGION {} UB {}",
                    render_ints(&lb),
                    render_ints(&ub)
                ));
            }
            (None, None) => {}
            _ => {
                return Err(err(
                    at,
                    "region_lb and region_ub must be given together".to_string(),
                ))
            }
        }
        if let Some(v) = get(s, "queue") {
            line.push_str(&format!(" QUEUE {}", as_int(v, "[[subscribe]] queue")?));
        }
        config.push_str(&line);
        config.push('\n');
    }

    Ok(AuthoredWorkflow { name, dag, config })
}

/// Parse one `key=value` CLI override (the `--set` argument syntax).
pub fn parse_override(arg: &str) -> Result<(String, String), AuthorError> {
    match arg.split_once('=') {
        Some((k, v)) if !k.trim().is_empty() => Ok((k.trim().to_string(), v.trim().to_string())),
        _ => Err(err(0, format!("--set needs key=value, got '{arg}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dag;

    const SAMPLE: &str = r#"
# A miniature of the distrib smoke workflow, parameterized.
[workflow]
name = "distrib-smoke"
iterations = ${iters}

[params]
iters = 2
sim_grid = [2, 2, 1]
halo = 1

[machine]
cores_per_node = 4
domain = [8, 8, 8]
halo = ${halo}

[[app]]
id = 1
grid = ${sim_grid}

[[app]]
id = 2
grid = [2, 1, 2]
dist = "blocked"

[[app]]
id = 3
grid = [1, 2, 2]

[[coupling]]
var = "temperature"
producer = 1
consumers = [2]
mode = "concurrent"

[[coupling]]
var = "pressure"
producer = 1
consumers = [3]
mode = "sequential"

[[bundle]]
apps = [1, 2]

[[bundle]]
apps = [3]

[[edge]]
parent = 1
child = 3
"#;

    #[test]
    fn compiles_to_parseable_dag_and_config() {
        let w = compile_workflow(SAMPLE, &[]).unwrap();
        assert_eq!(w.name, "distrib-smoke");
        let spec = parse_dag(&w.dag).unwrap();
        assert_eq!(spec.apps.len(), 3);
        assert_eq!(spec.bundles, vec![vec![1, 2], vec![3]]);
        assert!(w.dag.contains("PARENT_APPID 1 CHILD_APPID 3"));
        assert!(w.config.contains("CORES_PER_NODE 4"));
        assert!(w.config.contains("DOMAIN 8 8 8"));
        assert!(w.config.contains("HALO 1"));
        assert!(w.config.contains("ITERATIONS 2"));
        assert!(w.config.contains("APP 1 GRID 2 2 1 DIST blocked"));
        assert!(w
            .config
            .contains("COUPLING VAR pressure PRODUCER 1 CONSUMERS 3 MODE sequential"));
    }

    #[test]
    fn overrides_replace_parameter_defaults() {
        let overrides = [
            ("iters".to_string(), "5".to_string()),
            ("sim_grid".to_string(), "4 1 1".to_string()),
        ];
        let w = compile_workflow(SAMPLE, &overrides).unwrap();
        assert!(w.config.contains("ITERATIONS 5"));
        assert!(w.config.contains("APP 1 GRID 4 1 1 DIST blocked"));
    }

    #[test]
    fn unknown_override_and_reference_are_rejected() {
        let e = compile_workflow(SAMPLE, &[("nope".into(), "1".into())]).unwrap_err();
        assert!(e.message.contains("no such parameter"), "{e}");
        let e = compile_workflow("[machine]\ndomain = ${ghost}\n", &[]).unwrap_err();
        assert!(e.message.contains("ghost"), "{e}");
    }

    #[test]
    fn bundles_default_to_one_per_app() {
        let w = compile_workflow(
            "[machine]\ndomain = [4, 4]\n[[app]]\nid = 7\ngrid = [2, 2]\n",
            &[],
        )
        .unwrap();
        assert!(w.dag.contains("BUNDLE 7"));
        assert_eq!(w.name, "workflow");
    }

    #[test]
    fn block_cyclic_renders_its_blocks() {
        let w = compile_workflow(
            "[machine]\ndomain = [8, 8]\n[[app]]\nid = 1\ngrid = [2, 2]\ndist = \"block-cyclic\"\nblocks = [4, 4]\n",
            &[],
        )
        .unwrap();
        assert!(w.config.contains("APP 1 GRID 2 2 DIST block-cyclic 4 4"));
    }

    #[test]
    fn structural_errors_name_the_problem() {
        let e = compile_workflow("[[app]]\nid = 1\ngrid = [2]\n", &[]).unwrap_err();
        assert!(e.message.contains("[machine]"), "{e}");
        let e = compile_workflow("[machine]\ndomain = [4]\n", &[]).unwrap_err();
        assert!(e.message.contains("[[app]]"), "{e}");
        let e = compile_workflow("[app]\nid = 1\n", &[]).unwrap_err();
        assert!(e.message.contains("[[app]]"), "{e}");
        let e = compile_workflow("id = 1\n", &[]).unwrap_err();
        assert!(e.message.contains("before any section"), "{e}");
        let e = compile_workflow(
            "[machine]\ndomain = [4]\n[[app]]\nid = 1\ngrid = [4]\n[[coupling]]\nvar = \"v\"\nproducer = 1\nconsumers = [1]\nregion_lb = [0]\n",
            &[],
        )
        .unwrap_err();
        assert!(e.message.contains("region_lb and region_ub"), "{e}");
    }

    /// A valid base with one coupling, to which [[subscribe]] blocks are
    /// appended by the golden tests below.
    const SUB_BASE: &str = "\
[machine]
domain = [8, 8]
[[app]]
id = 1
grid = [2, 2]
[[app]]
id = 2
grid = [1, 1]
[[coupling]]
var = \"t\"
producer = 1
consumers = [2]
";

    #[test]
    fn subscribe_compiles_to_a_subscribe_line() {
        let w = compile_workflow(
            &format!(
                "{SUB_BASE}[[subscribe]]\nvar = \"t\"\nproducer = 1\nsubscriber = 2\nevery = 3\nqueue = 4\n"
            ),
            &[],
        )
        .unwrap();
        assert!(
            w.config
                .contains("SUBSCRIBE VAR t PRODUCER 1 SUBSCRIBER 2 EVERY 3 QUEUE 4"),
            "{}",
            w.config
        );
    }

    #[test]
    fn subscribe_every_defaults_to_one_and_region_renders() {
        let w = compile_workflow(
            &format!(
                "{SUB_BASE}[[subscribe]]\nvar = \"t\"\nproducer = 1\nsubscriber = 2\nregion_lb = [0, 0]\nregion_ub = [3, 7]\n"
            ),
            &[],
        )
        .unwrap();
        assert!(
            w.config
                .contains("SUBSCRIBE VAR t PRODUCER 1 SUBSCRIBER 2 EVERY 1 REGION 0 0 UB 3 7"),
            "{}",
            w.config
        );
    }

    #[test]
    fn subscribe_every_zero_rejected_with_pointed_error() {
        let e = compile_workflow(
            &format!(
                "{SUB_BASE}[[subscribe]]\nvar = \"t\"\nproducer = 1\nsubscriber = 2\nevery = 0\n"
            ),
            &[],
        )
        .unwrap_err();
        assert!(e.line > 0, "error must point at the block: {e}");
        assert!(e.message.contains("every must be at least 1"), "{e}");
    }

    #[test]
    fn subscribe_inverted_region_rejected_with_pointed_error() {
        let e = compile_workflow(
            &format!(
                "{SUB_BASE}[[subscribe]]\nvar = \"t\"\nproducer = 1\nsubscriber = 2\nregion_lb = [5, 0]\nregion_ub = [3, 7]\n"
            ),
            &[],
        )
        .unwrap_err();
        assert!(e.line > 0, "error must point at the block: {e}");
        assert!(
            e.message.contains("inverted in dimension 0")
                && e.message.contains("lower bound 5 exceeds upper bound 3"),
            "{e}"
        );
    }

    #[test]
    fn subscribe_unknown_variable_rejected_with_pointed_error() {
        let e = compile_workflow(
            &format!("{SUB_BASE}[[subscribe]]\nvar = \"pressure\"\nproducer = 1\nsubscriber = 2\n"),
            &[],
        )
        .unwrap_err();
        assert!(e.line > 0, "error must point at the block: {e}");
        assert!(
            e.message.contains("unknown variable 'pressure'")
                && e.message.contains("no [[coupling]] declares it"),
            "{e}"
        );
    }

    #[test]
    fn parse_override_splits_on_first_equals() {
        assert_eq!(
            parse_override("grid=2 2 1").unwrap(),
            ("grid".to_string(), "2 2 1".to_string())
        );
        assert!(parse_override("nonsense").is_err());
        assert!(parse_override("=x").is_err());
    }
}
