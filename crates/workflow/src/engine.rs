//! The workflow management server: client registration and DAG enactment.
//!
//! The server has two modules (§III.A): *Execution Client Management*,
//! which tracks registered clients and their addresses, and the *Workflow
//! Engine*, which enacts the DAG wave by wave, allocating clients to the
//! applications of each ready bundle.

use crate::mappers::{BundleMapper, BundleMapping, CoreAllocator};
use crate::spec::{SpecError, WorkflowSpec};
use insitu_fabric::{ClientId, CoreId, MachineSpec};
use std::collections::HashMap;

/// Lifecycle state of a registered execution client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientState {
    /// Registered and waiting for work.
    Idle,
    /// Running a task of the given application.
    Running(u32),
}

/// The Execution Client Management module: registration, addresses
/// (core ids stand in for network addresses) and states.
#[derive(Clone, Debug, Default)]
pub struct ClientRegistry {
    clients: HashMap<ClientId, (CoreId, ClientState)>,
    addrs: HashMap<ClientId, String>,
}

impl ClientRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a client at its core ("network address").
    ///
    /// # Panics
    /// Panics on duplicate registration.
    pub fn register(&mut self, client: ClientId, core: CoreId) {
        let prev = self.clients.insert(client, (core, ClientState::Idle));
        assert!(prev.is_none(), "client {client} registered twice");
    }

    /// Register a client together with the real network address it
    /// connected from (distributed runs; [`ClientRegistry::register`]
    /// keeps the core-as-address convention for in-process runs).
    ///
    /// # Panics
    /// Panics on duplicate registration.
    pub fn register_at(&mut self, client: ClientId, core: CoreId, addr: &str) {
        self.register(client, core);
        self.addrs.insert(client, addr.to_string());
    }

    /// The network address a client registered from, if it supplied one.
    pub fn address_of(&self, client: ClientId) -> Option<&str> {
        self.addrs.get(&client).map(String::as_str)
    }

    /// Unregister a client (e.g. on failure).
    pub fn unregister(&mut self, client: ClientId) -> bool {
        self.addrs.remove(&client);
        self.clients.remove(&client).is_some()
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// A client's core, if registered.
    pub fn core_of(&self, client: ClientId) -> Option<CoreId> {
        self.clients.get(&client).map(|&(c, _)| c)
    }

    /// A client's state, if registered.
    pub fn state_of(&self, client: ClientId) -> Option<ClientState> {
        self.clients.get(&client).map(|&(_, s)| s)
    }

    /// Mark a client running `app`.
    pub fn set_running(&mut self, client: ClientId, app: u32) {
        self.clients.get_mut(&client).expect("unknown client").1 = ClientState::Running(app);
    }

    /// Mark a client idle again.
    pub fn set_idle(&mut self, client: ClientId) {
        self.clients.get_mut(&client).expect("unknown client").1 = ClientState::Idle;
    }

    /// Clients currently idle, sorted.
    pub fn idle_clients(&self) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self
            .clients
            .iter()
            .filter(|(_, (_, s))| *s == ClientState::Idle)
            .map(|(&c, _)| c)
            .collect();
        v.sort_unstable();
        v
    }
}

/// One wave of launched bundles: for every app, its task -> core mapping.
#[derive(Clone, Debug)]
pub struct WaveLaunch {
    /// Index of the wave in the schedule.
    pub wave: usize,
    /// Mapping of each bundle of the wave, in bundle order.
    pub mappings: Vec<BundleMapping>,
}

/// The Workflow Engine: walks the DAG in waves and produces task mappings
/// through a pluggable [`BundleMapper`].
pub struct WorkflowEngine {
    spec: WorkflowSpec,
    waves: Vec<Vec<Vec<u32>>>,
    next_wave: usize,
}

impl WorkflowEngine {
    /// Validate and prepare a workflow.
    pub fn new(spec: WorkflowSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        let waves = spec.bundle_waves()?;
        Ok(WorkflowEngine {
            spec,
            waves,
            next_wave: 0,
        })
    }

    /// The workflow being enacted.
    pub fn spec(&self) -> &WorkflowSpec {
        &self.spec
    }

    /// All waves (bundles of app ids).
    pub fn waves(&self) -> &[Vec<Vec<u32>>] {
        &self.waves
    }

    /// Whether all waves have been launched.
    pub fn is_complete(&self) -> bool {
        self.next_wave >= self.waves.len()
    }

    /// Map and launch the next wave with `mapper`, drawing cores from
    /// `alloc`. Returns `None` when the workflow is complete.
    ///
    /// The caller runs the wave's applications to completion and then
    /// releases their cores before launching the next wave (the paper's
    /// sequential scenario reuses SAP1's nodes for SAP2/SAP3).
    pub fn launch_next_wave(
        &mut self,
        alloc: &mut CoreAllocator,
        mapper: &dyn BundleMapper,
    ) -> Option<WaveLaunch> {
        if self.is_complete() {
            return None;
        }
        let wave = self.next_wave;
        self.next_wave += 1;
        let mut mappings = Vec::new();
        for bundle in &self.waves[wave] {
            let apps: Vec<&crate::spec::AppSpec> = bundle
                .iter()
                .map(|&id| self.spec.app(id).expect("validated"))
                .collect();
            mappings.push(mapper.map_bundle(alloc, &apps));
        }
        Some(WaveLaunch { wave, mappings })
    }

    /// Machine sized to the widest wave (every task of every bundle of the
    /// wave runs concurrently), assuming `cores_per_node`-core nodes.
    pub fn machine_for(&self, cores_per_node: u32) -> MachineSpec {
        let max_wave_tasks = self
            .waves
            .iter()
            .map(|w| {
                w.iter()
                    .flat_map(|b| b.iter())
                    .map(|&id| self.spec.app(id).map(|a| a.ntasks).unwrap_or(0))
                    .sum::<u32>()
            })
            .max()
            .unwrap_or(0)
            .max(1);
        MachineSpec::new(max_wave_tasks.div_ceil(cores_per_node), cores_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappers::PackedMapper;
    use crate::spec::AppSpec;

    fn climate_spec() -> WorkflowSpec {
        WorkflowSpec {
            apps: vec![
                AppSpec::new(1, "atm", 4),
                AppSpec::new(2, "land", 2),
                AppSpec::new(3, "ice", 2),
            ],
            edges: vec![(1, 2), (1, 3)],
            bundles: vec![vec![1], vec![2], vec![3]],
        }
    }

    #[test]
    fn registry_lifecycle() {
        let mut r = ClientRegistry::new();
        r.register(0, 10);
        r.register(1, 11);
        assert_eq!(r.len(), 2);
        assert_eq!(r.core_of(0), Some(10));
        assert_eq!(r.state_of(1), Some(ClientState::Idle));
        r.set_running(1, 9);
        assert_eq!(r.state_of(1), Some(ClientState::Running(9)));
        assert_eq!(r.idle_clients(), vec![0]);
        r.set_idle(1);
        assert_eq!(r.idle_clients(), vec![0, 1]);
        assert!(r.unregister(0));
        assert!(!r.unregister(0));
    }

    #[test]
    fn registry_records_network_addresses() {
        let mut r = ClientRegistry::new();
        r.register_at(0, 10, "127.0.0.1:40001");
        r.register(1, 11);
        assert_eq!(r.address_of(0), Some("127.0.0.1:40001"));
        assert_eq!(r.address_of(1), None);
        assert_eq!(r.core_of(0), Some(10));
        r.unregister(0);
        assert_eq!(r.address_of(0), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn registry_rejects_duplicates() {
        let mut r = ClientRegistry::new();
        r.register(0, 0);
        r.register(0, 1);
    }

    #[test]
    fn climate_runs_in_two_waves() {
        let e = WorkflowEngine::new(climate_spec()).unwrap();
        assert_eq!(e.waves().len(), 2);
        assert_eq!(e.waves()[0], vec![vec![1]]);
        // Wave 2: land and ice concurrently, as separate bundles.
        assert_eq!(e.waves()[1].len(), 2);
    }

    #[test]
    fn machine_sized_to_widest_wave() {
        let e = WorkflowEngine::new(climate_spec()).unwrap();
        // Wave 0 needs 4 tasks; wave 1 needs 2+2 = 4. 2-core nodes -> 2.
        assert_eq!(e.machine_for(2), MachineSpec::new(2, 2));
    }

    #[test]
    fn launch_waves_and_reuse_cores() {
        let mut e = WorkflowEngine::new(climate_spec()).unwrap();
        let mut alloc = CoreAllocator::new(e.machine_for(2));
        let w0 = e.launch_next_wave(&mut alloc, &PackedMapper).unwrap();
        assert_eq!(w0.wave, 0);
        assert_eq!(w0.mappings.len(), 1);
        assert_eq!(alloc.total_free(), 0);
        // Wave 0 completes; release its cores.
        for cores in w0.mappings[0].cores.values() {
            for &c in cores {
                alloc.release(c);
            }
        }
        let w1 = e.launch_next_wave(&mut alloc, &PackedMapper).unwrap();
        assert_eq!(w1.mappings.len(), 2);
        assert!(e.launch_next_wave(&mut alloc, &PackedMapper).is_none());
        assert!(e.is_complete());
    }

    #[test]
    fn rejects_invalid_spec() {
        let bad = WorkflowSpec {
            apps: vec![AppSpec::new(1, "a", 1)],
            edges: vec![(1, 1)],
            ..Default::default()
        };
        assert!(WorkflowEngine::new(bad).is_err());
    }
}
