//! # insitu-telemetry
//!
//! Workspace-wide observability for the in-situ coupled-workflow stack:
//!
//! * [`metrics`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   [`Histogram`]s in a thread-safe [`MetricsRegistry`] with cheap
//!   atomic hot paths and mergeable [`MetricsSnapshot`]s;
//! * [`trace`] — span-based tracing into a bounded ring buffer with a
//!   chrome://tracing JSON exporter and a text summary renderer;
//! * [`recorder`] — the [`Recorder`] facade components depend on, which
//!   is either live or a near-zero-cost no-op;
//! * [`json`] — the minimal JSON writer backing all exporters (the
//!   workspace is hermetic, so no serde).
//!
//! Std-only, zero external dependencies.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use recorder::Recorder;
pub use trace::{SpanGuard, SpanRecord, TraceSink};
