//! The [`Recorder`] facade: either live (backed by a registry and a
//! trace sink) or disabled (every operation near-free).
//!
//! Components take a `&Recorder` (or clone one — it is a thin
//! `Option<Arc<..>>`) and never need to know whether telemetry is on.
//! Disabled recorders hand out detached metric handles, so instrumented
//! hot paths stay branch-light: the cost of a disabled counter increment
//! is one relaxed atomic add on a dummy cell.

use std::sync::Arc;

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::trace::{SpanGuard, TraceSink, DEFAULT_TRACE_CAPACITY};

struct RecorderInner {
    metrics: MetricsRegistry,
    trace: Arc<TraceSink>,
}

/// Entry point for all instrumentation.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// A recorder that records nothing.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder with the default trace capacity.
    pub fn enabled() -> Recorder {
        Recorder::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live recorder whose trace ring holds `capacity` spans.
    ///
    /// Spans evicted from a full ring are counted on the
    /// `trace.dropped_spans` registry counter so drops are visible in
    /// metrics snapshots, not just in the trace export.
    pub fn with_trace_capacity(capacity: usize) -> Recorder {
        let metrics = MetricsRegistry::new();
        let dropped = metrics.counter("trace.dropped_spans");
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                metrics,
                trace: Arc::new(TraceSink::with_capacity_and_counter(capacity, dropped)),
            })),
        }
    }

    /// Whether this recorder is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Counter handle (detached dummy when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::detached(),
        }
    }

    /// Gauge handle (detached dummy when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::detached(),
        }
    }

    /// Histogram handle (detached dummy when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Start a timed span; records on drop (no-op when disabled).
    pub fn span(&self, name: &str, category: &str, track: u64) -> SpanGuard {
        SpanGuard::start(
            self.inner.as_ref().map(|i| Arc::clone(&i.trace)),
            name,
            category,
            track,
        )
    }

    /// Record a synthetic span at an explicit timeline position (used by
    /// the modeled executor; no-op when disabled).
    pub fn synthetic_span(
        &self,
        name: &str,
        category: &str,
        track: u64,
        start_us: u64,
        duration_us: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .trace
                .push_synthetic(name, category, track, start_us, duration_us);
        }
    }

    /// Metrics snapshot (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Metrics rendered as a JSON string.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json().render()
    }

    /// Trace rendered as chrome://tracing JSON.
    pub fn trace_json(&self) -> String {
        match &self.inner {
            Some(inner) => inner.trace.to_chrome_json().render(),
            None => Json::obj()
                .field("traceEvents", Vec::<Json>::new())
                .field("displayTimeUnit", "ms")
                .field("droppedSpans", 0u64)
                .render(),
        }
    }

    /// Trace summary table (empty string when disabled).
    pub fn trace_summary(&self) -> String {
        match &self.inner {
            Some(inner) => inner.trace.to_summary_table(),
            None => String::new(),
        }
    }

    /// The trace sink, when live.
    pub fn trace_sink(&self) -> Option<Arc<TraceSink>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.trace))
    }

    /// Spans evicted from the trace ring (0 when disabled).
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace.dropped())
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.counter("c").add(5);
        r.gauge("g").set(9);
        r.histogram("h").record(3);
        r.synthetic_span("s", "cat", 0, 0, 10);
        {
            let _g = r.span("sp", "cat", 0);
        }
        let snap = r.metrics_snapshot();
        assert!(snap.counters.is_empty());
        assert_eq!(
            r.trace_json(),
            r#"{"traceEvents":[],"displayTimeUnit":"ms","droppedSpans":0}"#
        );
    }

    #[test]
    fn enabled_recorder_collects() {
        let r = Recorder::enabled();
        r.counter("c").add(5);
        r.counter("c").add(2);
        r.gauge("g").set(9);
        r.histogram("h").record(3);
        r.synthetic_span("model", "modeled", 4, 100, 50);
        {
            let _g = r.span("live", "threaded", 1);
        }
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauges["g"].peak, 9);
        assert_eq!(snap.histograms["h"].count, 1);
        let trace = r.trace_json();
        assert!(trace.contains("\"model\""));
        assert!(trace.contains("\"live\""));
        assert!(trace.contains("\"tid\":4"));
    }

    #[test]
    fn dropped_spans_surface_as_counter() {
        let r = Recorder::with_trace_capacity(1);
        r.synthetic_span("a", "cat", 0, 0, 1);
        r.synthetic_span("b", "cat", 0, 1, 1);
        r.synthetic_span("c", "cat", 0, 2, 1);
        assert_eq!(r.trace_dropped(), 2);
        assert_eq!(r.metrics_snapshot().counter("trace.dropped_spans"), 2);
        assert_eq!(Recorder::disabled().trace_dropped(), 0);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        r2.counter("shared").inc();
        assert_eq!(r.metrics_snapshot().counter("shared"), 1);
    }
}
