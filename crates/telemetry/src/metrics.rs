//! Named counters, gauges and log-bucketed histograms.
//!
//! Hot paths are single atomic operations on handles obtained once (the
//! registry lookup is the only locked step). Snapshots are plain data and
//! mergeable, so per-run registries can be combined — e.g. a threaded run
//! and its modeled twin — before rendering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell, so a handle can be looked up once
/// and incremented from many threads without touching the registry again.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter detached from any registry (used by disabled recorders).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge tracking a current value and its high-water mark.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    peak: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge detached from any registry (used by disabled recorders).
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Set the current value, updating the peak.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` samples with logarithmic (power-of-two) buckets.
///
/// Bucket 0 holds zeros; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Recording is three relaxed atomic ops plus two
/// min/max updates — cheap enough for per-message latencies.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
    min: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new([const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS]),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
            min: Arc::new(AtomicU64::new(u64::MAX)),
            max: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`2^i - 1`; bucket 0 → 0).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// A histogram detached from any registry (used by disabled recorders).
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from bucket upper bounds.
    ///
    /// Returns the upper bound of the bucket containing the q-th sample,
    /// clamped to the observed max; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Point-in-time copy of a [`Gauge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Value at snapshot time.
    pub value: u64,
    /// High-water mark.
    pub peak: u64,
}

#[derive(Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe registry of named metrics.
///
/// Lookup takes a lock; the returned handles do not. Names are
/// dot-separated paths (`"dart.msgs_sent"`, `"fabric.bytes.inter_app.shm"`).
#[derive(Default)]
pub struct MetricsRegistry {
    tables: Mutex<Tables>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut t = self.tables.lock().unwrap();
        t.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = self.tables.lock().unwrap();
        t.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut t = self.tables.lock().unwrap();
        t.histograms.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let t = self.tables.lock().unwrap();
        MetricsSnapshot {
            counters: t
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: t
                .gauges
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: v.get(),
                            peak: v.peak(),
                        },
                    )
                })
                .collect(),
            histograms: t
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`MetricsRegistry`]; mergeable and renderable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge another snapshot into this one (counters add, gauge values
    /// add with peaks maxed, histograms merge bucketwise).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            let slot = self
                .gauges
                .entry(k.clone())
                .or_insert(GaugeSnapshot { value: 0, peak: 0 });
            slot.value += g.value;
            slot.peak = slot.peak.max(g.peak);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters whose name starts with `prefix`, as `(name, value)` pairs.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// Render as a JSON object with `counters`, `gauges` and `histograms`
    /// sections.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.field(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, g) in &self.gauges {
            gauges = gauges.field(k, Json::obj().field("value", g.value).field("peak", g.peak));
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            let mut buckets = Vec::new();
            for (i, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    buckets.push(
                        Json::obj()
                            .field("le", bucket_upper_bound(i))
                            .field("count", n),
                    );
                }
            }
            let mut obj = Json::obj()
                .field("count", h.count)
                .field("sum", h.sum)
                .field("min", if h.count == 0 { 0 } else { h.min })
                .field("max", h.max)
                .field("buckets", buckets);
            if let Some(mean) = h.mean() {
                obj = obj.field("mean", mean);
            }
            if let Some(p50) = h.quantile(0.5) {
                obj = obj.field("p50", p50);
            }
            if let Some(p95) = h.quantile(0.95) {
                obj = obj.field("p95", p95);
            }
            if let Some(p99) = h.quantile(0.99) {
                obj = obj.field("p99", p99);
            }
            histograms = histograms.field(k, obj);
        }
        Json::obj()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }

    /// Render as a plain-text table (one metric per row).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<44} {:>16}\n", "metric", "value"));
        out.push_str(&format!("{:-<44} {:->16}\n", "", ""));
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<44} {v:>16}\n"));
        }
        for (k, g) in &self.gauges {
            out.push_str(&format!(
                "{k:<44} {:>16}\n",
                format!("{} (peak {})", g.value, g.peak)
            ));
        }
        for (k, h) in &self.histograms {
            let mean = h.mean().unwrap_or(0.0);
            let p50 = h.quantile(0.5).unwrap_or(0);
            let p95 = h.quantile(0.95).unwrap_or(0);
            let p99 = h.quantile(0.99).unwrap_or(0);
            out.push_str(&format!(
                "{k:<44} {:>16}\n",
                format!("n={} mean={mean:.1} p50={p50} p95={p95} p99={p99}", h.count)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 4, 8, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 115);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // p0 → first bucket's bound; p100 → max.
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.quantile(1.0), Some(100));
        // The median sample (rank 3) is 4, in bucket [4,8) → bound 7.
        assert_eq!(s.quantile(0.5), Some(7));
        assert!(Histogram::default().snapshot().quantile(0.5).is_none());
    }

    #[test]
    fn concurrent_counters_sum_exactly() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("x");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("x"), 80_000);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::default();
        g.set(5);
        g.set(9);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 9);
    }

    #[test]
    fn snapshots_merge() {
        let a = MetricsRegistry::new();
        a.counter("n").add(3);
        a.gauge("g").set(10);
        a.histogram("h").record(4);
        let b = MetricsRegistry::new();
        b.counter("n").add(4);
        b.counter("only_b").add(1);
        b.gauge("g").set(2);
        b.histogram("h").record(16);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("n"), 7);
        assert_eq!(merged.counter("only_b"), 1);
        assert_eq!(merged.gauges["g"].value, 12);
        assert_eq!(merged.gauges["g"].peak, 10);
        let h = &merged.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 20);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 16);
    }

    #[test]
    fn json_and_table_render() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(2);
        reg.gauge("g").set(1);
        reg.histogram("lat").record(5);
        let snap = reg.snapshot();
        let json = snap.to_json().render();
        assert!(json.contains("\"a.b\":2"));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"p95\""));
        let table = snap.to_table();
        assert!(table.contains("a.b"));
        assert!(table.contains("peak"));
        // Single sample 5 sits in bucket [4,8) whose bound clamps to max=5.
        assert!(table.contains("p50=5 p95=5 p99=5"));
    }
}
