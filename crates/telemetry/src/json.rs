//! A minimal JSON value model and writer.
//!
//! The workspace is hermetic (no serde), so metrics snapshots, chrome
//! traces and the bench harness's `BENCH_figNN.json` files are rendered
//! through this module. Output is deterministic: object keys keep
//! insertion order and floats are printed with enough precision to
//! round-trip.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the workspace's counters are u64).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert a field (object values only).
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` prints round-trippable floats ("1.5", "0.1").
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(7).render(), "7");
        assert_eq!(Json::I64(-3).render(), "-3");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let j = Json::obj()
            .field("name", "fig08")
            .field("rows", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        assert_eq!(j.render(), r#"{"name":"fig08","rows":[1,2]}"#);
    }
}
