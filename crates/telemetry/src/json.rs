//! A minimal JSON value model, writer and parser.
//!
//! The workspace is hermetic (no serde), so metrics snapshots, chrome
//! traces and the bench harness's `BENCH_figNN.json` files are rendered
//! through this module. Output is deterministic: object keys keep
//! insertion order and floats are printed with enough precision to
//! round-trip. [`Json::parse`] reads the same dialect back (used by the
//! regression gate to load baseline documents and by trace round-trip
//! tests); numbers parse into `U64`/`I64` when they are exact integers
//! and `F64` otherwise.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the workspace's counters are u64).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert a field (object values only).
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse a JSON document.
    ///
    /// Accepts standard JSON (the writer's output plus insignificant
    /// whitespace). Numbers become [`Json::U64`] when non-negative
    /// integers, [`Json::I64`] when negative integers, and
    /// [`Json::F64`] otherwise. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Look up a field of an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (`U64`/`I64`/`F64` all convert); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned integer view; `None` for anything that is not an exact u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` prints round-trippable floats ("1.5", "0.1").
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates (emitted only for astral chars, which the
                        // writer never escapes) fall back to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(7).render(), "7");
        assert_eq!(Json::I64(-3).render(), "-3");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures() {
        let j = Json::obj()
            .field("name", "fig08")
            .field("rows", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        assert_eq!(j.render(), r#"{"name":"fig08","rows":[1,2]}"#);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj()
            .field("name", "fig08")
            .field("neg", Json::I64(-3))
            .field("pi", 3.25)
            .field("flag", true)
            .field("none", Json::Null)
            .field("text", "a\"b\\c\nd\u{1}")
            .field("rows", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let parsed = Json::parse(" { \"a\" : [ 1 , { \"b\" : -2.5 } ] }\n").unwrap();
        assert_eq!(
            parsed,
            Json::obj().field(
                "a",
                Json::Arr(vec![Json::U64(1), Json::obj().field("b", Json::F64(-2.5))])
            )
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::obj().field("n", 4u64).field("s", "x");
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(4.0));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert!(j.get("missing").is_none());
        assert!(j.as_arr().is_none());
    }
}
