//! Span-based tracing with a bounded in-memory ring buffer.
//!
//! Spans are complete events (begin + duration) stored in a
//! [`TraceSink`]; when the buffer is full the oldest span is dropped and
//! counted. The sink exports chrome://tracing-compatible JSON ("X" phase
//! events) and a plain-text per-name summary table. The modeled executor
//! injects *synthetic* spans (explicit start/duration) so threaded and
//! modeled timelines render through the same pipeline.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;
use crate::metrics::Counter;

/// Default ring-buffer capacity (spans).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Event name (e.g. `"cods.get_seq"`).
    pub name: String,
    /// Category, used for chrome trace colouring (e.g. `"cods"`).
    pub category: String,
    /// Track id — a client/thread identifier.
    pub track: u64,
    /// Start timestamp in microseconds from the sink's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
}

struct Ring {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

/// Bounded collector of [`SpanRecord`]s.
pub struct TraceSink {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    dropped_counter: Counter,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` spans (oldest dropped first).
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink::with_capacity_and_counter(capacity, Counter::detached())
    }

    /// Like [`TraceSink::with_capacity`], but drops are also counted on
    /// `counter` so they show up in metrics snapshots next to everything
    /// else instead of staying private to the sink.
    pub fn with_capacity_and_counter(capacity: usize, counter: Counter) -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                spans: VecDeque::new(),
                dropped: 0,
            }),
            dropped_counter: counter,
        }
    }

    /// Microseconds elapsed since the sink was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a completed span.
    pub fn push(&self, span: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.spans.len() == self.capacity {
            ring.spans.pop_front();
            ring.dropped += 1;
            self.dropped_counter.inc();
        }
        ring.spans.push_back(span);
    }

    /// Record a synthetic span with an explicit timeline position; used
    /// by the modeled executor so its output is comparable with threaded
    /// traces.
    pub fn push_synthetic(
        &self,
        name: &str,
        category: &str,
        track: u64,
        start_us: u64,
        duration_us: u64,
    ) {
        self.push(SpanRecord {
            name: name.to_string(),
            category: category.to_string(),
            track,
            start_us,
            duration_us,
        });
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().spans.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Copy out the buffered spans in arrival order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring.lock().unwrap().spans.iter().cloned().collect()
    }

    /// The buffered spans as chrome://tracing `"X"` phase event objects.
    ///
    /// Exposed separately from [`TraceSink::to_chrome_json`] so callers
    /// (the flight-recorder flow export) can merge extra events into the
    /// same `traceEvents` array.
    pub fn chrome_events(&self) -> Vec<Json> {
        self.snapshot()
            .iter()
            .map(|s| {
                Json::obj()
                    .field("name", s.name.as_str())
                    .field("cat", s.category.as_str())
                    .field("ph", "X")
                    .field("ts", s.start_us)
                    .field("dur", s.duration_us)
                    .field("pid", 0u64)
                    .field("tid", s.track)
            })
            .collect()
    }

    /// Render as chrome://tracing JSON (load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>).
    pub fn to_chrome_json(&self) -> Json {
        Json::obj()
            .field("traceEvents", self.chrome_events())
            .field("displayTimeUnit", "ms")
            .field("droppedSpans", self.dropped())
    }

    /// Render a per-name summary table (count, total, mean, max).
    pub fn to_summary_table(&self) -> String {
        struct Agg {
            count: u64,
            total_us: u64,
            max_us: u64,
        }
        let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
        for s in self.snapshot() {
            let agg = by_name.entry(s.name).or_insert(Agg {
                count: 0,
                total_us: 0,
                max_us: 0,
            });
            agg.count += 1;
            agg.total_us += s.duration_us;
            agg.max_us = agg.max_us.max(s.duration_us);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>8} {:>12} {:>12} {:>12}\n",
            "span", "count", "total_us", "mean_us", "max_us"
        ));
        out.push_str(&format!(
            "{:-<32} {:->8} {:->12} {:->12} {:->12}\n",
            "", "", "", "", ""
        ));
        for (name, agg) in &by_name {
            let mean = agg.total_us as f64 / agg.count as f64;
            out.push_str(&format!(
                "{name:<32} {:>8} {:>12} {mean:>12.1} {:>12}\n",
                agg.count, agg.total_us, agg.max_us
            ));
        }
        if self.dropped() > 0 {
            out.push_str(&format!(
                "(dropped {} spans: ring buffer full)\n",
                self.dropped()
            ));
        }
        out
    }
}

/// RAII guard that records a span on drop.
///
/// Created via [`crate::Recorder::span`]; when the recorder is disabled
/// the guard holds no sink and drop is free.
pub struct SpanGuard {
    sink: Option<Arc<TraceSink>>,
    name: String,
    category: String,
    track: u64,
    start_us: u64,
    started: Instant,
}

impl SpanGuard {
    /// Start a span against `sink` (`None` → no-op guard).
    pub fn start(
        sink: Option<Arc<TraceSink>>,
        name: &str,
        category: &str,
        track: u64,
    ) -> SpanGuard {
        let start_us = sink.as_deref().map(TraceSink::now_us).unwrap_or(0);
        SpanGuard {
            sink,
            name: name.to_string(),
            category: category.to_string(),
            track,
            start_us,
            started: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink.push(SpanRecord {
                name: std::mem::take(&mut self.name),
                category: std::mem::take(&mut self.category),
                track: self.track,
                start_us: self.start_us,
                duration_us: self.started.elapsed().as_micros() as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            category: "test".to_string(),
            track: 1,
            start_us: start,
            duration_us: dur,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let sink = TraceSink::with_capacity(3);
        for i in 0..5 {
            sink.push(span(&format!("s{i}"), i, 1));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let names: Vec<String> = sink.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"]);
    }

    #[test]
    fn drops_feed_registry_counter() {
        let registry = crate::metrics::MetricsRegistry::new();
        let sink = TraceSink::with_capacity_and_counter(2, registry.counter("trace.dropped_spans"));
        for i in 0..5 {
            sink.push(span(&format!("s{i}"), i, 1));
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(registry.snapshot().counter("trace.dropped_spans"), 3);
    }

    #[test]
    fn chrome_json_shape() {
        let sink = TraceSink::with_capacity(8);
        sink.push(span("work", 10, 5));
        let json = sink.to_chrome_json().render();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":5"));
        assert!(json.contains("\"tid\":1"));
    }

    #[test]
    fn span_guard_records() {
        let sink = Arc::new(TraceSink::with_capacity(8));
        {
            let _g = SpanGuard::start(Some(Arc::clone(&sink)), "op", "cat", 7);
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "op");
        assert_eq!(spans[0].track, 7);
    }

    #[test]
    fn noop_guard_is_silent() {
        let _g = SpanGuard::start(None, "op", "cat", 0);
    }

    #[test]
    fn summary_table_aggregates() {
        let sink = TraceSink::with_capacity(8);
        sink.push(span("a", 0, 10));
        sink.push(span("a", 10, 30));
        sink.push(span("b", 0, 5));
        let table = sink.to_summary_table();
        assert!(table.contains("a"));
        assert!(table.contains("2"));
        assert!(table.contains("40"));
        assert!(table.contains("b"));
    }
}
