//! Property tests for metrics-snapshot merging.
//!
//! The CLI merges a threaded run's registry snapshot with its modeled
//! twin before rendering; these properties pin down what that merge must
//! preserve: counter sums, gauge peaks, and histogram bucket contents.

use insitu_telemetry::{MetricsRegistry, MetricsSnapshot};
use insitu_util::check::forall;
use insitu_util::rng::SplitMix64;

const NAMES: &[&str] = &[
    "cods.put",
    "cods.get",
    "dart.msgs_sent",
    "fabric.bytes.inter_app.shm",
    "trace.dropped_spans",
];

/// Build a registry with a random assortment of metric operations and
/// return its snapshot.
fn random_snapshot(rng: &mut SplitMix64) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    for _ in 0..rng.range_usize(0, 24) {
        let name = *rng.choose(NAMES);
        match rng.range_u32(0, 3) {
            0 => reg.counter(name).add(rng.range_u64(0, 1 << 20)),
            1 => reg.gauge(name).set(rng.range_u64(0, 1 << 20)),
            _ => reg.histogram(name).record(rng.range_u64(0, 1 << 40)),
        }
    }
    reg.snapshot()
}

#[test]
fn merge_preserves_counter_sums_gauge_peaks_and_buckets() {
    forall(200, |rng| {
        let threaded = random_snapshot(rng);
        let modeled = random_snapshot(rng);
        let mut merged = threaded.clone();
        merged.merge(&modeled);

        // Counters: merged value is the exact sum, for every name on
        // either side.
        for name in threaded.counters.keys().chain(modeled.counters.keys()) {
            assert_eq!(
                merged.counter(name),
                threaded.counter(name) + modeled.counter(name),
                "counter {name} not preserved"
            );
        }

        // Gauges: values add (aggregate occupancy), peaks take the max.
        for name in threaded.gauges.keys().chain(modeled.gauges.keys()) {
            let t = threaded.gauges.get(name);
            let m = modeled.gauges.get(name);
            let got = &merged.gauges[name];
            assert_eq!(
                got.value,
                t.map_or(0, |g| g.value) + m.map_or(0, |g| g.value)
            );
            assert_eq!(
                got.peak,
                t.map_or(0, |g| g.peak).max(m.map_or(0, |g| g.peak))
            );
        }

        // Histograms: bucketwise sums, plus count/sum/min/max.
        for name in threaded.histograms.keys().chain(modeled.histograms.keys()) {
            let t = threaded.histograms.get(name);
            let m = modeled.histograms.get(name);
            let got = &merged.histograms[name];
            for i in 0..got.buckets.len() {
                assert_eq!(
                    got.buckets[i],
                    t.map_or(0, |h| h.buckets[i]) + m.map_or(0, |h| h.buckets[i]),
                    "histogram {name} bucket {i} not preserved"
                );
            }
            assert_eq!(
                got.count,
                t.map_or(0, |h| h.count) + m.map_or(0, |h| h.count)
            );
            assert_eq!(got.sum, t.map_or(0, |h| h.sum) + m.map_or(0, |h| h.sum));
            assert_eq!(
                got.min,
                t.map_or(u64::MAX, |h| h.min)
                    .min(m.map_or(u64::MAX, |h| h.min))
            );
            assert_eq!(got.max, t.map_or(0, |h| h.max).max(m.map_or(0, |h| h.max)));
        }
    });
}

#[test]
fn merge_is_commutative_on_counters_and_histograms() {
    forall(100, |rng| {
        let a = random_snapshot(rng);
        let b = random_snapshot(rng);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.histograms, ba.histograms);
        // Gauge peaks commute too (values also do — both are sums).
        assert_eq!(ab.gauges, ba.gauges);
    });
}
