//! k-way graph partitioning for data-centric task mapping.
//!
//! The paper's workflow management server "uses graph partitioning tools
//! (e.g., METIS) to group and map data-intensive communicating tasks onto
//! the same compute node" (§III.A). This crate is that tool: a multilevel
//! k-way partitioner in the Karypis-Kumar style ([`MultilevelPartitioner`]),
//! plus the baselines the evaluation compares against
//! ([`RoundRobinPartitioner`], [`GreedyGrowthPartitioner`]).
//!
//! All partitioners honor a hard per-part weight cap
//! ([`PartitionConfig::with_cap`]): with unit vertex weights and
//! `cap = cores_per_node`, every part fits on one compute node.

#![warn(missing_docs)]

pub mod graph;
pub mod multilevel;
pub mod partitioner;

pub use graph::{Graph, GraphBuilder};
pub use multilevel::MultilevelPartitioner;
pub use partitioner::{
    GreedyGrowthPartitioner, PartitionConfig, Partitioner, RoundRobinPartitioner,
};
