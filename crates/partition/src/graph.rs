//! Undirected weighted graphs in CSR form.
//!
//! Vertices are computation tasks; edge weights are inter-task
//! communication volumes (bytes or cells). The workflow management server
//! builds one of these from the coupled applications' decompositions and
//! partitions it so heavily communicating tasks land on the same node.

use std::collections::BTreeMap;

/// An undirected graph with vertex and edge weights, stored in compressed
/// sparse row form. Immutable once built; construct via [`GraphBuilder`].
#[derive(Clone, Debug)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<u64>,
    vwgt: Vec<u64>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: u32) -> u64 {
        self.vwgt[v as usize]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Iterate `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let r = self.xadj[v as usize]..self.xadj[v as usize + 1];
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.adjwgt[r].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Sum of edge weights crossing part boundaries under `parts`
    /// (each undirected edge counted once).
    ///
    /// # Panics
    /// Panics if `parts` is shorter than the vertex count.
    pub fn edge_cut(&self, parts: &[u32]) -> u64 {
        assert!(parts.len() >= self.num_vertices());
        let mut cut = 0u64;
        for v in 0..self.num_vertices() as u32 {
            for (u, w) in self.neighbors(v) {
                if u > v && parts[v as usize] != parts[u as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Total weight of each part under `parts`.
    pub fn part_weights(&self, parts: &[u32], nparts: usize) -> Vec<u64> {
        let mut w = vec![0u64; nparts];
        for v in 0..self.num_vertices() {
            w[parts[v] as usize] += self.vwgt[v];
        }
        w
    }
}

/// Incremental builder accumulating parallel edges into summed weights.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: u32,
    vwgt: Vec<u64>,
    edges: BTreeMap<(u32, u32), u64>,
}

impl GraphBuilder {
    /// A builder for `n` vertices, all with weight 1.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            vwgt: vec![1; n as usize],
            edges: BTreeMap::new(),
        }
    }

    /// Set the weight of vertex `v`.
    pub fn set_vertex_weight(&mut self, v: u32, w: u64) {
        self.vwgt[v as usize] = w;
    }

    /// Add (accumulate) an undirected edge. Self-loops are ignored; zero
    /// weights are ignored.
    pub fn add_edge(&mut self, a: u32, b: u32, w: u64) {
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        if a == b || w == 0 {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += w;
    }

    /// Finalize into CSR form.
    pub fn build(self) -> Graph {
        let n = self.n as usize;
        let mut deg = vec![0usize; n];
        for &(a, b) in self.edges.keys() {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let m = xadj[n];
        let mut adjncy = vec![0u32; m];
        let mut adjwgt = vec![0u64; m];
        let mut fill = xadj.clone();
        for (&(a, b), &w) in &self.edges {
            adjncy[fill[a as usize]] = b;
            adjwgt[fill[a as usize]] = w;
            fill[a as usize] += 1;
            adjncy[fill[b as usize]] = a;
            adjwgt[fill[b as usize]] = w;
            fill[b as usize] += 1;
        }
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt: self.vwgt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 3);
        b.add_edge(2, 0, 2);
        b.build()
    }

    #[test]
    fn csr_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 5), (2, 2)]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 0, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 7)));
    }

    #[test]
    fn self_loops_and_zero_weights_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 9);
        b.add_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edge_cut_counts_crossing_once() {
        let g = triangle();
        assert_eq!(g.edge_cut(&[0, 0, 0]), 0);
        assert_eq!(g.edge_cut(&[0, 1, 1]), 5 + 2);
        assert_eq!(g.edge_cut(&[0, 1, 2]), 10);
    }

    #[test]
    fn vertex_weights() {
        let mut b = GraphBuilder::new(3);
        b.set_vertex_weight(1, 7);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 1);
        assert_eq!(g.vertex_weight(1), 7);
        assert_eq!(g.total_vertex_weight(), 9);
        assert_eq!(g.part_weights(&[0, 1, 1], 2), vec![1, 8]);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edge_cut(&[0, 1, 2, 3]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        GraphBuilder::new(2).add_edge(0, 2, 1);
    }
}
