//! Multilevel k-way partitioning: the METIS-substitute used by the
//! server-side data-centric task mapper.
//!
//! Three phases, as in Karypis & Kumar's scheme:
//! 1. **Coarsening** — heavy-edge matching collapses matched pairs until
//!    the graph is small;
//! 2. **Initial partitioning** — greedy graph growing on the coarsest
//!    graph;
//! 3. **Uncoarsening + refinement** — the partition is projected back one
//!    level at a time, with FM-style boundary moves (positive-gain,
//!    cap-respecting) after each projection.

use crate::graph::{Graph, GraphBuilder};
use crate::partitioner::{grow_parts, PartitionConfig, Partitioner};

/// The multilevel k-way partitioner.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelPartitioner {
    /// Stop coarsening once the graph has at most this many vertices per
    /// part (default 8).
    pub coarsen_to_per_part: usize,
    /// Refinement passes after each projection (default 4).
    pub refine_passes: usize,
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        MultilevelPartitioner {
            coarsen_to_per_part: 8,
            refine_passes: 4,
        }
    }
}

struct Level {
    graph: Graph,
    /// fine vertex -> coarse vertex of the *next* level.
    map_to_coarse: Vec<u32>,
}

impl MultilevelPartitioner {
    fn coarsen(&self, g: &Graph, nparts: usize) -> (Vec<Level>, Graph) {
        let mut levels: Vec<Level> = Vec::new();
        let mut cur = g.clone();
        // Keep enough coarse vertices to seed every part.
        let target = self
            .coarsen_to_per_part
            .max(2)
            .saturating_mul(nparts)
            .max(64);
        loop {
            if cur.num_vertices() <= target {
                break;
            }
            let (mapping, coarse_n) = heavy_edge_matching(&cur);
            if coarse_n as usize >= cur.num_vertices() * 9 / 10 {
                break; // matching stalled; further coarsening is useless
            }
            let coarse = contract(&cur, &mapping, coarse_n);
            levels.push(Level {
                graph: cur,
                map_to_coarse: mapping,
            });
            cur = coarse;
        }
        (levels, cur)
    }

    fn refine(&self, g: &Graph, parts: &mut [u32], nparts: usize, cap: u64) {
        let mut weights = g.part_weights(parts, nparts);
        for _ in 0..self.refine_passes {
            let mut moved = false;
            for v in 0..g.num_vertices() as u32 {
                let own = parts[v as usize];
                // Connectivity to each adjacent part.
                let mut conn: Vec<(u32, u64)> = Vec::new();
                let mut own_conn = 0u64;
                for (u, w) in g.neighbors(v) {
                    let pu = parts[u as usize];
                    if pu == own {
                        own_conn += w;
                    } else if let Some(e) = conn.iter_mut().find(|e| e.0 == pu) {
                        e.1 += w;
                    } else {
                        conn.push((pu, w));
                    }
                }
                let vw = g.vertex_weight(v);
                let best = conn
                    .iter()
                    .filter(|&&(p, _)| weights[p as usize] + vw <= cap)
                    .max_by_key(|&&(p, c)| (c, std::cmp::Reverse(p)))
                    .copied();
                if let Some((p, c)) = best {
                    if c > own_conn {
                        parts[v as usize] = p;
                        weights[own as usize] -= vw;
                        weights[p as usize] += vw;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition(&self, g: &Graph, cfg: &PartitionConfig) -> Vec<u32> {
        let total = g.total_vertex_weight();
        let cap = cfg.effective_cap(total);
        assert!(cfg.nparts > 0, "nparts must be positive");
        assert!(
            cap.saturating_mul(cfg.nparts as u64) >= total,
            "infeasible: cap {cap} x {} parts < total weight {total}",
            cfg.nparts
        );
        if cfg.nparts == 1 {
            return vec![0; g.num_vertices()];
        }

        let (levels, coarsest) = self.coarsen(g, cfg.nparts);
        let mut parts = grow_parts(&coarsest, cfg.nparts, cap);
        self.refine(&coarsest, &mut parts, cfg.nparts, cap);

        // Project back through the levels, refining at each.
        for level in levels.iter().rev() {
            let mut fine_parts = vec![0u32; level.graph.num_vertices()];
            for v in 0..level.graph.num_vertices() {
                fine_parts[v] = parts[level.map_to_coarse[v] as usize];
            }
            parts = fine_parts;
            self.refine(&level.graph, &mut parts, cfg.nparts, cap);
        }
        // Coarse levels may carry soft cap overflows (super-vertex
        // granularity); enforce the hard cap on the finest graph, then
        // give refinement a final cap-respecting pass.
        crate::partitioner::rebalance(g, &mut parts, cfg.nparts, cap);
        self.refine(g, &mut parts, cfg.nparts, cap);
        debug_assert_eq!(parts.len(), g.num_vertices());
        debug_assert!(g.part_weights(&parts, cfg.nparts).iter().all(|&w| w <= cap));
        parts
    }

    fn name(&self) -> &'static str {
        "multilevel"
    }
}

/// Heavy-edge matching: visit vertices in index order; match each
/// unmatched vertex with its heaviest unmatched neighbor (ties to the
/// smaller index). Returns (fine -> coarse mapping, coarse vertex count).
fn heavy_edge_matching(g: &Graph) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    for v in 0..n as u32 {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let best = g
            .neighbors(v)
            .filter(|&(u, _)| mate[u as usize] == UNMATCHED && u != v)
            .max_by_key(|&(u, w)| (w, std::cmp::Reverse(u)));
        match best {
            Some((u, _)) => {
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
            None => mate[v as usize] = v, // matched with itself
        }
    }
    let mut map = vec![0u32; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let m = mate[v as usize];
        if m >= v {
            // v is the representative of the pair (or singleton).
            map[v as usize] = next;
            if m != v {
                map[m as usize] = next;
            }
            next += 1;
        }
    }
    (map, next)
}

/// Contract a graph along a fine->coarse mapping.
fn contract(g: &Graph, map: &[u32], coarse_n: u32) -> Graph {
    let mut b = GraphBuilder::new(coarse_n);
    let mut vw = vec![0u64; coarse_n as usize];
    for v in 0..g.num_vertices() as u32 {
        vw[map[v as usize] as usize] += g.vertex_weight(v);
    }
    for (c, &w) in vw.iter().enumerate() {
        b.set_vertex_weight(c as u32, w.max(1));
    }
    for v in 0..g.num_vertices() as u32 {
        for (u, w) in g.neighbors(v) {
            if u > v {
                b.add_edge(map[v as usize], map[u as usize], w);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::partitioner::RoundRobinPartitioner;

    /// Two communities of size `k` densely connected inside, one weak
    /// bridge between them.
    fn two_communities(k: u32) -> Graph {
        let mut b = GraphBuilder::new(2 * k);
        for base in [0, k] {
            for i in 0..k {
                for j in i + 1..k {
                    b.add_edge(base + i, base + j, 10);
                }
            }
        }
        b.add_edge(0, k, 1);
        b.build()
    }

    #[test]
    fn finds_community_structure() {
        let g = two_communities(8);
        let cfg = PartitionConfig::with_cap(2, 8);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        // The weak bridge should be the only cut edge.
        assert_eq!(g.edge_cut(&parts), 1);
    }

    #[test]
    fn beats_round_robin_on_grid() {
        // 8x8 grid graph, 4 parts of 16.
        let n = 8u32;
        let mut b = GraphBuilder::new(n * n);
        for i in 0..n {
            for j in 0..n {
                let v = i * n + j;
                if j + 1 < n {
                    b.add_edge(v, v + 1, 1);
                }
                if i + 1 < n {
                    b.add_edge(v, v + n, 1);
                }
            }
        }
        let g = b.build();
        let cfg = PartitionConfig::with_cap(4, 16);
        let ml = MultilevelPartitioner::default().partition(&g, &cfg);
        let rr = RoundRobinPartitioner.partition(&g, &cfg);
        assert!(
            g.edge_cut(&ml) <= g.edge_cut(&rr),
            "multilevel {} vs round-robin {}",
            g.edge_cut(&ml),
            g.edge_cut(&rr)
        );
        // A 4-way split of an 8x8 grid can achieve cut 16; allow slack.
        assert!(g.edge_cut(&ml) <= 24, "cut {}", g.edge_cut(&ml));
    }

    #[test]
    fn respects_hard_cap() {
        let g = two_communities(10);
        let cfg = PartitionConfig::with_cap(5, 4);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        let w = g.part_weights(&parts, 5);
        assert!(w.iter().all(|&x| x <= 4), "{w:?}");
        assert_eq!(w.iter().sum::<u64>(), 20);
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = GraphBuilder::new(10).build();
        let cfg = PartitionConfig::with_cap(5, 2);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        let w = g.part_weights(&parts, 5);
        assert!(w.iter().all(|&x| x <= 2));
    }

    #[test]
    fn single_part() {
        let g = two_communities(4);
        let parts = MultilevelPartitioner::default().partition(&g, &PartitionConfig::new(1));
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn matching_halves_vertices_on_path() {
        let mut b = GraphBuilder::new(8);
        for v in 0..7 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let (map, cn) = heavy_edge_matching(&g);
        assert_eq!(cn, 4);
        assert_eq!(map.len(), 8);
    }

    #[test]
    fn contract_preserves_total_weight() {
        let g = two_communities(4);
        let (map, cn) = heavy_edge_matching(&g);
        let c = contract(&g, &map, cn);
        assert_eq!(c.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn deterministic() {
        let g = two_communities(16);
        let cfg = PartitionConfig::with_cap(4, 8);
        let a = MultilevelPartitioner::default().partition(&g, &cfg);
        let b = MultilevelPartitioner::default().partition(&g, &cfg);
        assert_eq!(a, b);
    }
}
