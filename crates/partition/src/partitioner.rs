//! Partitioner trait and simple baselines.

use crate::graph::Graph;

/// Constraints and knobs for a k-way partitioning.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Number of parts.
    pub nparts: usize,
    /// Hard cap on the total vertex weight of any part. The workflow
    /// mapper uses the node core count here so every group fits a node.
    pub max_part_weight: Option<u64>,
}

impl PartitionConfig {
    /// `nparts` parts with no cap.
    pub fn new(nparts: usize) -> Self {
        PartitionConfig {
            nparts,
            max_part_weight: None,
        }
    }

    /// `nparts` parts with a hard per-part weight cap.
    pub fn with_cap(nparts: usize, cap: u64) -> Self {
        PartitionConfig {
            nparts,
            max_part_weight: Some(cap),
        }
    }

    /// The effective cap: the configured one, or a 3% slack over perfect
    /// balance (METIS's default imbalance tolerance class).
    pub fn effective_cap(&self, total_weight: u64) -> u64 {
        match self.max_part_weight {
            Some(c) => c,
            None => {
                let perfect = total_weight.div_ceil(self.nparts as u64);
                (perfect + perfect / 32).max(perfect + 1)
            }
        }
    }
}

/// A k-way graph partitioner. Returns one part id (`< nparts`) per vertex.
pub trait Partitioner {
    /// Partition `g` under `cfg`.
    ///
    /// # Panics
    /// Implementations panic if the instance is infeasible (e.g. the cap
    /// times `nparts` cannot hold the total vertex weight).
    fn partition(&self, g: &Graph, cfg: &PartitionConfig) -> Vec<u32>;

    /// Short name used in ablation output.
    fn name(&self) -> &'static str;
}

fn assert_feasible(g: &Graph, cfg: &PartitionConfig) -> u64 {
    assert!(cfg.nparts > 0, "nparts must be positive");
    let cap = cfg.effective_cap(g.total_vertex_weight());
    assert!(
        cap.saturating_mul(cfg.nparts as u64) >= g.total_vertex_weight(),
        "infeasible: cap {cap} x {} parts < total weight {}",
        cfg.nparts,
        g.total_vertex_weight()
    );
    let max_v = (0..g.num_vertices() as u32)
        .map(|v| g.vertex_weight(v))
        .max()
        .unwrap_or(0);
    assert!(
        max_v <= cap,
        "infeasible: vertex weight {max_v} exceeds cap {cap}"
    );
    cap
}

/// Deals vertices to parts in index order, wrapping around — the task
/// placement a plain MPI launcher produces and the paper's baseline.
///
/// Note this corresponds to *block* placement of consecutive ranks onto a
/// node when the part is a node: ranks `0..cap` to part 0, etc., which is
/// how `aprun`-style launchers fill nodes core by core.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinPartitioner;

impl Partitioner for RoundRobinPartitioner {
    #[allow(clippy::needless_range_loop)]
    fn partition(&self, g: &Graph, cfg: &PartitionConfig) -> Vec<u32> {
        let cap = assert_feasible(g, cfg);
        let mut parts = vec![0u32; g.num_vertices()];
        let mut weights = vec![0u64; cfg.nparts];
        let mut p = 0usize;
        for v in 0..g.num_vertices() {
            let w = g.vertex_weight(v as u32);
            let mut tries = 0;
            while weights[p] + w > cap {
                p = (p + 1) % cfg.nparts;
                tries += 1;
                assert!(tries <= cfg.nparts, "no part can hold vertex {v}");
            }
            parts[v] = p as u32;
            weights[p] += w;
        }
        parts
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Greedy graph-growing: grow each part around a seed by repeatedly
/// absorbing the unassigned vertex most strongly connected to the part.
/// One level, no refinement — the quality baseline between round-robin
/// and the multilevel partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyGrowthPartitioner;

impl Partitioner for GreedyGrowthPartitioner {
    fn partition(&self, g: &Graph, cfg: &PartitionConfig) -> Vec<u32> {
        let cap = assert_feasible(g, cfg);
        let mut parts = grow_parts(g, cfg.nparts, cap);
        rebalance(g, &mut parts, cfg.nparts, cap);
        parts
    }

    fn name(&self) -> &'static str {
        "greedy-growth"
    }
}

/// Greedy growth used both directly and as the coarsest-level seed of the
/// multilevel partitioner.
#[allow(clippy::needless_range_loop)]
pub(crate) fn grow_parts(g: &Graph, nparts: usize, cap: u64) -> Vec<u32> {
    let n = g.num_vertices();
    const UNASSIGNED: u32 = u32::MAX;
    let mut parts = vec![UNASSIGNED; n];
    let mut weights = vec![0u64; nparts];
    // gain[v] = connectivity to the currently growing part.
    let mut gain = vec![0u64; n];
    let mut next_seed = 0usize;

    for p in 0..nparts {
        // Seed: first unassigned vertex (deterministic).
        while next_seed < n && parts[next_seed] != UNASSIGNED {
            next_seed += 1;
        }
        if next_seed >= n {
            break;
        }
        let target = g.total_vertex_weight().div_ceil(nparts as u64);
        gain.iter_mut().for_each(|x| *x = 0);
        let mut frontier: Vec<u32> = Vec::new();
        let grow = |v: u32,
                    parts: &mut Vec<u32>,
                    weights: &mut Vec<u64>,
                    gain: &mut Vec<u64>,
                    frontier: &mut Vec<u32>| {
            parts[v as usize] = p as u32;
            weights[p] += g.vertex_weight(v);
            for (u, w) in g.neighbors(v) {
                if parts[u as usize] == UNASSIGNED {
                    if gain[u as usize] == 0 {
                        frontier.push(u);
                    }
                    gain[u as usize] += w;
                }
            }
        };
        grow(
            next_seed as u32,
            &mut parts,
            &mut weights,
            &mut gain,
            &mut frontier,
        );
        while weights[p] < target {
            // Pick the frontier vertex with max gain that fits.
            frontier.retain(|&u| parts[u as usize] == UNASSIGNED);
            let candidate = frontier
                .iter()
                .filter(|&&u| weights[p] + g.vertex_weight(u) <= cap)
                .max_by_key(|&&u| (gain[u as usize], std::cmp::Reverse(u)))
                .copied()
                .or_else(|| {
                    // Frontier exhausted before the part is full (a graph
                    // component ended): restart growth from a fresh seed
                    // so the part still reaches its balanced target.
                    (0..n as u32).find(|&u| {
                        parts[u as usize] == UNASSIGNED && weights[p] + g.vertex_weight(u) <= cap
                    })
                });
            let Some(best) = candidate else {
                break;
            };
            if weights[p] + g.vertex_weight(best) > target && weights[p] > 0 {
                // Would overshoot the balanced target; stop growing.
                if weights[p] + g.vertex_weight(best) > cap {
                    break;
                }
            }
            grow(best, &mut parts, &mut weights, &mut gain, &mut frontier);
        }
    }

    // Sweep leftovers into any part with room, preferring connected parts.
    for v in 0..n {
        if parts[v] != UNASSIGNED {
            continue;
        }
        let w = g.vertex_weight(v as u32);
        // Prefer the neighbor part with max connectivity that fits.
        let mut conn = std::collections::HashMap::new();
        for (u, ew) in g.neighbors(v as u32) {
            if parts[u as usize] != UNASSIGNED {
                *conn.entry(parts[u as usize]).or_insert(0u64) += ew;
            }
        }
        let chosen = conn
            .iter()
            .filter(|&(&p, _)| weights[p as usize] + w <= cap)
            .max_by_key(|&(&p, &c)| (c, std::cmp::Reverse(p)))
            .map(|(&p, _)| p)
            .or_else(|| (0..nparts as u32).find(|&p| weights[p as usize] + w <= cap))
            // Coarse graphs can hit bin-packing corners (weight-2 super
            // vertices vs 1-unit gaps); place on the lightest part and let
            // rebalance() restore the cap at a finer level.
            .unwrap_or_else(|| {
                (0..nparts as u32)
                    .min_by_key(|&p| weights[p as usize])
                    .unwrap()
            });
        parts[v] = chosen;
        weights[chosen as usize] += w;
    }
    parts
}

/// Restore a hard per-part cap by moving vertices out of overfull parts,
/// preferring moves that cut the least intra-part connectivity. With
/// unit vertex weights (one task per vertex) this always succeeds when
/// `total <= nparts * cap`.
///
/// # Panics
/// Panics if no sequence of single-vertex moves can satisfy the cap.
pub(crate) fn rebalance(g: &Graph, parts: &mut [u32], nparts: usize, cap: u64) {
    let mut weights = g.part_weights(parts, nparts);
    loop {
        let Some(over) = (0..nparts)
            .filter(|&p| weights[p] > cap)
            .max_by_key(|&p| weights[p])
        else {
            return;
        };
        // Candidate vertices of the overfull part, lightest connectivity
        // to their own part first.
        let mut best: Option<(u64, u32, u32)> = None; // (loss, vertex, dest)
        for v in 0..g.num_vertices() as u32 {
            if parts[v as usize] as usize != over {
                continue;
            }
            let w = g.vertex_weight(v);
            let Some(dest) = (0..nparts as u32)
                .filter(|&p| p as usize != over && weights[p as usize] + w <= cap)
                .max_by_key(|&p| {
                    g.neighbors(v)
                        .filter(|&(u, _)| parts[u as usize] == p)
                        .map(|(_, ew)| ew)
                        .sum::<u64>()
                })
            else {
                continue;
            };
            let loss: u64 = g
                .neighbors(v)
                .filter(|&(u, _)| parts[u as usize] as usize == over)
                .map(|(_, ew)| ew)
                .sum();
            if best.map(|(l, _, _)| loss < l).unwrap_or(true) {
                best = Some((loss, v, dest));
            }
        }
        let (_, v, dest) = best.expect("rebalance stuck: no movable vertex fits any part");
        let w = g.vertex_weight(v);
        weights[parts[v as usize] as usize] -= w;
        weights[dest as usize] += w;
        parts[v as usize] = dest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path_graph(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn round_robin_respects_cap() {
        let g = path_graph(10);
        let cfg = PartitionConfig::with_cap(5, 2);
        let parts = RoundRobinPartitioner.partition(&g, &cfg);
        let w = g.part_weights(&parts, 5);
        assert!(w.iter().all(|&x| x <= 2));
        assert_eq!(w.iter().sum::<u64>(), 10);
    }

    #[test]
    fn round_robin_fills_in_order() {
        let g = path_graph(6);
        let cfg = PartitionConfig::with_cap(3, 2);
        let parts = RoundRobinPartitioner.partition(&g, &cfg);
        assert_eq!(parts, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn greedy_growth_valid_and_capped() {
        let g = path_graph(12);
        let cfg = PartitionConfig::with_cap(4, 3);
        let parts = GreedyGrowthPartitioner.partition(&g, &cfg);
        assert!(parts.iter().all(|&p| p < 4));
        let w = g.part_weights(&parts, 4);
        assert!(w.iter().all(|&x| x <= 3), "{w:?}");
    }

    #[test]
    fn greedy_growth_cuts_path_optimally() {
        // A path cut into contiguous chunks has cut = nparts - 1.
        let g = path_graph(16);
        let cfg = PartitionConfig::with_cap(4, 4);
        let parts = GreedyGrowthPartitioner.partition(&g, &cfg);
        assert_eq!(g.edge_cut(&parts), 3);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_infeasible_cap() {
        let g = path_graph(10);
        RoundRobinPartitioner.partition(&g, &PartitionConfig::with_cap(2, 4));
    }

    #[test]
    fn single_part_puts_everything_together() {
        let g = path_graph(5);
        let parts = GreedyGrowthPartitioner.partition(&g, &PartitionConfig::new(1));
        assert!(parts.iter().all(|&p| p == 0));
        assert_eq!(g.edge_cut(&parts), 0);
    }
}
