//! Property tests: every partitioner produces valid, cap-respecting
//! partitions on arbitrary graphs.

use insitu_partition::{
    Graph, GraphBuilder, GreedyGrowthPartitioner, MultilevelPartitioner, PartitionConfig,
    Partitioner, RoundRobinPartitioner,
};
use insitu_util::check::forall;
use insitu_util::SplitMix64;

fn arb_graph(rng: &mut SplitMix64) -> Graph {
    let n = rng.range_u32(2, 40);
    let mut b = GraphBuilder::new(n);
    for _ in 0..rng.range_usize(0, 120) {
        let a = rng.next_u64() as u32 % n;
        let bb = rng.next_u64() as u32 % n;
        let w = rng.range_u64(1, 100);
        b.add_edge(a, bb, w);
    }
    b.build()
}

fn check(g: &Graph, parts: &[u32], nparts: usize, cap: u64) {
    assert_eq!(parts.len(), g.num_vertices());
    assert!(parts.iter().all(|&p| (p as usize) < nparts));
    let w = g.part_weights(parts, nparts);
    assert!(
        w.iter().all(|&x| x <= cap),
        "part weights {w:?} exceed cap {cap}"
    );
}

#[test]
fn round_robin_valid() {
    forall(64, |rng| {
        let g = arb_graph(rng);
        let k = rng.range_usize(1, 8);
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = RoundRobinPartitioner.partition(&g, &cfg);
        check(&g, &parts, k, cap);
    });
}

#[test]
fn greedy_valid() {
    forall(64, |rng| {
        let g = arb_graph(rng);
        let k = rng.range_usize(1, 8);
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = GreedyGrowthPartitioner.partition(&g, &cfg);
        check(&g, &parts, k, cap);
    });
}

#[test]
fn multilevel_valid() {
    forall(64, |rng| {
        let g = arb_graph(rng);
        let k = rng.range_usize(1, 8);
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        check(&g, &parts, k, cap);
    });
}

#[test]
fn multilevel_never_worse_than_all_cut() {
    forall(64, |rng| {
        let g = arb_graph(rng);
        let k = rng.range_usize(2, 6);
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        // Edge cut can never exceed total edge weight.
        let total: u64 = (0..g.num_vertices() as u32)
            .flat_map(|v| g.neighbors(v).map(move |(u, w)| if u > v { w } else { 0 }))
            .sum();
        assert!(g.edge_cut(&parts) <= total);
    });
}

#[test]
fn edge_cut_zero_iff_single_part_on_connected() {
    forall(32, |rng| {
        let n = rng.range_u32(2, 20);
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let parts = MultilevelPartitioner::default().partition(&g, &PartitionConfig::new(1));
        assert_eq!(g.edge_cut(&parts), 0);
    });
}
