//! Property tests: every partitioner produces valid, cap-respecting
//! partitions on arbitrary graphs.

use insitu_partition::{
    Graph, GraphBuilder, GreedyGrowthPartitioner, MultilevelPartitioner, PartitionConfig,
    Partitioner, RoundRobinPartitioner,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..40, proptest::collection::vec((any::<u32>(), any::<u32>(), 1u64..100), 0..120))
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (a, bb, w) in edges {
                b.add_edge(a % n, bb % n, w);
            }
            b.build()
        })
}

fn check(g: &Graph, parts: &[u32], nparts: usize, cap: u64) -> Result<(), TestCaseError> {
    prop_assert_eq!(parts.len(), g.num_vertices());
    prop_assert!(parts.iter().all(|&p| (p as usize) < nparts));
    let w = g.part_weights(parts, nparts);
    prop_assert!(w.iter().all(|&x| x <= cap), "part weights {:?} exceed cap {}", w, cap);
    Ok(())
}

proptest! {
    #[test]
    fn round_robin_valid(g in arb_graph(), k in 1usize..8) {
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = RoundRobinPartitioner.partition(&g, &cfg);
        check(&g, &parts, k, cap)?;
    }

    #[test]
    fn greedy_valid(g in arb_graph(), k in 1usize..8) {
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = GreedyGrowthPartitioner.partition(&g, &cfg);
        check(&g, &parts, k, cap)?;
    }

    #[test]
    fn multilevel_valid(g in arb_graph(), k in 1usize..8) {
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        check(&g, &parts, k, cap)?;
    }

    #[test]
    fn multilevel_never_worse_than_all_cut(g in arb_graph(), k in 2usize..6) {
        let n = g.num_vertices() as u64;
        let cap = n.div_ceil(k as u64) + 1;
        let cfg = PartitionConfig::with_cap(k, cap);
        let parts = MultilevelPartitioner::default().partition(&g, &cfg);
        // Edge cut can never exceed total edge weight.
        let total: u64 = (0..g.num_vertices() as u32)
            .flat_map(|v| g.neighbors(v).map(move |(u, w)| if u > v { w } else { 0 }))
            .sum();
        prop_assert!(g.edge_cut(&parts) <= total);
    }

    #[test]
    fn edge_cut_zero_iff_single_part_on_connected(k in 1usize..2, n in 2u32..20) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let parts = MultilevelPartitioner::default().partition(&g, &PartitionConfig::new(k));
        prop_assert_eq!(g.edge_cut(&parts), 0);
    }
}
