//! Byte accounting for every data transfer in the system.
//!
//! The paper's headline experiments (Figs. 8, 9, 12-15) measure *the
//! amount of data transferred over the communication fabric* versus
//! retrieved in-situ through shared memory. The [`TransferLedger`] is the
//! single source of truth for those numbers: both the threaded executor
//! (which really moves bytes) and the modeled executor (which only counts
//! them) record into it, classified by traffic class, application id and
//! locality.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a transfer is for. The evaluation separates inter-application
/// coupling traffic from intra-application (stencil) exchanges; DHT
/// queries and control messages are tracked for completeness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrafficClass {
    /// Coupled data redistribution between applications.
    InterApp,
    /// Near-neighbor exchange within one application.
    IntraApp,
    /// DHT location queries and updates.
    Dht,
    /// Registration, task dispatch and other control-plane messages.
    Control,
}

impl TrafficClass {
    const ALL: [TrafficClass; 4] = [
        TrafficClass::InterApp,
        TrafficClass::IntraApp,
        TrafficClass::Dht,
        TrafficClass::Control,
    ];

    fn idx(self) -> usize {
        match self {
            TrafficClass::InterApp => 0,
            TrafficClass::IntraApp => 1,
            TrafficClass::Dht => 2,
            TrafficClass::Control => 3,
        }
    }
}

/// Whether a transfer stayed on-node (shared memory) or crossed the
/// network fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Locality {
    /// Intra-node: served from shared memory.
    SharedMemory,
    /// Inter-node: crossed the interconnect.
    Network,
}

/// Thread-safe accumulator of transferred bytes.
#[derive(Debug, Default)]
pub struct TransferLedger {
    shm: [AtomicU64; 4],
    net: [AtomicU64; 4],
    // (app, class, locality) -> bytes; the per-application breakdown used
    // by Figs. 12-15. Kept under a mutex: recorded per transfer, not per
    // byte, so contention is negligible.
    per_app: Mutex<BTreeMap<(u32, TrafficClass, Locality), u64>>,
}

impl TransferLedger {
    /// New, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` of traffic for application `app`.
    pub fn record(&self, app: u32, class: TrafficClass, locality: Locality, bytes: u64) {
        if bytes == 0 {
            return;
        }
        match locality {
            Locality::SharedMemory => &self.shm[class.idx()],
            Locality::Network => &self.net[class.idx()],
        }
        .fetch_add(bytes, Ordering::Relaxed);
        *self.per_app.lock().entry((app, class, locality)).or_insert(0) += bytes;
    }

    /// Immutable snapshot of all counters.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            shm: std::array::from_fn(|i| self.shm[i].load(Ordering::Relaxed)),
            net: std::array::from_fn(|i| self.net[i].load(Ordering::Relaxed)),
            per_app: self.per_app.lock().clone(),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for a in &self.shm {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.net {
            a.store(0, Ordering::Relaxed);
        }
        self.per_app.lock().clear();
    }
}

/// A point-in-time copy of a [`TransferLedger`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerSnapshot {
    shm: [u64; 4],
    net: [u64; 4],
    per_app: BTreeMap<(u32, TrafficClass, Locality), u64>,
}

impl LedgerSnapshot {
    /// Bytes of `class` served from shared memory.
    pub fn shm_bytes(&self, class: TrafficClass) -> u64 {
        self.shm[class.idx()]
    }

    /// Bytes of `class` sent over the network.
    pub fn network_bytes(&self, class: TrafficClass) -> u64 {
        self.net[class.idx()]
    }

    /// Total bytes of `class` regardless of locality.
    pub fn total_bytes(&self, class: TrafficClass) -> u64 {
        self.shm_bytes(class) + self.network_bytes(class)
    }

    /// All network bytes across classes.
    pub fn network_total(&self) -> u64 {
        TrafficClass::ALL.iter().map(|&c| self.network_bytes(c)).sum()
    }

    /// All shared-memory bytes across classes.
    pub fn shm_total(&self) -> u64 {
        TrafficClass::ALL.iter().map(|&c| self.shm_bytes(c)).sum()
    }

    /// Bytes recorded for one application, class and locality.
    pub fn app_bytes(&self, app: u32, class: TrafficClass, locality: Locality) -> u64 {
        self.per_app.get(&(app, class, locality)).copied().unwrap_or(0)
    }

    /// Fraction of `class` bytes that crossed the network (0 when no
    /// traffic of the class occurred).
    pub fn network_fraction(&self, class: TrafficClass) -> f64 {
        let total = self.total_bytes(class);
        if total == 0 {
            0.0
        } else {
            self.network_bytes(class) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::InterApp, Locality::Network, 100);
        l.record(1, TrafficClass::InterApp, Locality::SharedMemory, 50);
        l.record(2, TrafficClass::IntraApp, Locality::Network, 7);
        let s = l.snapshot();
        assert_eq!(s.network_bytes(TrafficClass::InterApp), 100);
        assert_eq!(s.shm_bytes(TrafficClass::InterApp), 50);
        assert_eq!(s.total_bytes(TrafficClass::InterApp), 150);
        assert_eq!(s.network_bytes(TrafficClass::IntraApp), 7);
        assert_eq!(s.network_total(), 107);
        assert_eq!(s.shm_total(), 50);
    }

    #[test]
    fn per_app_breakdown() {
        let l = TransferLedger::new();
        l.record(3, TrafficClass::IntraApp, Locality::Network, 10);
        l.record(3, TrafficClass::IntraApp, Locality::Network, 5);
        l.record(4, TrafficClass::IntraApp, Locality::SharedMemory, 2);
        let s = l.snapshot();
        assert_eq!(s.app_bytes(3, TrafficClass::IntraApp, Locality::Network), 15);
        assert_eq!(s.app_bytes(4, TrafficClass::IntraApp, Locality::SharedMemory), 2);
        assert_eq!(s.app_bytes(9, TrafficClass::IntraApp, Locality::Network), 0);
    }

    #[test]
    fn zero_byte_records_ignored() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::Dht, Locality::Network, 0);
        assert_eq!(l.snapshot().network_total(), 0);
    }

    #[test]
    fn network_fraction() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::InterApp, Locality::Network, 20);
        l.record(1, TrafficClass::InterApp, Locality::SharedMemory, 80);
        let s = l.snapshot();
        assert!((s.network_fraction(TrafficClass::InterApp) - 0.2).abs() < 1e-12);
        assert_eq!(s.network_fraction(TrafficClass::Control), 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::Control, Locality::Network, 9);
        l.reset();
        let s = l.snapshot();
        assert_eq!(s.network_total(), 0);
        assert_eq!(s.app_bytes(1, TrafficClass::Control, Locality::Network), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let l = Arc::new(TransferLedger::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record(t, TrafficClass::InterApp, Locality::Network, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = l.snapshot();
        assert_eq!(s.network_bytes(TrafficClass::InterApp), 8 * 1000 * 3);
        for t in 0..8 {
            assert_eq!(s.app_bytes(t, TrafficClass::InterApp, Locality::Network), 3000);
        }
    }
}
