//! Byte accounting for every data transfer in the system.
//!
//! The paper's headline experiments (Figs. 8, 9, 12-15) measure *the
//! amount of data transferred over the communication fabric* versus
//! retrieved in-situ through shared memory. The [`TransferLedger`] is the
//! single source of truth for those numbers: both the threaded executor
//! (which really moves bytes) and the modeled executor (which only counts
//! them) record into it, classified by traffic class, application id and
//! locality.
//!
//! When built with a live [`Recorder`], the ledger mirrors every record
//! into the telemetry registry as `fabric.bytes.<class>.<locality>` and
//! `fabric.transfers.<class>.<locality>` counters, so metrics exports
//! carry the same truth without a second accounting path.

use crate::fault::FaultInjector;
use insitu_telemetry::{Counter, Recorder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a transfer is for. The evaluation separates inter-application
/// coupling traffic from intra-application (stencil) exchanges; DHT
/// queries and control messages are tracked for completeness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrafficClass {
    /// Coupled data redistribution between applications.
    InterApp,
    /// Near-neighbor exchange within one application.
    IntraApp,
    /// DHT location queries and updates.
    Dht,
    /// Registration, task dispatch and other control-plane messages.
    Control,
}

impl TrafficClass {
    /// Every traffic class, in `idx` order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::InterApp,
        TrafficClass::IntraApp,
        TrafficClass::Dht,
        TrafficClass::Control,
    ];

    /// Stable dense index into [`TrafficClass::ALL`] (used for wire
    /// encodings of ledger snapshots as well as internal array layout).
    pub fn idx(self) -> usize {
        match self {
            TrafficClass::InterApp => 0,
            TrafficClass::IntraApp => 1,
            TrafficClass::Dht => 2,
            TrafficClass::Control => 3,
        }
    }

    /// Inverse of [`TrafficClass::idx`]; `None` for out-of-range indices.
    pub fn from_idx(idx: usize) -> Option<TrafficClass> {
        TrafficClass::ALL.get(idx).copied()
    }

    /// Stable lowercase name, used in metric keys and JSON reports.
    pub fn slug(self) -> &'static str {
        match self {
            TrafficClass::InterApp => "inter_app",
            TrafficClass::IntraApp => "intra_app",
            TrafficClass::Dht => "dht",
            TrafficClass::Control => "control",
        }
    }
}

/// Whether a transfer stayed on-node (shared memory) or crossed the
/// network fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Locality {
    /// Intra-node: served from shared memory.
    SharedMemory,
    /// Inter-node: crossed the interconnect.
    Network,
}

impl Locality {
    /// Both localities, in `idx` order.
    pub const ALL: [Locality; 2] = [Locality::SharedMemory, Locality::Network];

    /// Stable dense index into [`Locality::ALL`] (used for wire encodings
    /// of ledger snapshots as well as internal array layout).
    pub fn idx(self) -> usize {
        match self {
            Locality::SharedMemory => 0,
            Locality::Network => 1,
        }
    }

    /// Inverse of [`Locality::idx`]; `None` for out-of-range indices.
    pub fn from_idx(idx: usize) -> Option<Locality> {
        Locality::ALL.get(idx).copied()
    }

    /// Stable lowercase name, used in metric keys and JSON reports.
    pub fn slug(self) -> &'static str {
        match self {
            Locality::SharedMemory => "shm",
            Locality::Network => "net",
        }
    }
}

/// Telemetry counters mirroring the ledger, one pair per
/// (class, locality) cell. Handles are resolved once at construction so
/// the record path stays lock-free.
struct Mirror {
    bytes: [[Counter; 2]; 4],
    transfers: [[Counter; 2]; 4],
}

impl Mirror {
    fn new(recorder: &Recorder) -> Mirror {
        let cell = |kind: &str, class: TrafficClass, loc: Locality| {
            recorder.counter(&format!("fabric.{kind}.{}.{}", class.slug(), loc.slug()))
        };
        Mirror {
            bytes: TrafficClass::ALL.map(|c| Locality::ALL.map(|l| cell("bytes", c, l))),
            transfers: TrafficClass::ALL.map(|c| Locality::ALL.map(|l| cell("transfers", c, l))),
        }
    }
}

/// Thread-safe accumulator of transferred bytes.
#[derive(Default)]
pub struct TransferLedger {
    shm: [AtomicU64; 4],
    net: [AtomicU64; 4],
    // (app, class, locality) -> bytes; the per-application breakdown used
    // by Figs. 12-15. Kept under a mutex: recorded per transfer, not per
    // byte, so contention is negligible.
    per_app: Mutex<BTreeMap<(u32, TrafficClass, Locality), u64>>,
    mirror: Option<Mirror>,
    observer: FaultInjector,
}

impl std::fmt::Debug for TransferLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferLedger")
            .field("snapshot", &self.snapshot())
            .field("mirrored", &self.mirror.is_some())
            .finish()
    }
}

impl TransferLedger {
    /// New, empty ledger without telemetry mirroring.
    pub fn new() -> Self {
        Self::default()
    }

    /// New ledger that mirrors every record into `recorder`'s metrics
    /// registry (no-op when the recorder is disabled).
    pub fn with_recorder(recorder: &Recorder) -> Self {
        TransferLedger {
            mirror: recorder.is_enabled().then(|| Mirror::new(recorder)),
            ..Self::default()
        }
    }

    /// Like [`TransferLedger::with_recorder`], additionally tapping every
    /// record through `observer` ([`crate::fault::FaultHooks::on_transfer`]) so a
    /// chaos harness can cross-check accounting totals.
    pub fn with_observer(recorder: &Recorder, observer: FaultInjector) -> Self {
        TransferLedger {
            mirror: recorder.is_enabled().then(|| Mirror::new(recorder)),
            observer,
            ..Self::default()
        }
    }

    /// Record `bytes` of traffic for application `app`.
    pub fn record(&self, app: u32, class: TrafficClass, locality: Locality, bytes: u64) {
        self.record_repeated(app, class, locality, bytes, 1);
    }

    /// Record `times` identical transfers of `bytes` each in one call.
    ///
    /// The modeled executor uses this for per-iteration flows: byte totals
    /// and transfer counts come out identical to `times` separate
    /// [`TransferLedger::record`] calls, without the per-call overhead at
    /// paper scale.
    pub fn record_repeated(
        &self,
        app: u32,
        class: TrafficClass,
        locality: Locality,
        bytes: u64,
        times: u64,
    ) {
        if bytes == 0 || times == 0 {
            return;
        }
        let total = bytes * times;
        match locality {
            Locality::SharedMemory => &self.shm[class.idx()],
            Locality::Network => &self.net[class.idx()],
        }
        .fetch_add(total, Ordering::Relaxed);
        *self
            .per_app
            .lock()
            .unwrap()
            .entry((app, class, locality))
            .or_insert(0) += total;
        if let Some(mirror) = &self.mirror {
            mirror.bytes[class.idx()][locality.idx()].add(total);
            mirror.transfers[class.idx()][locality.idx()].add(times);
        }
        self.observer.on_transfer(class, locality, total);
    }

    /// Immutable snapshot of all counters.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            shm: std::array::from_fn(|i| self.shm[i].load(Ordering::Relaxed)),
            net: std::array::from_fn(|i| self.net[i].load(Ordering::Relaxed)),
            per_app: self.per_app.lock().unwrap().clone(),
        }
    }

    /// Reset every counter to zero.
    ///
    /// Mirrored telemetry counters are monotonic and are *not* reset; a
    /// run that resets the ledger should use a fresh recorder as well.
    pub fn reset(&self) {
        for a in &self.shm {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.net {
            a.store(0, Ordering::Relaxed);
        }
        self.per_app.lock().unwrap().clear();
    }
}

/// A point-in-time copy of a [`TransferLedger`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    shm: [u64; 4],
    net: [u64; 4],
    per_app: BTreeMap<(u32, TrafficClass, Locality), u64>,
}

impl LedgerSnapshot {
    /// Reassemble a snapshot from its serialized parts (wire decode of a
    /// remote execution client's report). The inverse of walking
    /// [`LedgerSnapshot::shm_bytes`]/[`LedgerSnapshot::network_bytes`] per
    /// class and [`LedgerSnapshot::per_app`].
    pub fn from_parts(
        shm: [u64; 4],
        net: [u64; 4],
        per_app: impl IntoIterator<Item = (u32, TrafficClass, Locality, u64)>,
    ) -> LedgerSnapshot {
        let mut map = BTreeMap::new();
        for (app, class, loc, bytes) in per_app {
            *map.entry((app, class, loc)).or_insert(0) += bytes;
        }
        LedgerSnapshot {
            shm,
            net,
            per_app: map,
        }
    }

    /// Every per-application cell, in deterministic (app, class, locality)
    /// order.
    pub fn per_app(&self) -> impl Iterator<Item = (u32, TrafficClass, Locality, u64)> + '_ {
        self.per_app
            .iter()
            .map(|(&(app, class, loc), &bytes)| (app, class, loc, bytes))
    }

    /// Raw shared-memory totals in [`TrafficClass::idx`] order (wire
    /// encoding of reports).
    pub fn shm_cells(&self) -> [u64; 4] {
        self.shm
    }

    /// Raw network totals in [`TrafficClass::idx`] order (wire encoding of
    /// reports).
    pub fn net_cells(&self) -> [u64; 4] {
        self.net
    }

    /// Fold another snapshot into this one, cell by cell.
    ///
    /// The distributed runtime accounts every logical transfer exactly
    /// once, in the process that initiates it; summing the per-process
    /// snapshots therefore reconstructs the single-address-space ledger
    /// exactly (byte-identical, not approximately).
    pub fn merge(&mut self, other: &LedgerSnapshot) {
        for i in 0..4 {
            self.shm[i] += other.shm[i];
            self.net[i] += other.net[i];
        }
        for (key, bytes) in &other.per_app {
            *self.per_app.entry(*key).or_insert(0) += bytes;
        }
    }

    /// Canonical JSON rendering (stable field order), used by the
    /// distributed launcher to publish the merged ledger as an artifact.
    pub fn to_json(&self) -> insitu_telemetry::Json {
        use insitu_telemetry::Json;
        let mut cells = Json::obj();
        for class in TrafficClass::ALL {
            for loc in Locality::ALL {
                let bytes = match loc {
                    Locality::SharedMemory => self.shm[class.idx()],
                    Locality::Network => self.net[class.idx()],
                };
                cells = cells.field(&format!("{}.{}", class.slug(), loc.slug()), bytes);
            }
        }
        let per_app = Json::Arr(
            self.per_app()
                .map(|(app, class, loc, bytes)| {
                    Json::obj()
                        .field("app", app as u64)
                        .field("class", class.slug())
                        .field("locality", loc.slug())
                        .field("bytes", bytes)
                })
                .collect(),
        );
        Json::obj()
            .field("bytes", cells)
            .field("per_app", per_app)
            .field("shm_total", self.shm_total())
            .field("network_total", self.network_total())
    }
    /// Bytes of `class` served from shared memory.
    pub fn shm_bytes(&self, class: TrafficClass) -> u64 {
        self.shm[class.idx()]
    }

    /// Bytes of `class` sent over the network.
    pub fn network_bytes(&self, class: TrafficClass) -> u64 {
        self.net[class.idx()]
    }

    /// Total bytes of `class` regardless of locality.
    pub fn total_bytes(&self, class: TrafficClass) -> u64 {
        self.shm_bytes(class) + self.network_bytes(class)
    }

    /// All network bytes across classes.
    pub fn network_total(&self) -> u64 {
        TrafficClass::ALL
            .iter()
            .map(|&c| self.network_bytes(c))
            .sum()
    }

    /// All shared-memory bytes across classes.
    pub fn shm_total(&self) -> u64 {
        TrafficClass::ALL.iter().map(|&c| self.shm_bytes(c)).sum()
    }

    /// Bytes recorded for one application, class and locality.
    pub fn app_bytes(&self, app: u32, class: TrafficClass, locality: Locality) -> u64 {
        self.per_app
            .get(&(app, class, locality))
            .copied()
            .unwrap_or(0)
    }

    /// Fraction of `class` bytes that crossed the network (0 when no
    /// traffic of the class occurred).
    pub fn network_fraction(&self, class: TrafficClass) -> f64 {
        let total = self.total_bytes(class);
        if total == 0 {
            0.0
        } else {
            self.network_bytes(class) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::InterApp, Locality::Network, 100);
        l.record(1, TrafficClass::InterApp, Locality::SharedMemory, 50);
        l.record(2, TrafficClass::IntraApp, Locality::Network, 7);
        let s = l.snapshot();
        assert_eq!(s.network_bytes(TrafficClass::InterApp), 100);
        assert_eq!(s.shm_bytes(TrafficClass::InterApp), 50);
        assert_eq!(s.total_bytes(TrafficClass::InterApp), 150);
        assert_eq!(s.network_bytes(TrafficClass::IntraApp), 7);
        assert_eq!(s.network_total(), 107);
        assert_eq!(s.shm_total(), 50);
    }

    #[test]
    fn per_app_breakdown() {
        let l = TransferLedger::new();
        l.record(3, TrafficClass::IntraApp, Locality::Network, 10);
        l.record(3, TrafficClass::IntraApp, Locality::Network, 5);
        l.record(4, TrafficClass::IntraApp, Locality::SharedMemory, 2);
        let s = l.snapshot();
        assert_eq!(
            s.app_bytes(3, TrafficClass::IntraApp, Locality::Network),
            15
        );
        assert_eq!(
            s.app_bytes(4, TrafficClass::IntraApp, Locality::SharedMemory),
            2
        );
        assert_eq!(s.app_bytes(9, TrafficClass::IntraApp, Locality::Network), 0);
    }

    #[test]
    fn zero_byte_records_ignored() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::Dht, Locality::Network, 0);
        assert_eq!(l.snapshot().network_total(), 0);
    }

    #[test]
    fn network_fraction() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::InterApp, Locality::Network, 20);
        l.record(1, TrafficClass::InterApp, Locality::SharedMemory, 80);
        let s = l.snapshot();
        assert!((s.network_fraction(TrafficClass::InterApp) - 0.2).abs() < 1e-12);
        assert_eq!(s.network_fraction(TrafficClass::Control), 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::Control, Locality::Network, 9);
        l.reset();
        let s = l.snapshot();
        assert_eq!(s.network_total(), 0);
        assert_eq!(s.app_bytes(1, TrafficClass::Control, Locality::Network), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let l = Arc::new(TransferLedger::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record(t, TrafficClass::InterApp, Locality::Network, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = l.snapshot();
        assert_eq!(s.network_bytes(TrafficClass::InterApp), 8 * 1000 * 3);
        for t in 0..8 {
            assert_eq!(
                s.app_bytes(t, TrafficClass::InterApp, Locality::Network),
                3000
            );
        }
    }

    #[test]
    fn recorder_mirror_matches_ledger() {
        let rec = Recorder::enabled();
        let l = TransferLedger::with_recorder(&rec);
        l.record(1, TrafficClass::InterApp, Locality::Network, 100);
        l.record(1, TrafficClass::InterApp, Locality::Network, 50);
        l.record(2, TrafficClass::Dht, Locality::SharedMemory, 64);
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("fabric.bytes.inter_app.net"), 150);
        assert_eq!(snap.counter("fabric.transfers.inter_app.net"), 2);
        assert_eq!(snap.counter("fabric.bytes.dht.shm"), 64);
        assert_eq!(snap.counter("fabric.transfers.dht.shm"), 1);
        assert_eq!(snap.counter("fabric.bytes.control.net"), 0);
    }

    #[test]
    fn record_repeated_equivalent_to_loop() {
        let rec = Recorder::enabled();
        let l = TransferLedger::with_recorder(&rec);
        l.record_repeated(1, TrafficClass::IntraApp, Locality::Network, 32, 5);
        let s = l.snapshot();
        assert_eq!(s.network_bytes(TrafficClass::IntraApp), 160);
        assert_eq!(
            s.app_bytes(1, TrafficClass::IntraApp, Locality::Network),
            160
        );
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("fabric.bytes.intra_app.net"), 160);
        assert_eq!(snap.counter("fabric.transfers.intra_app.net"), 5);
    }

    #[test]
    fn snapshot_parts_round_trip() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::InterApp, Locality::Network, 100);
        l.record(2, TrafficClass::Dht, Locality::SharedMemory, 64);
        l.record(2, TrafficClass::Control, Locality::Network, 12);
        let s = l.snapshot();
        let rebuilt = LedgerSnapshot::from_parts(s.shm_cells(), s.net_cells(), s.per_app());
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn class_and_locality_idx_round_trip() {
        for class in TrafficClass::ALL {
            assert_eq!(TrafficClass::from_idx(class.idx()), Some(class));
        }
        for loc in Locality::ALL {
            assert_eq!(Locality::from_idx(loc.idx()), Some(loc));
        }
        assert_eq!(TrafficClass::from_idx(4), None);
        assert_eq!(Locality::from_idx(2), None);
    }

    #[test]
    fn merge_sums_every_cell() {
        let a = TransferLedger::new();
        a.record(1, TrafficClass::InterApp, Locality::Network, 100);
        a.record(1, TrafficClass::IntraApp, Locality::SharedMemory, 7);
        let b = TransferLedger::new();
        b.record(1, TrafficClass::InterApp, Locality::Network, 50);
        b.record(3, TrafficClass::Dht, Locality::Network, 64);
        // A ledger that saw every transfer itself.
        let whole = TransferLedger::new();
        whole.record(1, TrafficClass::InterApp, Locality::Network, 100);
        whole.record(1, TrafficClass::IntraApp, Locality::SharedMemory, 7);
        whole.record(1, TrafficClass::InterApp, Locality::Network, 50);
        whole.record(3, TrafficClass::Dht, Locality::Network, 64);
        let mut merged = LedgerSnapshot::default();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn json_rendering_is_exact_and_parseable() {
        let l = TransferLedger::new();
        l.record(1, TrafficClass::InterApp, Locality::Network, u64::MAX / 2);
        let doc = insitu_telemetry::Json::parse(&l.snapshot().to_json().render()).unwrap();
        let cells = doc.get("bytes").unwrap();
        assert_eq!(
            cells.get("inter_app.net").and_then(|v| v.as_u64()),
            Some(u64::MAX / 2)
        );
        assert_eq!(
            doc.get("network_total").and_then(|v| v.as_u64()),
            Some(u64::MAX / 2)
        );
    }

    #[test]
    fn disabled_recorder_mirror_is_skipped() {
        let rec = Recorder::disabled();
        let l = TransferLedger::with_recorder(&rec);
        l.record(1, TrafficClass::InterApp, Locality::Network, 10);
        assert_eq!(l.snapshot().network_total(), 10);
        assert!(rec.metrics_snapshot().counters.is_empty());
    }
}
