//! Simulated multicore HPC platform.
//!
//! This crate substitutes for the paper's Jaguar Cray XT5 testbed. It
//! provides:
//!
//! * [`MachineSpec`] / [`Placement`] — nodes × cores and the mapping from
//!   execution clients to cores (the *output* of a task-mapping strategy);
//! * [`TransferLedger`] — thread-safe byte accounting classified by
//!   traffic class, application and locality (shared memory vs network),
//!   the measured quantity of Figs. 8, 9 and 12–15;
//! * [`TorusTopology`] — SeaStar2+-style 3-D torus with dimension-ordered
//!   routing, used for link-contention accounting;
//! * [`NetworkModel`] / [`estimate_retrieve_times`] — the analytic time
//!   model that stands in for wall-clock measurements on the Cray
//!   (Figs. 11 and 16).

#![warn(missing_docs)]

pub mod fault;
pub mod ledger;
pub mod machine;
pub mod timemodel;
pub mod torus;

pub use fault::{FaultAction, FaultHooks, FaultInjector, NetOp};
pub use ledger::{LedgerSnapshot, Locality, TrafficClass, TransferLedger};
pub use machine::{ClientId, CoreId, MachineSpec, NodeId, Placement};
pub use timemodel::{
    estimate_file_coupling_time, estimate_retrieve_breakdowns_faulted,
    estimate_retrieve_slots_faulted, estimate_retrieve_times, estimate_retrieve_times_faulted,
    ClientRetrieve, FilesystemModel, LinkFaults, NetworkModel, RetrieveBreakdown, Transfer,
    TransferSlot,
};
pub use torus::{LinkId, TorusTopology};
