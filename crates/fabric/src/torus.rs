//! 3-D torus interconnect topology with dimension-ordered routing.
//!
//! Jaguar XT5's SeaStar2+ routers form a 3-D torus. The time model uses
//! the torus to account for link sharing: concurrent flows whose
//! dimension-ordered routes traverse the same directed link contend for
//! its bandwidth, which is what produces the gentle growth of retrieve
//! time under weak scaling (Fig. 16).

use crate::machine::NodeId;

/// A directed torus link, identified by its source node, dimension and
/// direction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId {
    /// Node the link leaves from.
    pub from: NodeId,
    /// Torus dimension (0, 1 or 2).
    pub dim: u8,
    /// `true` for the positive direction.
    pub plus: bool,
}

/// A 3-D torus over `dims[0] * dims[1] * dims[2]` nodes.
#[derive(Clone, Copy, Debug)]
pub struct TorusTopology {
    dims: [u32; 3],
}

impl TorusTopology {
    /// Create a torus with the given dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(dims: [u32; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "torus dims must be positive");
        TorusTopology { dims }
    }

    /// A roughly cubic torus covering at least `nodes` nodes.
    pub fn cubic_for(nodes: u32) -> Self {
        let mut d = [1u32; 3];
        let mut i = 0;
        while d[0] * d[1] * d[2] < nodes {
            d[i] += 1;
            i = (i + 1) % 3;
        }
        TorusTopology::new(d)
    }

    /// Torus dimensions.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Coordinates of `node` (row-major, z fastest).
    pub fn coords_of(&self, node: NodeId) -> [u32; 3] {
        assert!(node < self.num_nodes(), "node out of range");
        let z = node % self.dims[2];
        let y = (node / self.dims[2]) % self.dims[1];
        let x = node / (self.dims[2] * self.dims[1]);
        [x, y, z]
    }

    /// Node at coordinates.
    pub fn node_of(&self, c: [u32; 3]) -> NodeId {
        debug_assert!((0..3).all(|d| c[d] < self.dims[d]));
        (c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]
    }

    /// Number of hops of the dimension-ordered route from `a` to `b`
    /// (shortest direction around each ring).
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let ca = self.coords_of(a);
        let cb = self.coords_of(b);
        (0..3)
            .map(|d| {
                let fwd = (cb[d] + self.dims[d] - ca[d]) % self.dims[d];
                fwd.min(self.dims[d] - fwd)
            })
            .sum()
    }

    /// The directed links of the dimension-ordered (x, then y, then z)
    /// route from `a` to `b`, taking the shorter way around each ring.
    /// Empty when `a == b`.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<LinkId> {
        let mut cur = self.coords_of(a);
        let target = self.coords_of(b);
        let mut links = Vec::new();
        for d in 0..3usize {
            let n = self.dims[d];
            let fwd = (target[d] + n - cur[d]) % n;
            let bwd = n - fwd;
            let (steps, plus) = if fwd == 0 {
                (0, true)
            } else if fwd <= bwd {
                (fwd, true)
            } else {
                (bwd, false)
            };
            for _ in 0..steps {
                links.push(LinkId {
                    from: self.node_of(cur),
                    dim: d as u8,
                    plus,
                });
                cur[d] = if plus {
                    (cur[d] + 1) % n
                } else {
                    (cur[d] + n - 1) % n
                };
            }
        }
        debug_assert_eq!(cur, target);
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = TorusTopology::new([3, 4, 5]);
        for n in 0..t.num_nodes() {
            assert_eq!(t.node_of(t.coords_of(n)), n);
        }
    }

    #[test]
    fn cubic_for_covers() {
        for n in [1u32, 7, 48, 100, 769] {
            let t = TorusTopology::cubic_for(n);
            assert!(t.num_nodes() >= n);
            // Roughly cubic: dims within 1 step of each other.
            let d = t.dims();
            assert!(d.iter().max().unwrap() - d.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn self_route_is_empty() {
        let t = TorusTopology::new([2, 2, 2]);
        assert!(t.route(3, 3).is_empty());
        assert_eq!(t.hop_distance(3, 3), 0);
    }

    #[test]
    fn route_length_matches_hop_distance() {
        let t = TorusTopology::new([3, 3, 3]);
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.route(a, b).len() as u32, t.hop_distance(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn wraparound_shortens_route() {
        // Ring of 4 in x: 0 -> 3 is one hop backwards, not 3 forwards.
        let t = TorusTopology::new([4, 1, 1]);
        assert_eq!(t.hop_distance(0, 3), 1);
        let r = t.route(0, 3);
        assert_eq!(r.len(), 1);
        assert!(!r[0].plus);
    }

    #[test]
    fn neighbors_are_one_hop() {
        let t = TorusTopology::new([4, 4, 4]);
        let a = t.node_of([1, 2, 3]);
        let b = t.node_of([1, 2, 0]); // z wraps 3 -> 0
        assert_eq!(t.hop_distance(a, b), 1);
    }

    #[test]
    fn route_links_form_contiguous_path() {
        let t = TorusTopology::new([4, 4, 2]);
        let a = t.node_of([0, 1, 0]);
        let b = t.node_of([3, 2, 1]);
        let links = t.route(a, b);
        // First link must leave `a`.
        assert_eq!(links[0].from, a);
        // Hop count: x 0->3 is 1 (wrap), y 1->2 is 1, z 0->1 is 1.
        assert_eq!(links.len(), 3);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn rejects_bad_node() {
        TorusTopology::new([2, 2, 2]).coords_of(8);
    }
}
