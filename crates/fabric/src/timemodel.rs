//! Analytic transfer-time model.
//!
//! We do not have a Cray to measure on, so retrieve times (Figs. 11 and
//! 16) come from an explicit cost model over the *measured* transfer sets:
//! per-message latency, bandwidth serialization at the destination NIC,
//! per-source fan-out sharing at the source NIC, and contention on shared
//! torus links along dimension-ordered routes. The model's constants are
//! order-of-magnitude Jaguar-class values; the experiments only rely on
//! the *shape* it produces (shared memory ≪ network; contention grows
//! mildly with scale).

use crate::machine::NodeId;
use crate::torus::TorusTopology;
use std::collections::HashMap;

/// Bandwidth/latency constants of the simulated platform.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way network message latency, microseconds.
    pub net_latency_us: f64,
    /// Node injection/ejection (NIC) bandwidth, GB/s.
    pub nic_bandwidth_gbps: f64,
    /// Per torus link bandwidth, GB/s.
    pub link_bandwidth_gbps: f64,
    /// Shared-memory transfer startup latency, microseconds.
    pub shm_latency_us: f64,
    /// Shared-memory copy bandwidth, GB/s.
    pub shm_bandwidth_gbps: f64,
    /// Round-trip cost of one DHT span query, microseconds.
    pub dht_query_us: f64,
}

impl NetworkModel {
    /// Jaguar-class constants (SeaStar2+ era).
    pub fn jaguar() -> Self {
        NetworkModel {
            net_latency_us: 6.0,
            nic_bandwidth_gbps: 1.6,
            link_bandwidth_gbps: 3.0,
            shm_latency_us: 0.5,
            shm_bandwidth_gbps: 4.0,
            dht_query_us: 12.0,
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::jaguar()
    }
}

/// One data pull: `bytes` fetched from `src_node` (the destination is the
/// owning [`ClientRetrieve`]'s node).
#[derive(Clone, Copy, Debug)]
pub struct Transfer {
    /// Node the data is pulled from.
    pub src_node: NodeId,
    /// Payload size.
    pub bytes: u64,
    /// Microseconds after the retrieve is issued at which the source
    /// piece becomes available (its producer's `put` completes). Zero
    /// means already staged. The receiver-driven executor issues every
    /// pull up front and overlaps the waits, so a late piece delays only
    /// its own copy, not the whole retrieve.
    pub ready_us: u64,
}

impl Transfer {
    /// A pull of `bytes` from `src_node`, available immediately.
    pub fn new(src_node: NodeId, bytes: u64) -> Self {
        Transfer {
            src_node,
            bytes,
            ready_us: 0,
        }
    }

    /// A pull whose source piece only becomes available `ready_us`
    /// microseconds after the retrieve is issued.
    pub fn ready_at(src_node: NodeId, bytes: u64, ready_us: u64) -> Self {
        Transfer {
            src_node,
            bytes,
            ready_us,
        }
    }
}

/// All pulls one execution client issues for a `get()`.
#[derive(Clone, Debug)]
pub struct ClientRetrieve {
    /// Node the pulling client runs on.
    pub dst_node: NodeId,
    /// The pulls (receiver-driven, issued in parallel).
    pub transfers: Vec<Transfer>,
    /// Number of DHT span queries needed to plan the pulls (0 when the
    /// communication schedule was cached).
    pub dht_queries: u32,
}

/// Per-link bandwidth degradation factors for fault modeling: a slowed
/// link divides its bandwidth by the given factor (≥ 1). Links not listed
/// run at full speed, so the default (empty) value models a healthy torus.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkFaults {
    slow: HashMap<(NodeId, u8, bool), f64>,
}

impl LinkFaults {
    /// A healthy torus: no slowed links.
    pub fn new() -> Self {
        Self::default()
    }

    /// Degrade one directed link's bandwidth by `factor` (clamped to
    /// ≥ 1). Repeated calls on the same link keep the worst factor.
    pub fn slow_link(&mut self, from: NodeId, dim: u8, plus: bool, factor: f64) {
        let f = factor.max(1.0);
        let e = self.slow.entry((from, dim, plus)).or_insert(1.0);
        *e = e.max(f);
    }

    /// The degradation factor of one directed link (1 when healthy).
    pub fn factor(&self, from: NodeId, dim: u8, plus: bool) -> f64 {
        self.slow.get(&(from, dim, plus)).copied().unwrap_or(1.0)
    }

    /// Number of slowed links.
    pub fn len(&self) -> usize {
        self.slow.len()
    }

    /// Whether no link is slowed.
    pub fn is_empty(&self) -> bool {
        self.slow.is_empty()
    }
}

/// Component times of one modeled retrieve, all in milliseconds. The
/// completion time composes as `query + max(shm, net)`: the client
/// copies local data itself while remote pulls proceed in parallel, so
/// only the slower branch is on the critical path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RetrieveBreakdown {
    /// DHT schedule-query time.
    pub query_ms: f64,
    /// Serialized shared-memory branch time (copies plus any stalls
    /// waiting for late pieces).
    pub shm_ms: f64,
    /// Network branch time (worst flow vs NIC serialization, including
    /// piece-readiness stalls).
    pub net_ms: f64,
    /// Completion time: `query + max(shm, net)`.
    pub total_ms: f64,
}

/// Modeled timeline of one transfer inside its retrieve, microseconds
/// relative to the end of the schedule query. The receiver issues every
/// pull up front; `wait_us` is the idle span before this one's copy
/// begins (waiting for the piece to be produced and, for shared memory,
/// for earlier copies in the per-core chain) and `duration_us` the busy
/// copy itself. Concurrent transfers overlap, so the retrieve's branch
/// time is the max of slot ends, not their sum.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransferSlot {
    /// Idle microseconds before this transfer's copy starts.
    pub wait_us: f64,
    /// Busy copy microseconds.
    pub duration_us: f64,
    /// Shared-memory (true) or network (false) transfer.
    pub shm: bool,
}

impl TransferSlot {
    /// When the transfer completes, relative to the branch start.
    pub fn end_us(&self) -> f64 {
        self.wait_us + self.duration_us
    }
}

/// Estimated completion time (milliseconds) of each client's retrieve,
/// assuming all clients start simultaneously — the paper's "time to
/// retrieve coupled data" metric is the per-application maximum of these.
pub fn estimate_retrieve_times(
    model: &NetworkModel,
    topo: &TorusTopology,
    retrieves: &[ClientRetrieve],
) -> Vec<f64> {
    estimate_retrieve_times_faulted(model, topo, retrieves, &LinkFaults::default())
}

/// [`estimate_retrieve_times`] under injected torus-link slowdowns: each
/// flow's effective bandwidth additionally divides by the worst
/// [`LinkFaults::factor`] along its dimension-ordered route. With an empty
/// `faults` this is bit-for-bit identical to the healthy estimate.
pub fn estimate_retrieve_times_faulted(
    model: &NetworkModel,
    topo: &TorusTopology,
    retrieves: &[ClientRetrieve],
    faults: &LinkFaults,
) -> Vec<f64> {
    estimate_retrieve_breakdowns_faulted(model, topo, retrieves, faults)
        .into_iter()
        .map(|b| b.total_ms)
        .collect()
}

/// Per-retrieve component times under injected link faults; the
/// critical-path profiler uses these to attribute modeled retrieves to
/// schedule / shm / RDMA categories with the model's own arithmetic.
pub fn estimate_retrieve_breakdowns_faulted(
    model: &NetworkModel,
    topo: &TorusTopology,
    retrieves: &[ClientRetrieve],
    faults: &LinkFaults,
) -> Vec<RetrieveBreakdown> {
    estimate_retrieve_slots_faulted(model, topo, retrieves, faults)
        .into_iter()
        .map(|(b, _)| b)
        .collect()
}

/// [`estimate_retrieve_breakdowns_faulted`] plus the per-transfer
/// timeline each breakdown composes from. Slots align one-to-one with
/// the retrieve's `transfers` (zero-byte entries get an all-zero slot).
///
/// This is where the overlapped receiver-driven pull semantics live:
/// all pulls are issued together, shared-memory copies serialize on the
/// destination core in piece-readiness order, network flows run
/// concurrently (each ending at `ready + latency + bytes/eff_bw`, with
/// the slowest stretched to when the destination NIC drains), and the
/// branch time is the max of slot ends rather than their sum.
pub fn estimate_retrieve_slots_faulted(
    model: &NetworkModel,
    topo: &TorusTopology,
    retrieves: &[ClientRetrieve],
    faults: &LinkFaults,
) -> Vec<(RetrieveBreakdown, Vec<TransferSlot>)> {
    // Pass 1: global contention state.
    let mut link_sharers: HashMap<(NodeId, u8, bool), u32> = HashMap::new();
    let mut src_outflows: HashMap<NodeId, u32> = HashMap::new();
    for r in retrieves {
        for t in &r.transfers {
            if t.src_node == r.dst_node || t.bytes == 0 {
                continue;
            }
            *src_outflows.entry(t.src_node).or_insert(0) += 1;
            for l in topo.route(t.src_node, r.dst_node) {
                *link_sharers.entry((l.from, l.dim, l.plus)).or_insert(0) += 1;
            }
        }
    }

    let gbps = |g: f64| g * 1e9; // bytes per second
    let to_us = 1e6; // seconds -> microseconds

    // Pass 2: per-client completion.
    retrieves
        .iter()
        .map(|r| {
            let mut slots = vec![TransferSlot::default(); r.transfers.len()];

            // Shared-memory copies serialize on the destination core, in
            // the order pieces become available; a late piece stalls the
            // chain only once every earlier copy has drained.
            let mut shm_idx: Vec<usize> = (0..r.transfers.len())
                .filter(|&i| r.transfers[i].src_node == r.dst_node && r.transfers[i].bytes > 0)
                .collect();
            shm_idx.sort_by_key(|&i| r.transfers[i].ready_us);
            let mut cursor = 0.0f64;
            for &i in &shm_idx {
                let t = &r.transfers[i];
                let start = cursor.max(t.ready_us as f64);
                let dur =
                    model.shm_latency_us + t.bytes as f64 / gbps(model.shm_bandwidth_gbps) * to_us;
                slots[i] = TransferSlot {
                    wait_us: start,
                    duration_us: dur,
                    shm: true,
                };
                cursor = start + dur;
            }
            let shm_end = cursor;

            // Network flows run concurrently; the destination NIC
            // serializes inbound bytes from the moment the first piece is
            // ready, and the slowest flow is stretched to that drain time.
            let mut net_bytes = 0u64;
            let mut min_ready = f64::INFINITY;
            let mut worst: Option<usize> = None;
            for (i, t) in r.transfers.iter().enumerate() {
                if t.src_node == r.dst_node || t.bytes == 0 {
                    continue;
                }
                net_bytes += t.bytes;
                min_ready = min_ready.min(t.ready_us as f64);
                // Slowest shared resource along the path. A link's cost
                // is its sharer count scaled by any injected slowdown
                // (factor 1 when healthy).
                let mut worst_link = 1.0f64;
                for l in topo.route(t.src_node, r.dst_node) {
                    let cost = link_sharers[&(l.from, l.dim, l.plus)] as f64
                        * faults.factor(l.from, l.dim, l.plus);
                    worst_link = worst_link.max(cost);
                }
                let src_n = src_outflows[&t.src_node].max(1);
                let eff_bw = (gbps(model.nic_bandwidth_gbps) / src_n as f64)
                    .min(gbps(model.link_bandwidth_gbps) / worst_link)
                    .min(gbps(model.nic_bandwidth_gbps));
                let dur = model.net_latency_us + t.bytes as f64 / eff_bw * to_us;
                slots[i] = TransferSlot {
                    wait_us: t.ready_us as f64,
                    duration_us: dur,
                    shm: false,
                };
                if worst.is_none_or(|w| slots[i].end_us() > slots[w].end_us()) {
                    worst = Some(i);
                }
            }
            let net_end = if let Some(w) = worst {
                let nic_drain =
                    min_ready + net_bytes as f64 / gbps(model.nic_bandwidth_gbps) * to_us;
                let end = slots[w].end_us().max(nic_drain);
                slots[w].duration_us = end - slots[w].wait_us;
                end
            } else {
                0.0
            };

            let query_ms = r.dht_queries as f64 * model.dht_query_us * 1e-3;
            let shm_ms = shm_end * 1e-3;
            let net_ms = net_end * 1e-3;
            (
                RetrieveBreakdown {
                    query_ms,
                    shm_ms,
                    net_ms,
                    total_ms: query_ms + shm_ms.max(net_ms),
                },
                slots,
            )
        })
        .collect()
}

/// Parallel-filesystem constants for the *file-based coupling baseline* —
/// the Pegasus/Kepler-style data sharing the paper's Related Work
/// contrasts with CoDS ("data sharing between the different component
/// applications are usually performed by reading data files stored in the
/// distributed file systems").
#[derive(Clone, Copy, Debug)]
pub struct FilesystemModel {
    /// Aggregate parallel-filesystem bandwidth shared by all clients, GB/s.
    pub aggregate_bandwidth_gbps: f64,
    /// Metadata/open/close latency per file operation, milliseconds.
    pub op_latency_ms: f64,
    /// Metadata operations the filesystem can service concurrently.
    pub metadata_concurrency: u32,
}

impl FilesystemModel {
    /// Jaguar-era Spider/Lustre-class constants (center-wide filesystem,
    /// shared by the whole machine — a single job sees a slice).
    pub fn jaguar_spider() -> Self {
        FilesystemModel {
            aggregate_bandwidth_gbps: 60.0,
            op_latency_ms: 5.0,
            metadata_concurrency: 64,
        }
    }
}

impl Default for FilesystemModel {
    fn default() -> Self {
        Self::jaguar_spider()
    }
}

/// Time (ms) for one file-based coupling round: every producer writes its
/// output file, then every consumer reads what it needs. Both phases are
/// bandwidth-shared across the aggregate filesystem and pay metadata
/// latency serialized over the metadata servers. `read_bytes` may exceed
/// `write_bytes` when several consumers read the same data (the paper's
/// SAP2+SAP3 scenario reads everything twice).
pub fn estimate_file_coupling_time(
    fs: &FilesystemModel,
    write_bytes: u64,
    writer_files: u32,
    read_bytes: u64,
    reader_files: u32,
) -> f64 {
    let bw = fs.aggregate_bandwidth_gbps * 1e9;
    let md =
        |files: u32| fs.op_latency_ms * (files.div_ceil(fs.metadata_concurrency.max(1))) as f64;
    let write_ms = md(writer_files) + write_bytes as f64 / bw * 1e3;
    let read_ms = md(reader_files) + read_bytes as f64 / bw * 1e3;
    write_ms + read_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> TorusTopology {
        TorusTopology::new([4, 4, 4])
    }

    #[test]
    fn file_coupling_scales_with_bytes_and_files() {
        let fs = FilesystemModel::jaguar_spider();
        let small = estimate_file_coupling_time(&fs, 1 << 30, 512, 1 << 30, 64);
        let big = estimate_file_coupling_time(&fs, 8 << 30, 512, 8 << 30, 64);
        assert!(big > small * 4.0);
        // More files -> more metadata time at equal bytes.
        let few = estimate_file_coupling_time(&fs, 1 << 30, 64, 1 << 30, 64);
        let many = estimate_file_coupling_time(&fs, 1 << 30, 8192, 1 << 30, 64);
        assert!(many > few);
    }

    #[test]
    fn file_coupling_far_slower_than_memory_for_paper_config() {
        // The paper's Related Work claim, quantified: 8 GiB coupled data
        // through the filesystem vs the in-memory path.
        let fs = FilesystemModel::jaguar_spider();
        let file_ms = estimate_file_coupling_time(&fs, 8 << 30, 512, 8 << 30, 64);
        // In-memory, in-situ mix (the data-centric mapping's ~80% local
        // fraction): 64 consumers each pull 128 MiB, 80% from their own
        // node and the rest over the network.
        let m = NetworkModel::jaguar();
        let t = TorusTopology::cubic_for(48);
        let retrieves: Vec<ClientRetrieve> = (0..64u32)
            .map(|i| ClientRetrieve {
                dst_node: i % 48,
                transfers: vec![
                    Transfer::new(i % 48, 102 << 20),
                    Transfer::new((i + 7) % 48, 26 << 20),
                ],
                dht_queries: 2,
            })
            .collect();
        let mem_ms = estimate_retrieve_times(&m, &t, &retrieves)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            file_ms > 2.0 * mem_ms,
            "file {file_ms:.0} ms should dwarf memory {mem_ms:.0} ms"
        );
    }

    #[test]
    fn shared_memory_beats_network() {
        let m = NetworkModel::jaguar();
        let t = topo();
        let shm = ClientRetrieve {
            dst_node: 0,
            transfers: vec![Transfer::new(0, 16 << 20)],
            dht_queries: 0,
        };
        let net = ClientRetrieve {
            dst_node: 0,
            transfers: vec![Transfer::new(5, 16 << 20)],
            dht_queries: 0,
        };
        let times = estimate_retrieve_times(&m, &t, &[shm, net]);
        assert!(times[0] < times[1], "shm {} vs net {}", times[0], times[1]);
    }

    #[test]
    fn empty_retrieve_costs_only_queries() {
        let m = NetworkModel::jaguar();
        let times = estimate_retrieve_times(
            &m,
            &topo(),
            &[ClientRetrieve {
                dst_node: 0,
                transfers: vec![],
                dht_queries: 4,
            }],
        );
        let expect = 4.0 * m.dht_query_us * 1e-6 * 1e3;
        assert!((times[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn contention_slows_shared_links() {
        let m = NetworkModel::jaguar();
        let t = TorusTopology::new([8, 1, 1]);
        // One flow 0 -> 4.
        let solo = vec![ClientRetrieve {
            dst_node: 4,
            transfers: vec![Transfer::new(0, 64 << 20)],
            dht_queries: 0,
        }];
        // Eight flows all crossing the same ring segment.
        let crowded: Vec<ClientRetrieve> = (0..8)
            .map(|_| ClientRetrieve {
                dst_node: 4,
                transfers: vec![Transfer::new(0, 64 << 20)],
                dht_queries: 0,
            })
            .collect();
        let t_solo = estimate_retrieve_times(&m, &t, &solo)[0];
        let t_crowd = estimate_retrieve_times(&m, &t, &crowded)[0];
        assert!(t_crowd > t_solo * 2.0, "solo {t_solo} crowd {t_crowd}");
    }

    #[test]
    fn fanout_at_source_slows_flows() {
        let m = NetworkModel::jaguar();
        let t = topo();
        // One source serving 4 different destinations: each flow slower
        // than a dedicated source.
        let dedicated = vec![ClientRetrieve {
            dst_node: 1,
            transfers: vec![Transfer::new(0, 32 << 20)],
            dht_queries: 0,
        }];
        let fanout: Vec<ClientRetrieve> = [1u32, 2, 3, 5]
            .iter()
            .map(|&d| ClientRetrieve {
                dst_node: d,
                transfers: vec![Transfer::new(0, 32 << 20)],
                dht_queries: 0,
            })
            .collect();
        let td = estimate_retrieve_times(&m, &t, &dedicated)[0];
        let tf = estimate_retrieve_times(&m, &t, &fanout)[0];
        assert!(tf > td * 1.5, "dedicated {td} fanout {tf}");
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let m = NetworkModel::jaguar();
        let t = topo();
        let mk = |bytes| ClientRetrieve {
            dst_node: 2,
            transfers: vec![Transfer::new(7, bytes)],
            dht_queries: 1,
        };
        let a = estimate_retrieve_times(&m, &t, &[mk(1 << 20)])[0];
        let b = estimate_retrieve_times(&m, &t, &[mk(64 << 20)])[0];
        assert!(b > a * 10.0);
    }

    #[test]
    fn link_fault_slows_only_affected_routes() {
        let m = NetworkModel::jaguar();
        let t = TorusTopology::new([8, 1, 1]);
        let mk = |src: u32, dst: u32| ClientRetrieve {
            dst_node: dst,
            transfers: vec![Transfer::new(src, 64 << 20)],
            dht_queries: 0,
        };
        let retrieves = vec![mk(0, 2), mk(5, 6)];
        let healthy = estimate_retrieve_times(&m, &t, &retrieves);
        // Slow the 0->1 hop: only the first flow routes through it.
        let mut faults = LinkFaults::new();
        faults.slow_link(0, 0, true, 8.0);
        assert_eq!(faults.len(), 1);
        let faulted = estimate_retrieve_times_faulted(&m, &t, &retrieves, &faults);
        assert!(
            faulted[0] > healthy[0] * 2.0,
            "{} vs {}",
            faulted[0],
            healthy[0]
        );
        assert_eq!(faulted[1], healthy[1]);
    }

    #[test]
    fn empty_link_faults_match_healthy_estimate_exactly() {
        let m = NetworkModel::jaguar();
        let t = TorusTopology::cubic_for(12);
        let retrieves: Vec<ClientRetrieve> = (0..10u32)
            .map(|i| ClientRetrieve {
                dst_node: i % 12,
                transfers: vec![Transfer::new((i + 5) % 12, (i as u64 + 1) << 20)],
                dht_queries: i,
            })
            .collect();
        assert_eq!(
            estimate_retrieve_times(&m, &t, &retrieves),
            estimate_retrieve_times_faulted(&m, &t, &retrieves, &LinkFaults::new())
        );
    }

    #[test]
    fn breakdown_components_compose_to_total() {
        let m = NetworkModel::jaguar();
        let t = topo();
        let retrieves = vec![ClientRetrieve {
            dst_node: 0,
            transfers: vec![Transfer::new(0, 8 << 20), Transfer::new(5, 16 << 20)],
            dht_queries: 3,
        }];
        let b = estimate_retrieve_breakdowns_faulted(&m, &t, &retrieves, &LinkFaults::new())[0];
        assert!(b.query_ms > 0.0 && b.shm_ms > 0.0 && b.net_ms > 0.0);
        assert_eq!(b.total_ms, b.query_ms + b.shm_ms.max(b.net_ms));
        // Totals match the scalar estimate bit-for-bit.
        assert_eq!(estimate_retrieve_times(&m, &t, &retrieves)[0], b.total_ms);
    }

    #[test]
    fn zero_byte_transfers_ignored() {
        let m = NetworkModel::jaguar();
        let times = estimate_retrieve_times(
            &m,
            &topo(),
            &[ClientRetrieve {
                dst_node: 0,
                transfers: vec![Transfer::new(3, 0)],
                dht_queries: 0,
            }],
        );
        assert_eq!(times[0], 0.0);
    }
}
