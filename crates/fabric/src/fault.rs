//! Fault-injection hooks for chaos testing.
//!
//! The runtime layers (DART, CoDS, the ledger) consult a [`FaultInjector`]
//! at well-defined *fault sites*: buffer registration after a DHT insert,
//! receiver-driven pulls, DHT span queries and staging-memory accounting.
//! Production code paths carry a no-op injector ([`FaultInjector::none`])
//! whose every check is a branch on a `None`; the chaos harness
//! (`insitu-chaos`) installs a seed-driven [`FaultHooks`] implementation
//! so whole-workflow failure scenarios replay deterministically.

use crate::ledger::{Locality, TrafficClass};
use crate::machine::{ClientId, NodeId};
use std::sync::Arc;
use std::time::Duration;

/// What to do with an intercepted pull.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Let the operation proceed normally.
    Proceed,
    /// Fail the operation immediately (the transfer is lost).
    Drop,
    /// Delay the operation, then proceed.
    Delay(Duration),
}

/// Which wire operation a network fault site intercepts.
///
/// The wire transport (`insitu-net`) consults [`FaultHooks::on_net`] at
/// three sites: establishing a TCP connection, writing a frame, and
/// reading a frame. Control-plane frames are never offered to the hook by
/// the transport (dropping a dispatch or barrier frame models an
/// unreliable control plane, which the paper's management server does not
/// have); only data-plane pull payloads are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetOp {
    /// Establishing a connection to a peer.
    Connect,
    /// Writing a frame to a peer.
    Send,
    /// Reading a frame from a peer.
    Recv,
}

/// Decision points the runtime exposes to a fault plan.
///
/// Every method has a benign default so implementors only override the
/// faults they model. Implementations must be deterministic functions of
/// their arguments (plus the plan's seed): the runtime may invoke them
/// from any thread, in any order, any number of times per site.
pub trait FaultHooks: Send + Sync {
    /// `true` simulates a producer that crashed between its DHT insert and
    /// its buffer registration: the location is advertised but the payload
    /// never lands in staging.
    fn dead_producer(&self, var: u64, version: u64, owner: ClientId, piece: u64) -> bool {
        let _ = (var, version, owner, piece);
        false
    }

    /// Intercept a receiver-driven pull of one buffer.
    fn on_pull(&self, name: u64, version: u64, piece: u64) -> FaultAction {
        let _ = (name, version, piece);
        FaultAction::Proceed
    }

    /// `true` blacks out one DHT core: span queries skip it as if the
    /// core were unreachable.
    fn dht_core_down(&self, core: usize) -> bool {
        let _ = core;
        false
    }

    /// `true` makes `node`'s staging memory report exhaustion regardless
    /// of the configured limit.
    fn staging_exhausted(&self, node: NodeId) -> bool {
        let _ = node;
        false
    }

    /// Observe every ledger record (an accounting tap, not a fault): the
    /// chaos harness cross-checks these totals against ledger snapshots
    /// and telemetry counters.
    fn on_transfer(&self, class: TrafficClass, locality: Locality, bytes: u64) {
        let _ = (class, locality, bytes);
    }

    /// Intercept a wire operation.
    ///
    /// `kind` is the frame kind byte (0 for [`NetOp::Connect`]); `a` and
    /// `b` identify the site — `(node, attempt-independent 0)` for
    /// connects, `(buffer name, packed piece)` for pull-data frames — so
    /// the same logical frame always rolls the same fate.
    fn on_net(&self, op: NetOp, kind: u8, a: u64, b: u64) -> FaultAction {
        let _ = (op, kind, a, b);
        FaultAction::Proceed
    }

    /// `true` fails the creation of (producer side) or the attach to
    /// (consumer side) an intra-host shared-memory segment; the pair
    /// transparently falls back to the TCP path. `node` is the segment
    /// creator's node and `segment` the directed-pair segment id —
    /// deliberately op-independent, so with a shared seed both ends of
    /// a doomed pair fail identically instead of rolling twice.
    fn shm_attach_fails(&self, node: NodeId, segment: u64) -> bool {
        let _ = (node, segment);
        false
    }

    /// Intercept one standing-query push fragment (producer-piece ∩
    /// subscription overlap) before it is delivered or sent. Sited in
    /// the shared put path — before the transport split — so a dropped
    /// fragment surfaces identically in single-process and distributed
    /// runs: the subscriber sees a gap and heals it through the
    /// lag/resync protocol. Only [`FaultAction::Drop`] is honored.
    fn on_sub_push(&self, var: u64, version: u64, subscriber: ClientId, piece: u64) -> FaultAction {
        let _ = (var, version, subscriber, piece);
        FaultAction::Proceed
    }
}

/// A cheaply cloneable, optionally-empty handle to a [`FaultHooks`]
/// implementation. The default ([`FaultInjector::none`]) injects nothing.
#[derive(Clone, Default)]
pub struct FaultInjector(Option<Arc<dyn FaultHooks>>);

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("active", &self.0.is_some())
            .finish()
    }
}

impl FaultInjector {
    /// An injector that never injects (the production default).
    pub fn none() -> Self {
        FaultInjector(None)
    }

    /// Wrap a fault plan.
    pub fn new(hooks: Arc<dyn FaultHooks>) -> Self {
        FaultInjector(Some(hooks))
    }

    /// Whether any hooks are installed.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// See [`FaultHooks::dead_producer`].
    pub fn dead_producer(&self, var: u64, version: u64, owner: ClientId, piece: u64) -> bool {
        match &self.0 {
            Some(h) => h.dead_producer(var, version, owner, piece),
            None => false,
        }
    }

    /// See [`FaultHooks::on_pull`].
    pub fn on_pull(&self, name: u64, version: u64, piece: u64) -> FaultAction {
        match &self.0 {
            Some(h) => h.on_pull(name, version, piece),
            None => FaultAction::Proceed,
        }
    }

    /// See [`FaultHooks::dht_core_down`].
    pub fn dht_core_down(&self, core: usize) -> bool {
        match &self.0 {
            Some(h) => h.dht_core_down(core),
            None => false,
        }
    }

    /// See [`FaultHooks::staging_exhausted`].
    pub fn staging_exhausted(&self, node: NodeId) -> bool {
        match &self.0 {
            Some(h) => h.staging_exhausted(node),
            None => false,
        }
    }

    /// See [`FaultHooks::on_transfer`].
    pub fn on_transfer(&self, class: TrafficClass, locality: Locality, bytes: u64) {
        if let Some(h) = &self.0 {
            h.on_transfer(class, locality, bytes);
        }
    }

    /// See [`FaultHooks::on_net`].
    pub fn on_net(&self, op: NetOp, kind: u8, a: u64, b: u64) -> FaultAction {
        match &self.0 {
            Some(h) => h.on_net(op, kind, a, b),
            None => FaultAction::Proceed,
        }
    }

    /// See [`FaultHooks::shm_attach_fails`].
    pub fn shm_attach_fails(&self, node: NodeId, segment: u64) -> bool {
        match &self.0 {
            Some(h) => h.shm_attach_fails(node, segment),
            None => false,
        }
    }

    /// See [`FaultHooks::on_sub_push`].
    pub fn on_sub_push(
        &self,
        var: u64,
        version: u64,
        subscriber: ClientId,
        piece: u64,
    ) -> FaultAction {
        match &self.0 {
            Some(h) => h.on_sub_push(var, version, subscriber, piece),
            None => FaultAction::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn none_injector_is_inert() {
        let inj = FaultInjector::none();
        assert!(!inj.is_active());
        assert!(!inj.dead_producer(1, 2, 3, 4));
        assert_eq!(inj.on_pull(1, 2, 3), FaultAction::Proceed);
        assert!(!inj.dht_core_down(0));
        assert!(!inj.staging_exhausted(0));
        inj.on_transfer(TrafficClass::Dht, Locality::Network, 64);
        assert_eq!(
            inj.on_net(NetOp::Connect, 0, 1, 0),
            FaultAction::Proceed,
            "inert injector never faults the wire"
        );
        assert!(!inj.shm_attach_fails(0, 1));
        assert_eq!(inj.on_sub_push(1, 2, 3, 4), FaultAction::Proceed);
    }

    #[test]
    fn net_hook_is_consulted_per_op() {
        struct DropSends;
        impl FaultHooks for DropSends {
            fn on_net(&self, op: NetOp, _kind: u8, _a: u64, _b: u64) -> FaultAction {
                match op {
                    NetOp::Send => FaultAction::Drop,
                    _ => FaultAction::Proceed,
                }
            }
        }
        let inj = FaultInjector::new(Arc::new(DropSends));
        assert_eq!(inj.on_net(NetOp::Send, 7, 1, 2), FaultAction::Drop);
        assert_eq!(inj.on_net(NetOp::Recv, 7, 1, 2), FaultAction::Proceed);
        assert_eq!(inj.on_net(NetOp::Connect, 0, 0, 0), FaultAction::Proceed);
    }

    #[test]
    fn hooks_are_consulted() {
        struct DropAll(AtomicU64);
        impl FaultHooks for DropAll {
            fn on_pull(&self, _: u64, _: u64, _: u64) -> FaultAction {
                self.0.fetch_add(1, Ordering::Relaxed);
                FaultAction::Drop
            }
            fn dht_core_down(&self, core: usize) -> bool {
                core == 2
            }
        }
        let hooks = Arc::new(DropAll(AtomicU64::new(0)));
        let inj = FaultInjector::new(hooks.clone());
        assert!(inj.is_active());
        assert_eq!(inj.on_pull(9, 0, 1), FaultAction::Drop);
        assert!(inj.dht_core_down(2));
        assert!(!inj.dht_core_down(3));
        // Defaults still benign for hooks the plan does not override.
        assert!(!inj.dead_producer(0, 0, 0, 0));
        assert_eq!(hooks.0.load(Ordering::Relaxed), 1);
    }
}
