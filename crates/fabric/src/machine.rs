//! Machine description and task placements.
//!
//! The paper's platform is the Jaguar Cray XT5: multicore compute nodes
//! (dual hex-core, 12 cores each) joined by a 3-D torus. [`MachineSpec`]
//! describes such a machine; [`Placement`] records which core each
//! execution client (one per computation task) runs on — the output of a
//! task-mapping strategy and the input to every byte-accounting and
//! time-model question ("is this transfer intra-node or inter-node?").

/// Identifier of a compute node.
pub type NodeId = u32;
/// Global core identifier: `node * cores_per_node + local_core`.
pub type CoreId = u32;
/// Identifier of an execution client (equivalently, a computation task
/// slot): one client per core in a full allocation.
pub type ClientId = u32;

/// Shape of the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineSpec {
    /// Number of compute nodes.
    pub nodes: u32,
    /// Processor cores per node (12 on Jaguar XT5).
    pub cores_per_node: u32,
}

impl MachineSpec {
    /// Create a spec.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(nodes: u32, cores_per_node: u32) -> Self {
        assert!(nodes > 0 && cores_per_node > 0, "machine must be non-empty");
        MachineSpec {
            nodes,
            cores_per_node,
        }
    }

    /// A machine with exactly enough 12-core (Jaguar-style) nodes for
    /// `cores` cores.
    pub fn jaguar_for_cores(cores: u32) -> Self {
        Self::new(cores.div_ceil(12), 12)
    }

    /// Total core count.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Node owning a global core id.
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        debug_assert!(core < self.total_cores());
        core / self.cores_per_node
    }

    /// Local index of a core within its node.
    #[inline]
    pub fn local_core(&self, core: CoreId) -> u32 {
        core % self.cores_per_node
    }

    /// Global core id from node and local index.
    #[inline]
    pub fn core(&self, node: NodeId, local: u32) -> CoreId {
        debug_assert!(node < self.nodes && local < self.cores_per_node);
        node * self.cores_per_node + local
    }
}

/// A mapping from execution clients to processor cores.
#[derive(Clone, Debug)]
pub struct Placement {
    spec: MachineSpec,
    core_of: Vec<CoreId>,
}

impl Placement {
    /// Build from an explicit client -> core vector.
    ///
    /// # Panics
    /// Panics if any core id is out of range or two clients share a core.
    pub fn new(spec: MachineSpec, core_of: Vec<CoreId>) -> Self {
        let mut used = vec![false; spec.total_cores() as usize];
        for &c in &core_of {
            assert!(c < spec.total_cores(), "core {c} out of range");
            assert!(!used[c as usize], "core {c} assigned twice");
            used[c as usize] = true;
        }
        Placement { spec, core_of }
    }

    /// Launcher-style sequential packing: client `i` on core `i` (fills
    /// node 0 completely, then node 1, ...).
    pub fn pack_sequential(spec: MachineSpec, clients: u32) -> Self {
        assert!(clients <= spec.total_cores(), "more clients than cores");
        Self::new(spec, (0..clients).collect())
    }

    /// Node-cyclic round-robin: client `i` on node `i % nodes`, next free
    /// local core — the paper's round-robin baseline mapping.
    pub fn round_robin_nodes(spec: MachineSpec, clients: u32) -> Self {
        assert!(clients <= spec.total_cores(), "more clients than cores");
        let mut next_local = vec![0u32; spec.nodes as usize];
        let mut core_of = Vec::with_capacity(clients as usize);
        let mut node = 0u32;
        for _ in 0..clients {
            // Find the next node (cyclically) with a free core.
            let mut hops = 0;
            while next_local[node as usize] >= spec.cores_per_node {
                node = (node + 1) % spec.nodes;
                hops += 1;
                assert!(hops <= spec.nodes, "no free cores left");
            }
            core_of.push(spec.core(node, next_local[node as usize]));
            next_local[node as usize] += 1;
            node = (node + 1) % spec.nodes;
        }
        Self::new(spec, core_of)
    }

    /// The machine this placement lives on.
    pub fn spec(&self) -> MachineSpec {
        self.spec
    }

    /// Number of placed clients.
    pub fn num_clients(&self) -> u32 {
        self.core_of.len() as u32
    }

    /// Core of a client.
    #[inline]
    pub fn core_of(&self, client: ClientId) -> CoreId {
        self.core_of[client as usize]
    }

    /// Node of a client.
    #[inline]
    pub fn node_of(&self, client: ClientId) -> NodeId {
        self.spec.node_of_core(self.core_of[client as usize])
    }

    /// Whether two clients share a compute node (and can therefore use
    /// shared memory for their transfers).
    #[inline]
    pub fn colocated(&self, a: ClientId, b: ClientId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Clients placed on `node`.
    pub fn clients_on(&self, node: NodeId) -> Vec<ClientId> {
        (0..self.num_clients())
            .filter(|&c| self.node_of(c) == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_core_math() {
        let s = MachineSpec::new(4, 12);
        assert_eq!(s.total_cores(), 48);
        assert_eq!(s.node_of_core(0), 0);
        assert_eq!(s.node_of_core(11), 0);
        assert_eq!(s.node_of_core(12), 1);
        assert_eq!(s.local_core(13), 1);
        assert_eq!(s.core(3, 11), 47);
    }

    #[test]
    fn jaguar_for_cores_rounds_up() {
        assert_eq!(MachineSpec::jaguar_for_cores(576).nodes, 48);
        assert_eq!(MachineSpec::jaguar_for_cores(577).nodes, 49);
    }

    #[test]
    fn pack_sequential_fills_nodes_in_order() {
        let p = Placement::pack_sequential(MachineSpec::new(3, 4), 9);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
        assert_eq!(p.node_of(8), 2);
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let p = Placement::round_robin_nodes(MachineSpec::new(3, 4), 7);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(1), 1);
        assert_eq!(p.node_of(2), 2);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(6), 0);
    }

    #[test]
    fn round_robin_overflows_to_free_nodes() {
        // 2 nodes x 2 cores, 4 clients: 0,1 then wrap 0,1.
        let p = Placement::round_robin_nodes(MachineSpec::new(2, 2), 4);
        let nodes: Vec<_> = (0..4).map(|c| p.node_of(c)).collect();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn colocated_detection() {
        let p = Placement::pack_sequential(MachineSpec::new(2, 2), 4);
        assert!(p.colocated(0, 1));
        assert!(!p.colocated(1, 2));
    }

    #[test]
    fn clients_on_node() {
        let p = Placement::round_robin_nodes(MachineSpec::new(2, 2), 4);
        assert_eq!(p.clients_on(0), vec![0, 2]);
        assert_eq!(p.clients_on(1), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn rejects_shared_core() {
        Placement::new(MachineSpec::new(1, 2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "more clients than cores")]
    fn rejects_overflow() {
        Placement::pack_sequential(MachineSpec::new(1, 2), 3);
    }
}
