//! Property tests for the simulated fabric: torus routing invariants,
//! placement integrity and ledger conservation.

use insitu_fabric::{
    estimate_retrieve_times, ClientRetrieve, Locality, MachineSpec, NetworkModel, Placement,
    TorusTopology, TrafficClass, Transfer, TransferLedger,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn torus_route_is_a_valid_path(
        dx in 1u32..5, dy in 1u32..5, dz in 1u32..5, seed in any::<u64>(),
    ) {
        let t = TorusTopology::new([dx, dy, dz]);
        let n = t.num_nodes() as u64;
        let a = (seed % n) as u32;
        let b = ((seed >> 20) % n) as u32;
        let links = t.route(a, b);
        prop_assert_eq!(links.len() as u32, t.hop_distance(a, b));
        // Links form a contiguous walk from a to b.
        let mut cur = a;
        for l in &links {
            prop_assert_eq!(l.from, cur);
            let mut c = t.coords_of(cur);
            let dims = t.dims();
            let d = l.dim as usize;
            c[d] = if l.plus {
                (c[d] + 1) % dims[d]
            } else {
                (c[d] + dims[d] - 1) % dims[d]
            };
            cur = t.node_of(c);
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn torus_distance_symmetric_and_bounded(
        dx in 1u32..5, dy in 1u32..5, dz in 1u32..5, seed in any::<u64>(),
    ) {
        let t = TorusTopology::new([dx, dy, dz]);
        let n = t.num_nodes() as u64;
        let a = (seed % n) as u32;
        let b = ((seed >> 20) % n) as u32;
        prop_assert_eq!(t.hop_distance(a, b), t.hop_distance(b, a));
        let diameter: u32 = [dx, dy, dz].iter().map(|d| d / 2).sum();
        prop_assert!(t.hop_distance(a, b) <= diameter);
    }

    #[test]
    fn placement_round_robin_uses_distinct_cores(
        nodes in 1u32..8, cores in 1u32..6, fill in 0u32..40,
    ) {
        let spec = MachineSpec::new(nodes, cores);
        let clients = fill.min(spec.total_cores());
        let p = Placement::round_robin_nodes(spec, clients);
        let mut seen = std::collections::HashSet::new();
        for c in 0..clients {
            prop_assert!(seen.insert(p.core_of(c)));
            prop_assert!(p.core_of(c) < spec.total_cores());
        }
    }

    #[test]
    fn ledger_conserves_bytes(records in proptest::collection::vec(
        (0u32..4, 0u8..2, 1u64..10_000), 0..60,
    )) {
        let ledger = TransferLedger::new();
        let mut shm = 0u64;
        let mut net = 0u64;
        for (app, loc, bytes) in &records {
            let locality = if *loc == 0 { Locality::SharedMemory } else { Locality::Network };
            ledger.record(*app, TrafficClass::InterApp, locality, *bytes);
            match locality {
                Locality::SharedMemory => shm += bytes,
                Locality::Network => net += bytes,
            }
        }
        let snap = ledger.snapshot();
        prop_assert_eq!(snap.shm_bytes(TrafficClass::InterApp), shm);
        prop_assert_eq!(snap.network_bytes(TrafficClass::InterApp), net);
        // Per-app breakdown sums to the totals.
        let per_app: u64 = (0..4)
            .map(|a| {
                snap.app_bytes(a, TrafficClass::InterApp, Locality::SharedMemory)
                    + snap.app_bytes(a, TrafficClass::InterApp, Locality::Network)
            })
            .sum();
        prop_assert_eq!(per_app, shm + net);
    }

    #[test]
    fn retrieve_times_monotone_in_bytes(
        base in 1u64..1_000_000, extra in 1u64..1_000_000, src in 0u32..63,
    ) {
        let m = NetworkModel::jaguar();
        let t = TorusTopology::new([4, 4, 4]);
        let mk = |bytes| ClientRetrieve {
            dst_node: 0,
            transfers: vec![Transfer { src_node: src % 64, bytes }],
            dht_queries: 0,
        };
        let small = estimate_retrieve_times(&m, &t, &[mk(base)])[0];
        let large = estimate_retrieve_times(&m, &t, &[mk(base + extra)])[0];
        prop_assert!(large >= small);
    }

    #[test]
    fn retrieve_times_nonnegative_and_finite(
        flows in proptest::collection::vec((0u32..27, 0u32..27, 0u64..1_000_000), 1..20),
    ) {
        let m = NetworkModel::jaguar();
        let t = TorusTopology::new([3, 3, 3]);
        let retrieves: Vec<ClientRetrieve> = flows
            .iter()
            .map(|&(dst, src, bytes)| ClientRetrieve {
                dst_node: dst,
                transfers: vec![Transfer { src_node: src, bytes }],
                dht_queries: 1,
            })
            .collect();
        for t in estimate_retrieve_times(&m, &t, &retrieves) {
            prop_assert!(t.is_finite() && t >= 0.0);
        }
    }
}
