//! Property tests for the simulated fabric: torus routing invariants,
//! placement integrity and ledger conservation.

use insitu_fabric::{
    estimate_retrieve_times, ClientRetrieve, Locality, MachineSpec, NetworkModel, Placement,
    TorusTopology, TrafficClass, Transfer, TransferLedger,
};
use insitu_util::check::forall;

#[test]
fn torus_route_is_a_valid_path() {
    forall(64, |rng| {
        let dims = [
            rng.range_u32(1, 5),
            rng.range_u32(1, 5),
            rng.range_u32(1, 5),
        ];
        let t = TorusTopology::new(dims);
        let n = t.num_nodes() as u64;
        let a = rng.range_u64(0, n) as u32;
        let b = rng.range_u64(0, n) as u32;
        let links = t.route(a, b);
        assert_eq!(links.len() as u32, t.hop_distance(a, b));
        // Links form a contiguous walk from a to b.
        let mut cur = a;
        for l in &links {
            assert_eq!(l.from, cur);
            let mut c = t.coords_of(cur);
            let dims = t.dims();
            let d = l.dim as usize;
            c[d] = if l.plus {
                (c[d] + 1) % dims[d]
            } else {
                (c[d] + dims[d] - 1) % dims[d]
            };
            cur = t.node_of(c);
        }
        assert_eq!(cur, b);
    });
}

#[test]
fn torus_distance_symmetric_and_bounded() {
    forall(64, |rng| {
        let dims = [
            rng.range_u32(1, 5),
            rng.range_u32(1, 5),
            rng.range_u32(1, 5),
        ];
        let t = TorusTopology::new(dims);
        let n = t.num_nodes() as u64;
        let a = rng.range_u64(0, n) as u32;
        let b = rng.range_u64(0, n) as u32;
        assert_eq!(t.hop_distance(a, b), t.hop_distance(b, a));
        let diameter: u32 = dims.iter().map(|d| d / 2).sum();
        assert!(t.hop_distance(a, b) <= diameter);
    });
}

#[test]
fn placement_round_robin_uses_distinct_cores() {
    forall(64, |rng| {
        let nodes = rng.range_u32(1, 8);
        let cores = rng.range_u32(1, 6);
        let fill = rng.range_u32(0, 40);
        let spec = MachineSpec::new(nodes, cores);
        let clients = fill.min(spec.total_cores());
        let p = Placement::round_robin_nodes(spec, clients);
        let mut seen = std::collections::HashSet::new();
        for c in 0..clients {
            assert!(seen.insert(p.core_of(c)));
            assert!(p.core_of(c) < spec.total_cores());
        }
    });
}

#[test]
fn ledger_conserves_bytes() {
    forall(64, |rng| {
        let ledger = TransferLedger::new();
        let mut shm = 0u64;
        let mut net = 0u64;
        for _ in 0..rng.range_usize(0, 60) {
            let app = rng.range_u32(0, 4);
            let locality = *rng.choose(&[Locality::SharedMemory, Locality::Network]);
            let bytes = rng.range_u64(1, 10_000);
            ledger.record(app, TrafficClass::InterApp, locality, bytes);
            match locality {
                Locality::SharedMemory => shm += bytes,
                Locality::Network => net += bytes,
            }
        }
        let snap = ledger.snapshot();
        assert_eq!(snap.shm_bytes(TrafficClass::InterApp), shm);
        assert_eq!(snap.network_bytes(TrafficClass::InterApp), net);
        // Per-app breakdown sums to the totals.
        let per_app: u64 = (0..4)
            .map(|a| {
                snap.app_bytes(a, TrafficClass::InterApp, Locality::SharedMemory)
                    + snap.app_bytes(a, TrafficClass::InterApp, Locality::Network)
            })
            .sum();
        assert_eq!(per_app, shm + net);
    });
}

#[test]
fn retrieve_times_monotone_in_bytes() {
    forall(64, |rng| {
        let base = rng.range_u64(1, 1_000_000);
        let extra = rng.range_u64(1, 1_000_000);
        let src = rng.range_u32(0, 64);
        let m = NetworkModel::jaguar();
        let t = TorusTopology::new([4, 4, 4]);
        let mk = |bytes| ClientRetrieve {
            dst_node: 0,
            transfers: vec![Transfer::new(src, bytes)],
            dht_queries: 0,
        };
        let small = estimate_retrieve_times(&m, &t, &[mk(base)])[0];
        let large = estimate_retrieve_times(&m, &t, &[mk(base + extra)])[0];
        assert!(large >= small);
    });
}

#[test]
fn retrieve_times_nonnegative_and_finite() {
    forall(64, |rng| {
        let m = NetworkModel::jaguar();
        let t = TorusTopology::new([3, 3, 3]);
        let retrieves: Vec<ClientRetrieve> = (0..rng.range_usize(1, 20))
            .map(|_| ClientRetrieve {
                dst_node: rng.range_u32(0, 27),
                transfers: vec![Transfer::new(
                    rng.range_u32(0, 27),
                    rng.range_u64(0, 1_000_000),
                )],
                dht_queries: 1,
            })
            .collect();
        for est in estimate_retrieve_times(&m, &t, &retrieves) {
            assert!(est.is_finite() && est >= 0.0);
        }
    });
}
