//! The distributed runner: the threaded executor's workflow split into
//! real OS processes over TCP.
//!
//! One process calls [`serve`] — it is the workflow management server
//! (§III.A): it accepts one joiner per simulated node, registers their
//! execution clients (with the real socket addresses they connected
//! from), dispatches each wave's task assignments as `Relay` frames,
//! runs the wave barriers and merges the final per-node reports. Every
//! other process calls [`join`] — it rebuilds the *same* execution
//! state from the `Welcome` frame (scenario text, strategy, get
//! timeout) via [`crate::exec`], runs only the tasks its node hosts,
//! and ships everything that crosses processes through an
//! [`insitu_net::NetLink`].
//!
//! ## Accounting-once invariant
//!
//! Each logical transfer is accounted in exactly one process — the one
//! that initiates it: puts and their DHT inserts at the producer, gets
//! and pulls at the consumer, halo messages at the sender, and the
//! 12-byte dispatch messages at the server. Frames that mirror already
//! accounted state (`Relay` delivery, `PullData` registration,
//! `DhtInsert`/`GetDone`/`Evict`) never touch the receiving ledger.
//! The merged ledger — the server's own snapshot plus the sum of every
//! node's — is therefore byte-identical to a single-process
//! [`run_threaded`](crate::run_threaded) of the same scenario.
//!
//! One workflow-design caveat follows from the per-process schedule
//! cache (keyed by variable and query box): if two clients on
//! *different* nodes issue the same sequential-get query, the
//! single-process run serves the second from the shared cache (no DHT
//! traffic) while the distributed run computes it twice. Workflows
//! meant for cross-mode ledger comparison must give concurrently
//! running consumers distinct query regions; same-node and
//! cross-iteration repeats are safe (same process ↔ same cache in both
//! modes).

use crate::exec::{dispatch_payload, wave_tasks, ExecEnv, DISPATCH_BYTES, TAG_DISPATCH};
use crate::mapping::MappingStrategy;
use crate::scenario::Scenario;
use crate::threaded::ThreadedConfig;
use insitu_cods::SpaceMirror;
use insitu_dart::Transport;
use insitu_fabric::{FaultInjector, LedgerSnapshot, TrafficClass};
use insitu_net::conn::{recv_frame, send_frame};
use insitu_net::{connect_with_retry, Ctl, Frame, Hub, HubConfig, NetLink, NetMetrics, NodeReport};
use insitu_obs::{FlightRecorder, ProcessTrace};
use insitu_telemetry::Recorder;
use insitu_workflow::ClientRegistry;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Knobs of the serving (workflow-server) process.
#[derive(Clone)]
pub struct ServeOptions {
    /// Task-mapping strategy; sent to every joiner in `Welcome`.
    pub strategy: MappingStrategy,
    /// Get timeout every replica must use (sent in `Welcome`).
    pub get_timeout: Duration,
    /// How long to wait for joiners to connect before failing.
    pub timeout: Duration,
    /// Fault sites to consult (inert by default).
    pub injector: FaultInjector,
    /// Telemetry recorder (`net.*` counters land here).
    pub recorder: Recorder,
    /// Run epoch shipped to every joiner in `Welcome`; salts the
    /// replicas' DataSpace/BufferRegistry/DHT keys so concurrent
    /// service runs cannot collide. 0 = standalone run, no salting.
    pub run_epoch: u64,
    /// Cooperative cancellation flag, checked at every wave boundary:
    /// once set, the server shuts the run down (`Shutdown{ok: false}`)
    /// instead of dispatching the next wave.
    pub cancel: Arc<AtomicBool>,
    /// Flight recorder shared with in-process joiners for per-run
    /// profiles (disabled by default).
    pub flight: FlightRecorder,
    /// Run the data plane peer-to-peer: the hub ships every joiner the
    /// full peer-address table in `Welcome`, `PullData` flows over
    /// direct node↔node connections, and the hub carries control
    /// traffic only (asserted by the `net.pull_frames_hub` counter
    /// staying at zero). Off by default: star mode routes everything
    /// through the hub.
    pub p2p: bool,
    /// Allow same-host joiner pairs to move `PullData` payloads through
    /// shared-memory segments instead of the socket. On by default; off
    /// ships an empty host table in `Welcome`, so no joiner ever offers
    /// a segment — one knob, decided at the hub.
    pub shm: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            strategy: MappingStrategy::DataCentric,
            get_timeout: Duration::from_secs(60),
            timeout: Duration::from_secs(30),
            injector: FaultInjector::none(),
            recorder: Recorder::disabled(),
            run_epoch: 0,
            cancel: Arc::new(AtomicBool::new(false)),
            flight: FlightRecorder::disabled(),
            p2p: false,
            shm: true,
        }
    }
}

/// Knobs of a joining (node) process.
#[derive(Clone)]
pub struct JoinOptions {
    /// How long to keep trying to reach the server before failing.
    pub timeout: Duration,
    /// Fault sites to consult (inert by default).
    pub injector: FaultInjector,
    /// Telemetry recorder (`net.*` counters land here).
    pub recorder: Recorder,
    /// Flight recorder for per-run profiles (disabled by default; the
    /// service passes each run's recorder to its pooled joiners).
    pub flight: FlightRecorder,
    /// Advertise this process's host fingerprint in `Hello`, letting
    /// same-host peers answer its pulls through shared memory. Off
    /// sends an empty fingerprint, which never matches: this joiner's
    /// pairs all ride the wire.
    pub shm: bool,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            timeout: Duration::from_secs(30),
            injector: FaultInjector::none(),
            recorder: Recorder::disabled(),
            flight: FlightRecorder::disabled(),
            shm: true,
        }
    }
}

/// The server's view of a completed distributed run.
#[derive(Clone, Debug)]
pub struct DistribOutcome {
    /// Strategy the run mapped under.
    pub strategy: MappingStrategy,
    /// Number of joiner processes (= simulated nodes).
    pub nodes: u32,
    /// Merged transfer ledger: the server's dispatch accounting plus
    /// every node's snapshot. Byte-identical to the single-process run.
    pub ledger: LedgerSnapshot,
    /// Value-verification failures summed over nodes.
    pub verify_failures: u64,
    /// Completed `get` operations summed over nodes.
    pub gets: u64,
    /// Buffers still registered at the end, each counted once (in its
    /// owner's process).
    pub staged_buffers: u64,
    /// Task errors from every node, rendered and sorted.
    pub errors: Vec<String>,
    /// Each joiner's shipped flight recording, one per node, ready for
    /// [`insitu_obs::merge_traces`]. A node whose telemetry was lost on
    /// the wire (or that never enabled its recorder and shipped only
    /// counters) still appears — the merge degrades, the run does not.
    pub telemetry: Vec<ProcessTrace>,
}

/// How long a joiner waits for each `TelemetryAck` before abandoning
/// the rest of its shipment.
const TELEMETRY_ACK_TIMEOUT: Duration = Duration::from_secs(1);

/// How long the server waits for a wave barrier or the final reports:
/// every task's gets can time out and the wave must still complete.
fn wave_timeout(get_timeout: Duration) -> Duration {
    get_timeout * 4 + Duration::from_secs(60)
}

/// Run the workflow server on an already bound listener.
///
/// `dag` and `config` are the workflow text shipped verbatim to every
/// joiner in `Welcome`; `scenario` must be the scenario that text
/// describes (the caller parsed it once already). Fails with a clear
/// error — never blocks past the deadlines — if joiners do not arrive
/// within `opts.timeout`, or a joiner dies mid-run.
pub fn serve(
    listener: &TcpListener,
    dag: &str,
    config: &str,
    scenario: &Scenario,
    opts: &ServeOptions,
) -> Result<DistribOutcome, String> {
    let cfg = ThreadedConfig {
        get_timeout: opts.get_timeout,
        injector: opts.injector.clone(),
        flight: FlightRecorder::disabled(),
        key_epoch: opts.run_epoch,
        // The server runs no tasks, so whether it hosts sinks is moot;
        // None keeps its replicated state identical to single-process.
        local_node: None,
    };
    // The server replicates the execution state like any node: it needs
    // the mapping for dispatch and the placement for dispatch accounting.
    // Its space and mailboxes stay idle — no tasks run here.
    let env = ExecEnv::build(scenario, opts.strategy, &opts.recorder, &cfg, None, None);
    let machine = env.mapped.machine;
    let metrics = NetMetrics::new(&opts.recorder);
    let hub = Hub::accept(
        listener,
        &HubConfig {
            nodes: machine.nodes,
            cores_per_node: machine.cores_per_node,
            strategy: opts.strategy.label().to_string(),
            get_timeout_ms: opts.get_timeout.as_millis() as u64,
            dag: dag.to_string(),
            config: config.to_string(),
            run_epoch: opts.run_epoch,
            accept_timeout: opts.timeout,
            p2p: opts.p2p,
            shm: opts.shm,
        },
        &opts.injector,
        &metrics,
    )
    .map_err(|e| e.to_string())?;

    // Execution-client management: every client registers with the real
    // socket address its node process connected from.
    let mut registry = ClientRegistry::new();
    {
        let _span = opts.recorder.span("workflow.register", "workflow", 0);
        for client in 0..machine.total_cores() {
            let addr = hub.peer_addr(client / machine.cores_per_node).to_string();
            registry.register_at(client, client, &addr);
        }
    }

    let deadline = wave_timeout(opts.get_timeout);
    // Wave progress for live observers (`insitu watch`): total up front,
    // completions as the barriers clear.
    opts.recorder
        .gauge("workflow.waves")
        .set(env.mapped.waves.len() as u64);
    let waves_done = opts.recorder.counter("workflow.waves_done");
    for (wi, wave) in env.mapped.waves.iter().enumerate() {
        if opts.cancel.load(Ordering::SeqCst) {
            let why = format!("run cancelled before wave {wi}");
            hub.shutdown(false, &why);
            return Err(why);
        }
        let tasks = wave_tasks(&env.scenario, &env.mapped, wave);
        {
            // Dispatch, exactly as in-process: accounted here (Control
            // class, server co-resident with client 0's node), delivered
            // as a Relay so each client's first message is its
            // assignment — before RunWave on the same FIFO connection.
            let _span = opts.recorder.span("workflow.group", "workflow", wi as u64);
            for &(app_id, rank, client) in &tasks {
                registry.set_running(client, app_id);
                env.dart
                    .account(app_id, TrafficClass::Control, 0, client, DISPATCH_BYTES);
                hub.send_to(
                    client / machine.cores_per_node,
                    Frame::Relay {
                        to: client,
                        src: 0,
                        tag: TAG_DISPATCH,
                        payload: dispatch_payload(app_id, rank),
                    },
                );
            }
        }
        hub.broadcast(Frame::RunWave { wave: wi as u32 });
        let _span = opts
            .recorder
            .span("workflow.execute", "workflow", wi as u64);
        if let Err(e) = hub.wait_barrier(wi as u32, deadline) {
            let why = format!("wave {wi} failed: {e}");
            hub.shutdown(false, &why);
            return Err(why);
        }
        for &(_, _, client) in &tasks {
            registry.set_idle(client);
        }
        waves_done.inc();
    }

    // Every wave barriered: no pull is in flight anywhere, and wire
    // events are recorded before their answers are enqueued, so each
    // joiner's flight recording is closed. The collect wave (index one
    // past the schedule) tells the joiners to ship telemetry and then
    // report on the same FIFO connection — the reports' arrival below
    // therefore implies every telemetry batch that survived the wire
    // has landed in the hub.
    hub.broadcast(Frame::RunWave {
        wave: env.mapped.waves.len() as u32,
    });
    let reports = match hub.collect_reports(deadline) {
        Ok(r) => r,
        Err(e) => {
            let why = format!("collecting node reports failed: {e}");
            hub.shutdown(false, &why);
            return Err(why);
        }
    };
    let telemetry = hub.take_telemetry();
    hub.shutdown(true, "");

    let mut merged = env.ledger.snapshot();
    let mut verify_failures = 0;
    let mut gets = 0;
    let mut staged_buffers = 0;
    let mut errors = Vec::new();
    for report in &reports {
        merged.merge(&report.ledger);
        verify_failures += report.verify_failures;
        gets += report.gets;
        staged_buffers += report.staged;
        errors.extend(report.errors.iter().cloned());
    }
    errors.sort();
    Ok(DistribOutcome {
        strategy: opts.strategy,
        nodes: machine.nodes,
        ledger: merged,
        verify_failures,
        gets,
        staged_buffers,
        errors,
        telemetry,
    })
}

/// Run one node process: connect to the server at `addr`, claim `node`,
/// rebuild the execution state from `Welcome` (parsing the workflow
/// text with `build`), run the waves the server drives, and report.
///
/// Fails with a clear error — never blocks indefinitely — when the
/// server is unreachable within `opts.timeout`, the handshake goes
/// wrong, or the server aborts the run.
pub fn join<F>(addr: &str, node: u32, build: F, opts: &JoinOptions) -> Result<(), String>
where
    F: FnOnce(&str, &str) -> Result<Scenario, String>,
{
    let metrics = NetMetrics::new(&opts.recorder);
    let mut stream = connect_with_retry(addr, node, opts.timeout, &opts.injector, &metrics)
        .map_err(|e| e.to_string())?;
    stream
        .set_nodelay(true)
        .and_then(|_| stream.set_read_timeout(Some(opts.timeout.max(Duration::from_millis(1)))))
        .map_err(|e| format!("socket setup: {e}"))?;
    // Bind the direct-pull listener up front, on the same interface the
    // server connection uses, and advertise it in Hello. Whether peers
    // actually dial it is the server's call: an empty peer table in
    // Welcome means star mode and the listener is simply dropped.
    let local_ip = stream
        .local_addr()
        .map_err(|e| format!("socket setup: {e}"))?
        .ip();
    let peer_listener =
        TcpListener::bind((local_ip, 0)).map_err(|e| format!("binding peer listener: {e}"))?;
    let peer_addr = peer_listener
        .local_addr()
        .map_err(|e| format!("socket setup: {e}"))?
        .to_string();
    // An opted-out joiner sends an empty fingerprint, which never
    // matches anyone: its pairs all ride the wire.
    let host = if opts.shm {
        insitu_util::shm::host_fingerprint()
    } else {
        String::new()
    };
    send_frame(
        &mut stream,
        &Frame::Hello {
            node,
            peer_addr,
            host,
        },
        &opts.injector,
        &metrics,
    )
    .map_err(|e| format!("greeting {addr}: {e}"))?;
    let (nodes, strategy, get_timeout_ms, dag, config, run_epoch, peers, hosts) =
        match recv_frame(&mut stream, &opts.injector, &metrics) {
            Ok(Frame::Welcome {
                nodes,
                strategy,
                get_timeout_ms,
                dag,
                config,
                run_epoch,
                peers,
                hosts,
            }) => (
                nodes,
                strategy,
                get_timeout_ms,
                dag,
                config,
                run_epoch,
                peers,
                hosts,
            ),
            Ok(other) => {
                return Err(format!(
                    "expected Welcome from {addr}, got frame kind {}",
                    other.kind()
                ))
            }
            Err(e) => return Err(format!("no Welcome from {addr} within deadline: {e}")),
        };
    stream
        .set_read_timeout(None)
        .map_err(|e| format!("socket setup: {e}"))?;

    let strategy = MappingStrategy::from_label(&strategy)
        .ok_or_else(|| format!("server sent unknown strategy {strategy:?}"))?;
    let scenario = build(&dag, &config)?;
    let get_timeout = Duration::from_millis(get_timeout_ms);
    if node >= nodes {
        return Err(format!(
            "claimed node {node}, but the run has {nodes} nodes"
        ));
    }

    let cpn = scenario.cores_per_node;
    let link = if peers.is_empty() {
        NetLink::new(
            stream,
            node,
            cpn,
            get_timeout,
            opts.injector.clone(),
            metrics,
        )
    } else {
        NetLink::new_p2p(
            stream,
            node,
            cpn,
            get_timeout,
            opts.injector.clone(),
            metrics,
            peers,
            peer_listener,
            opts.timeout.min(Duration::from_secs(5)),
        )
    }
    .map_err(|e| e.to_string())?;
    link.set_flight(opts.flight.clone());
    link.set_shm(hosts);
    let cfg = ThreadedConfig {
        get_timeout,
        injector: opts.injector.clone(),
        flight: opts.flight.clone(),
        key_epoch: run_epoch,
        // Host subscription sinks only for subscriber tasks on this node;
        // everything else stays a registry-only entry fed over the wire.
        local_node: Some(node),
    };
    let env = ExecEnv::build(
        &scenario,
        strategy,
        &opts.recorder,
        &cfg,
        Some(Arc::clone(&link) as Arc<dyn Transport>),
        Some(Arc::clone(&link) as Arc<dyn SpaceMirror>),
    );
    if env.mapped.machine.nodes != nodes {
        link.close();
        return Err(format!(
            "scenario maps to {} nodes, but the server runs {nodes}",
            env.mapped.machine.nodes
        ));
    }
    debug_assert_eq!(env.mapped.machine.cores_per_node, cpn);

    let ctl = link.start_reader(Arc::clone(&env.dart), Arc::clone(&env.space));
    let waves = env.mapped.waves.len() as u32;
    let result = loop {
        match ctl.recv() {
            Ok(Ctl::RunWave(w)) if w < waves => {
                let tasks = wave_tasks(&env.scenario, &env.mapped, &env.mapped.waves[w as usize]);
                let local: Vec<(u32, u64)> = tasks
                    .iter()
                    .filter(|&&(_, _, client)| client / cpn == node)
                    .map(|&(app, rank, _)| (app, rank))
                    .collect();
                env.run_tasks(&local);
                link.barrier(w);
            }
            Ok(Ctl::RunWave(_)) => {
                // The collect wave: every node barriered every wave, so
                // this process's flight recording is closed. Ship it
                // before the report — the hub connection is FIFO, so
                // the report's arrival proves every surviving batch
                // landed. A lost batch times out its ack and the rest
                // is abandoned: telemetry loss degrades the merged
                // trace, never the run.
                let _ = link.ship_telemetry(
                    &opts.flight.snapshot(),
                    opts.flight.dropped(),
                    opts.recorder.trace_dropped(),
                    opts.recorder
                        .metrics_snapshot()
                        .counters
                        .into_iter()
                        .collect(),
                    TELEMETRY_ACK_TIMEOUT,
                );
                link.report(NodeReport {
                    node,
                    ledger: env.ledger.snapshot(),
                    verify_failures: env.failures.load(Ordering::Relaxed),
                    staged: env.dart.registry().count_owned(|o| o / cpn == node),
                    gets: env.reports.lock().unwrap().len() as u64,
                    errors: env
                        .sorted_errors()
                        .iter()
                        .map(|(a, r, e)| format!("app {a} rank {r}: {e}"))
                        .collect(),
                });
            }
            Ok(Ctl::Shutdown { ok: true, .. }) => break Ok(()),
            Ok(Ctl::Shutdown { ok: false, reason }) => {
                break Err(format!("server aborted the run: {reason}"))
            }
            Err(_) => break Err("control channel closed before shutdown".to_string()),
        }
    };
    link.close();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{concurrent_scenario, pattern_pairs, sequential_scenario_with_grids};
    use crate::threaded::run_threaded;

    /// Run `scenario` distributed over loopback (one serve thread, one
    /// join thread per node) and return the server's outcome.
    fn run_distributed(
        scenario: &Scenario,
        strategy: MappingStrategy,
        nodes: u32,
        recorder: &Recorder,
        p2p: bool,
        shm: bool,
    ) -> DistribOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let serve_opts = ServeOptions {
            strategy,
            timeout: Duration::from_secs(20),
            recorder: recorder.clone(),
            p2p,
            shm,
            ..ServeOptions::default()
        };
        let mut joiners = Vec::new();
        for node in 0..nodes {
            let addr = addr.clone();
            let s = scenario.clone();
            let rec = recorder.clone();
            joiners.push(std::thread::spawn(move || {
                join(
                    &addr,
                    node,
                    move |_dag, _config| Ok(s),
                    &JoinOptions {
                        timeout: Duration::from_secs(20),
                        recorder: rec,
                        ..JoinOptions::default()
                    },
                )
            }));
        }
        let outcome = serve(&listener, "", "", scenario, &serve_opts).unwrap();
        for j in joiners {
            j.join().unwrap().unwrap();
        }
        outcome
    }

    #[test]
    fn distributed_concurrent_ledger_matches_single_process() {
        let mut s = concurrent_scenario(4, 4, 4, pattern_pairs(&[2, 2, 1])[0]).with_iterations(2);
        s.cores_per_node = 4; // 8 tasks -> 2 nodes: producers on 0, consumers on 1
        let expected = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(expected.verify_failures, 0);

        let rec = Recorder::enabled();
        let got = run_distributed(&s, MappingStrategy::DataCentric, 2, &rec, false, true);
        assert_eq!(got.nodes, 2);
        assert_eq!(got.verify_failures, 0);
        assert!(got.errors.is_empty(), "{:?}", got.errors);
        assert_eq!(
            got.ledger, expected.ledger,
            "merged ledger must be byte-identical"
        );
        assert_eq!(got.gets, expected.reports.len() as u64);
        assert_eq!(got.staged_buffers, expected.staged_buffers);

        // Real bytes moved over real sockets, and the counters saw them.
        let snap = rec.metrics_snapshot();
        assert!(snap.counter("net.bytes_sent") > 0);
        assert!(snap.counter("net.bytes_recv") > 0);
        assert!(snap.counter("net.frames") > 0);
    }

    /// Scenario whose RoundRobin placement forces cross-node pulls (the
    /// consumers' gets land away from the staged pieces) — the workload
    /// for every data-plane topology test below.
    fn cross_node_scenario() -> Scenario {
        let mut s = sequential_scenario_with_grids(
            &[2, 2, 1],
            &[2, 1, 1],
            &[1, 2, 1],
            4,
            pattern_pairs(&[2, 2, 1])[0],
        );
        s.cores_per_node = 2;
        s
    }

    #[test]
    fn star_shm_carries_same_host_pulls_with_identical_ledger() {
        let s = cross_node_scenario();
        let expected = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(expected.verify_failures, 0);

        let rec = Recorder::enabled();
        let got = run_distributed(&s, MappingStrategy::RoundRobin, 2, &rec, false, true);
        assert_eq!(got.verify_failures, 0);
        assert!(got.errors.is_empty(), "{:?}", got.errors);
        assert_eq!(
            got.ledger, expected.ledger,
            "shm transport must leave the merged ledger byte-identical"
        );
        assert_eq!(got.staged_buffers, expected.staged_buffers);

        // Every joiner shares this host, so with shm on (the default)
        // the cross-node payloads ride rings and loopback carries no
        // PullData at all.
        let snap = rec.metrics_snapshot();
        assert!(
            snap.counter("net.shm_frames") > 0,
            "same-host pulls must ride shared memory"
        );
        assert!(snap.counter("net.shm_bytes") > 0);
        assert_eq!(
            snap.counter("net.pull_frames_hub"),
            0,
            "no PullData may ride loopback between same-host pairs"
        );
        assert_eq!(snap.counter("net.shm_fallbacks"), 0);
    }

    #[test]
    fn distributed_shm_opt_out_falls_back_to_loopback() {
        let s = cross_node_scenario();
        let expected = run_threaded(&s, MappingStrategy::RoundRobin);

        let rec = Recorder::enabled();
        let got = run_distributed(&s, MappingStrategy::RoundRobin, 2, &rec, false, false);
        assert_eq!(got.verify_failures, 0);
        assert!(got.errors.is_empty(), "{:?}", got.errors);
        assert_eq!(
            got.ledger, expected.ledger,
            "opted-out ledger must be byte-identical too"
        );
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("net.shm_frames"), 0, "shm was opted out");
        assert!(
            snap.counter("net.pull_frames_hub") > 0,
            "PullData must ride the hub when shm is off"
        );
    }

    #[test]
    fn distributed_sequential_ledger_matches_single_process() {
        // Two consumer apps with *different* grids, so no two processes
        // issue the same schedule-cache query (see module docs).
        let s = cross_node_scenario(); // widest wave 4 tasks -> 2 nodes
        let expected = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(expected.verify_failures, 0);

        let got = run_distributed(
            &s,
            MappingStrategy::RoundRobin,
            2,
            &Recorder::disabled(),
            false,
            true,
        );
        assert_eq!(got.verify_failures, 0);
        assert!(got.errors.is_empty(), "{:?}", got.errors);
        assert_eq!(
            got.ledger, expected.ledger,
            "merged ledger must be byte-identical"
        );
        assert_eq!(got.staged_buffers, expected.staged_buffers);
    }

    #[test]
    fn p2p_ledger_matches_single_process_and_data_bypasses_hub() {
        let s = cross_node_scenario();
        let expected = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(expected.verify_failures, 0);

        // Shm off: this test pins down the p2p *wire* topology, so the
        // data plane must actually use the direct links it asserts on.
        let rec = Recorder::enabled();
        let got = run_distributed(&s, MappingStrategy::RoundRobin, 2, &rec, true, false);
        assert_eq!(got.verify_failures, 0);
        assert!(got.errors.is_empty(), "{:?}", got.errors);
        assert_eq!(
            got.ledger, expected.ledger,
            "p2p merged ledger must be byte-identical to the single-process run"
        );
        assert_eq!(got.gets, expected.reports.len() as u64);
        assert_eq!(got.staged_buffers, expected.staged_buffers);

        // The correctness anchor of the p2p topology: the hub carried
        // control traffic only, every PullData frame took a direct link.
        let snap = rec.metrics_snapshot();
        assert_eq!(
            snap.counter("net.pull_frames_hub"),
            0,
            "no PullData may traverse the hub in p2p mode"
        );
        assert!(
            snap.counter("net.pull_frames_p2p") > 0,
            "cross-node pulls must flow over direct peer links"
        );
    }

    #[test]
    fn telemetry_ships_and_stitches_across_processes() {
        // Same placement as the p2p gate test: RoundRobin forces the
        // consumers' gets to pull across nodes, so the traces must
        // contain hops to stitch — here over shm rings (the joiners
        // share this host and shm stays on), proving the merge stitches
        // shm sends/recvs exactly like wire ones.
        let s = cross_node_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut joiners = Vec::new();
        for node in 0..2 {
            let addr = addr.clone();
            let sc = s.clone();
            joiners.push(std::thread::spawn(move || {
                join(
                    &addr,
                    node,
                    move |_, _| Ok(sc),
                    &JoinOptions {
                        timeout: Duration::from_secs(20),
                        // Per-joiner recorders, as real processes have.
                        recorder: Recorder::enabled(),
                        flight: FlightRecorder::enabled(),
                        ..JoinOptions::default()
                    },
                )
            }));
        }
        let outcome = serve(
            &listener,
            "",
            "",
            &s,
            &ServeOptions {
                strategy: MappingStrategy::RoundRobin,
                timeout: Duration::from_secs(20),
                p2p: true,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        for j in joiners {
            j.join().unwrap().unwrap();
        }

        assert_eq!(outcome.telemetry.len(), 2);
        for t in &outcome.telemetry {
            assert!(t.complete, "node {} telemetry must be complete", t.node);
            assert!(!t.events.is_empty(), "node {} shipped no events", t.node);
            assert!(
                t.counters.contains_key("net.frames"),
                "node {} counters must travel on the last batch",
                t.node
            );
        }
        let merged = insitu_obs::merge_traces(outcome.telemetry);
        assert!(merged.stitched > 0, "cross-node pulls must stitch");
        assert_eq!(merged.unmatched_sends, 0, "{:?}", merged.warnings());
        assert_eq!(merged.unmatched_recvs, 0, "{:?}", merged.warnings());
        assert!(merged.fully_stitched());
        assert!(merged.incomplete.is_empty());
    }

    #[test]
    fn join_fails_fast_on_unreachable_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener); // nothing listens here anymore
        let err = join(
            &addr,
            0,
            |_, _| -> Result<Scenario, String> { unreachable!("never welcomed") },
            &JoinOptions {
                timeout: Duration::from_millis(150),
                ..JoinOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains(&addr), "error must name the address: {err}");
    }

    #[test]
    fn serve_fails_fast_when_joiners_never_arrive() {
        let mut s = concurrent_scenario(4, 4, 4, pattern_pairs(&[2, 2, 1])[0]);
        s.cores_per_node = 4;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve(
            &listener,
            "",
            "",
            &s,
            &ServeOptions {
                timeout: Duration::from_millis(150),
                ..ServeOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("joiners"), "{err}");
    }
}
