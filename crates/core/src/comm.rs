//! Intra-application collectives over HybridDART: the communicator the
//! dynamically formed process groups (§IV.C) hand to application
//! routines. Implements the small set of operations the paper's synthetic
//! workloads and coupled models need — barrier, broadcast, gather,
//! all-reduce — on top of tagged mailbox messages, with locality-aware
//! byte accounting like every other transfer in the system.

use crate::threaded::TAG_COLLECTIVE_BASE;
use insitu_dart::{DartRuntime, Mailbox, Msg};
use insitu_fabric::{ClientId, TrafficClass};
use insitu_util::Bytes;
use insitu_workflow::AppGroup;
use std::sync::Arc;

/// Reduction operators for [`GroupComm::allreduce_f64`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Minimum contribution.
    Min,
    /// Maximum contribution.
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// A rank's handle on its application group: the `MPI_Comm` analog.
///
/// Collectives are matched by an internal sequence number, so every
/// member must invoke the same collectives in the same order (the usual
/// SPMD contract). Messages of other tags arriving meanwhile (e.g. halo
/// payloads) are stashed and re-delivered by [`GroupComm::recv_tagged`].
pub struct GroupComm<'a> {
    dart: &'a Arc<DartRuntime>,
    group: &'a AppGroup,
    rank: u32,
    client: ClientId,
    mailbox: &'a Mailbox,
    seq: std::cell::Cell<u64>,
    stash: std::cell::RefCell<Vec<Msg>>,
}

impl<'a> GroupComm<'a> {
    /// Create the handle for `rank` of `group`, whose thread owns
    /// `mailbox`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn new(
        dart: &'a Arc<DartRuntime>,
        group: &'a AppGroup,
        rank: u32,
        mailbox: &'a Mailbox,
    ) -> Self {
        assert!(rank < group.size(), "rank {rank} out of range");
        GroupComm {
            dart,
            group,
            rank,
            client: group.client_of(rank),
            mailbox,
            seq: std::cell::Cell::new(0),
            stash: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// This rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> u32 {
        self.group.size()
    }

    fn send_to_rank(&self, dest: u32, tag: u64, payload: Bytes) {
        self.dart.send(
            self.group.app_id,
            TrafficClass::IntraApp,
            self.client,
            self.group.client_of(dest),
            tag,
            payload,
        );
    }

    /// Receive the next message with `tag`, stashing mismatches.
    pub fn recv_tagged(&self, tag: u64) -> Msg {
        let mut stash = self.stash.borrow_mut();
        if let Some(pos) = stash.iter().position(|m| m.tag == tag) {
            return stash.swap_remove(pos);
        }
        loop {
            let m = self.mailbox.recv();
            if m.tag == tag {
                return m;
            }
            stash.push(m);
        }
    }

    fn next_tag(&self, round: u64) -> u64 {
        // Tag space: base | app | seq | round. The app id keeps bundled
        // applications sharing a node from colliding.
        let s = self.seq.get();
        TAG_COLLECTIVE_BASE
            | ((self.group.app_id as u64 & 0xffff) << 32)
            | ((s & 0xffffff) << 8)
            | (round & 0xff)
    }

    fn bump_seq(&self) {
        self.seq.set(self.seq.get() + 1);
    }

    /// Block until every group member has entered the barrier.
    /// Dissemination algorithm: ceil(log2(n)) rounds of pairwise tokens.
    pub fn barrier(&self) {
        let n = self.size();
        if n > 1 {
            let mut dist = 1u32;
            let mut round = 0u64;
            while dist < n {
                let to = (self.rank + dist) % n;
                let tag = self.next_tag(round);
                self.send_to_rank(to, tag, Bytes::new());
                let _ = self.recv_tagged(tag);
                dist <<= 1;
                round += 1;
            }
        }
        self.bump_seq();
    }

    /// Broadcast `data` from `root` to every member; returns the payload.
    /// Binomial-tree dissemination.
    pub fn broadcast(&self, root: u32, data: Bytes) -> Bytes {
        let n = self.size();
        assert!(root < n, "root {root} out of range");
        // Work in the rotated space where root is rank 0.
        let vrank = (self.rank + n - root) % n;
        let tag = self.next_tag(0);
        let payload = if vrank == 0 {
            data
        } else {
            self.recv_tagged(tag).payload
        };
        // Binomial forwarding: once vrank v holds the data it sends to
        // v + 2^j for every power of two 2^j >= v + 1 (so each vrank
        // receives exactly once, from the highest power of two below it).
        let mut k = if vrank == 0 {
            1
        } else {
            (vrank + 1).next_power_of_two()
        };
        while vrank + k < n {
            let dest = (vrank + k + root) % n;
            self.send_to_rank(dest, tag, payload.clone());
            k <<= 1;
        }
        self.bump_seq();
        payload
    }

    /// Gather every rank's payload at `root` (rank order). Non-roots get
    /// an empty vec.
    pub fn gather(&self, root: u32, data: Bytes) -> Vec<Bytes> {
        let n = self.size();
        assert!(root < n, "root {root} out of range");
        let tag = self.next_tag(0);
        let out = if self.rank == root {
            let mut slots: Vec<Option<Bytes>> = vec![None; n as usize];
            slots[self.rank as usize] = Some(data);
            for _ in 0..n - 1 {
                let m = self.recv_tagged(tag);
                // Sender rank rides in the first 4 payload bytes.
                let sender = u32::from_ne_bytes(m.payload[..4].try_into().unwrap());
                slots[sender as usize] = Some(Bytes::copy_from_slice(&m.payload[4..]));
            }
            slots
                .into_iter()
                .map(|s| s.expect("missing contribution"))
                .collect()
        } else {
            let mut framed = Vec::with_capacity(4 + data.len());
            framed.extend_from_slice(&self.rank.to_ne_bytes());
            framed.extend_from_slice(&data);
            self.send_to_rank(root, tag, Bytes::from(framed));
            Vec::new()
        };
        self.bump_seq();
        out
    }

    /// All-reduce one `f64`: gather-to-0 + broadcast (correct for any
    /// group size; these groups are small enough that the log-round
    /// algorithms buy nothing).
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        let contributions = self.gather(0, Bytes::copy_from_slice(&value.to_ne_bytes()));
        let reduced = if self.rank == 0 {
            let acc = contributions
                .iter()
                .map(|b| f64::from_ne_bytes(b[..8].try_into().unwrap()))
                .reduce(|a, b| op.apply(a, b))
                .expect("non-empty group");
            Bytes::copy_from_slice(&acc.to_ne_bytes())
        } else {
            Bytes::new()
        };
        let out = self.broadcast(0, reduced);
        f64::from_ne_bytes(out[..8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_fabric::{MachineSpec, Placement, TransferLedger};

    fn with_group<F>(n: u32, f: F)
    where
        F: Fn(GroupComm<'_>) + Send + Sync + 'static,
    {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 4), n));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let group = Arc::new(AppGroup {
            app_id: 7,
            members: (0..n).collect(),
        });
        let f = Arc::new(f);
        let mut handles = Vec::new();
        for rank in 0..n {
            let dart = Arc::clone(&dart);
            let group = Arc::clone(&group);
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                let mailbox = dart.take_mailbox(group.client_of(rank));
                let comm = GroupComm::new(&dart, &group, rank, &mailbox);
                f(comm);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn barrier_completes_all_sizes() {
        for n in [1u32, 2, 3, 5, 8] {
            with_group(n, |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        for n in [1u32, 2, 3, 6, 7] {
            with_group(n, move |comm| {
                for root in 0..comm.size() {
                    let data = if comm.rank() == root {
                        Bytes::from(format!("hello-{root}"))
                    } else {
                        Bytes::new()
                    };
                    let got = comm.broadcast(root, data);
                    assert_eq!(&got[..], format!("hello-{root}").as_bytes());
                }
            });
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        with_group(5, |comm| {
            let mine = Bytes::from(vec![comm.rank() as u8; 2]);
            let all = comm.gather(2, mine);
            if comm.rank() == 2 {
                assert_eq!(all.len(), 5);
                for (r, b) in all.iter().enumerate() {
                    assert_eq!(&b[..], &[r as u8, r as u8]);
                }
            } else {
                assert!(all.is_empty());
            }
        });
    }

    #[test]
    fn allreduce_sum_min_max() {
        with_group(6, |comm| {
            let v = comm.rank() as f64 + 1.0; // 1..=6
            assert_eq!(comm.allreduce_f64(v, ReduceOp::Sum), 21.0);
            assert_eq!(comm.allreduce_f64(v, ReduceOp::Min), 1.0);
            assert_eq!(comm.allreduce_f64(v, ReduceOp::Max), 6.0);
        });
    }

    #[test]
    fn collectives_account_intra_app_traffic() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 1), 2));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let group = Arc::new(AppGroup {
            app_id: 3,
            members: vec![0, 1],
        });
        let d2 = Arc::clone(&dart);
        let g2 = Arc::clone(&group);
        let h = std::thread::spawn(move || {
            let mb = d2.take_mailbox(1);
            let comm = GroupComm::new(&d2, &g2, 1, &mb);
            comm.broadcast(0, Bytes::new())
        });
        let mb = dart.take_mailbox(0);
        let comm = GroupComm::new(&dart, &group, 0, &mb);
        comm.broadcast(0, Bytes::from_static(b"12345678"));
        h.join().unwrap();
        // Two clients on different nodes: payload crossed the network.
        let snap = dart.ledger().snapshot();
        assert_eq!(snap.network_bytes(TrafficClass::IntraApp), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_rank() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(1, 2), 2));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let group = AppGroup {
            app_id: 1,
            members: vec![0, 1],
        };
        let mb = dart.take_mailbox(0);
        let _ = GroupComm::new(&dart, &group, 9, &mb);
    }
}
