//! Scenario definitions: a workflow plus its coupling relationships and
//! workload parameters, including builders for the paper's two evaluation
//! scenarios (CAP and SAP).

use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::NetworkModel;
use insitu_workflow::{AppSpec, WorkflowSpec};

/// A data-coupling relationship: each consumer application retrieves, from
/// `producer_app`'s output variable, the region its own decomposition
/// assigns to each task (the overlapped-domain coupling of Fig. 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingSpec {
    /// Shared variable name.
    pub var: String,
    /// Producing application id.
    pub producer_app: u32,
    /// Consuming application ids.
    pub consumer_apps: Vec<u32>,
    /// `true` for concurrent coupling (`*_cont` operators, no DHT),
    /// `false` for sequential coupling through the CoDS store.
    pub concurrent: bool,
    /// The coupled data region. `None` couples the entire shared domain
    /// (the end-to-end workflow case of Fig. 1); `Some(box)` couples only
    /// that region (the interface-region case, e.g. the boundary layer the
    /// climate models exchange).
    pub region: Option<BoundingBox>,
}

/// A standing query: `subscriber_app` receives a push of every matching
/// region of `var` as the producer puts it — Linda-style `rd`-with-
/// notification layered over the coupling in `CouplingSpec` for the same
/// variable. Subscriptions never replace a coupling; they ride one, and
/// the subscriber still issues a verification `get` per pushed version so
/// producer-side consumption accounting stays deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubscriptionSpec {
    /// Shared variable name (must match a coupling's variable).
    pub var: String,
    /// Producing application id (must match the coupling's producer).
    pub producer_app: u32,
    /// Subscribing application id.
    pub subscriber_app: u32,
    /// Push stride: only versions with `version % every_k == 0` are
    /// pushed. Must be at least 1.
    pub every_k: u64,
    /// Region of interest. `None` subscribes to the producer's whole
    /// domain.
    pub region: Option<BoundingBox>,
    /// Per-piece bounded queue depth (versions buffered before the
    /// oldest is dropped and the subscriber resyncs with a get).
    pub queue_cap: usize,
}

/// A complete experiment scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Cores per compute node (12 on Jaguar XT5).
    pub cores_per_node: u32,
    /// The workflow (apps must carry decompositions).
    pub workflow: WorkflowSpec,
    /// Data couplings between the apps.
    pub couplings: Vec<CouplingSpec>,
    /// Standing queries layered over the couplings.
    pub subscriptions: Vec<SubscriptionSpec>,
    /// Stencil halo width for intra-application exchanges.
    pub halo: u64,
    /// Bytes per field element.
    pub elem_bytes: u64,
    /// Network constants for the time model.
    pub model: NetworkModel,
    /// Coupling iterations (versions) to run. Iteration `v` produces and
    /// consumes version `v`; schedules are computed once and replayed
    /// (§IV.A), and producers of concurrent couplings reclaim version
    /// `v-1` once fully consumed.
    pub iterations: u64,
}

impl Scenario {
    /// Set the iteration count (builder style).
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        assert!(iterations >= 1, "at least one iteration");
        self.iterations = iterations;
        self
    }
    /// Decomposition of an app (must be declared).
    pub fn decomposition(&self, app: u32) -> &Decomposition {
        self.workflow
            .app(app)
            .unwrap_or_else(|| panic!("unknown app {app}"))
            .decomposition
            .as_ref()
            .unwrap_or_else(|| panic!("app {app} lacks a decomposition"))
    }

    /// The coupling that feeds `consumer`, if any.
    pub fn coupling_into(&self, consumer: u32) -> Option<&CouplingSpec> {
        self.couplings
            .iter()
            .find(|c| c.consumer_apps.contains(&consumer))
    }

    /// The standing queries held by `subscriber`.
    pub fn subscriptions_of(&self, subscriber: u32) -> Vec<&SubscriptionSpec> {
        self.subscriptions
            .iter()
            .filter(|s| s.subscriber_app == subscriber)
            .collect()
    }

    /// The coupling a subscription rides (same variable, same producer).
    /// Subscriptions are validated to have one, so this only returns
    /// `None` for hand-built scenarios that skipped validation.
    pub fn coupling_of_subscription(&self, sub: &SubscriptionSpec) -> Option<&CouplingSpec> {
        self.couplings
            .iter()
            .find(|c| c.var == sub.var && c.producer_app == sub.producer_app)
    }
}

/// A named pair of distribution types for the Fig. 8/9 pattern sweeps.
#[derive(Clone, Copy, Debug)]
pub struct PatternPair {
    /// Producer-side distribution.
    pub producer: Distribution,
    /// Consumer-side distribution.
    pub consumer: Distribution,
}

impl PatternPair {
    /// Label like `blocked/block-cyclic`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.producer.label(), self.consumer.label())
    }
}

/// The pattern pairs swept by Figs. 8 and 9: matched pairs first, then the
/// mismatched ones where data-centric mapping loses its edge.
pub fn pattern_pairs(block: &[u64]) -> Vec<PatternPair> {
    let bc = Distribution::block_cyclic(block);
    vec![
        PatternPair {
            producer: Distribution::Blocked,
            consumer: Distribution::Blocked,
        },
        PatternPair {
            producer: bc,
            consumer: bc,
        },
        PatternPair {
            producer: Distribution::Blocked,
            consumer: bc,
        },
        PatternPair {
            producer: bc,
            consumer: Distribution::Blocked,
        },
        PatternPair {
            producer: Distribution::Blocked,
            consumer: Distribution::Cyclic,
        },
    ]
}

/// Pick a process grid of `n` ranks over `ndim` dimensions, as square /
/// cubic as possible (largest factors first).
pub fn balanced_grid(n: u64, ndim: usize) -> Vec<u64> {
    let mut dims = vec![1u64; ndim];
    let mut rem = n;
    while rem > 1 {
        // Smallest prime factor of the remainder, assigned to the
        // currently smallest dimension, keeps the grid near-cubic.
        let f = (2..)
            .find(|f| rem % f == 0 || f * f > rem)
            .map(|f| if rem % f == 0 { f } else { rem });
        let f = f.unwrap();
        let d = (0..ndim).min_by_key(|&i| dims[i]).unwrap();
        dims[d] *= f;
        rem /= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// Pick a process grid of `n` ranks *aligned* with a producer grid: in
/// each dimension the consumer count divides or is divided by the
/// producer count, preferring alignment in the earliest (slowest-varying)
/// dimensions so one consumer task's region maps to *consecutive*
/// producer ranks — the decomposition a coupling-aware user declares
/// (§III.B: decompositions are user-specified). Falls back to
/// [`balanced_grid`] when `n` has no such factorization.
pub fn aligned_grid(n: u64, producer: &[u64]) -> Vec<u64> {
    let ndim = producer.len();
    fn divisors(n: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).filter(|d| n % d == 0).collect();
        v.sort_unstable();
        v
    }
    // Enumerate factorizations of n into ndim ordered factors.
    fn enumerate(n: u64, ndim: usize, cur: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if ndim == 1 {
            cur.push(n);
            out.push(cur.clone());
            cur.pop();
            return;
        }
        for d in divisors(n) {
            cur.push(d);
            enumerate(n / d, ndim - 1, cur, out);
            cur.pop();
        }
    }
    let mut all = Vec::new();
    enumerate(n, ndim, &mut Vec::new(), &mut all);

    // Number of consecutive producer-rank runs one consumer task covers
    // when every consumer count divides the producer count. 1 run =
    // perfectly packable onto the producers' nodes.
    let rank_runs = |g: &Vec<u64>| -> Option<u64> {
        if (0..ndim).any(|d| producer[d] % g[d] != 0) {
            return None;
        }
        let extents: Vec<u64> = (0..ndim).map(|d| producer[d] / g[d]).collect();
        // Covered ranks of consumer task (0,...,0), row-major.
        let mut ranks = Vec::new();
        let mut c = vec![0u64; ndim];
        loop {
            let mut r = 0u64;
            for d in 0..ndim {
                r = r * producer[d] + c[d];
            }
            ranks.push(r);
            let mut d = ndim;
            let mut adv = false;
            while d > 0 {
                d -= 1;
                if c[d] + 1 < extents[d] {
                    c[d] += 1;
                    c[d + 1..].iter_mut().for_each(|x| *x = 0);
                    adv = true;
                    break;
                }
            }
            if !adv {
                break;
            }
        }
        ranks.sort_unstable();
        Some(1 + ranks.windows(2).filter(|w| w[1] != w[0] + 1).count() as u64)
    };

    // Primary: minimal runs among component-wise dividing grids.
    if let Some(best) = all
        .iter()
        .filter_map(|g| rank_runs(g).map(|r| (r, g.clone())))
        .min_by_key(|(r, g)| (*r, *g.iter().max().unwrap(), g.clone()))
    {
        return best.1;
    }
    // Fallback: per-dim alignment flags, earlier dims weighted heavier
    // (misalignment there strides across distant ranks). Only *coarser*
    // consumer dims (producer % g == 0) count as aligned: oversubscribing
    // a dimension beyond the producer's count risks empty edge ranks on
    // non-divisible extents. Ties go to the more balanced grid.
    let score = |g: &Vec<u64>| -> (u64, std::cmp::Reverse<u64>) {
        let mut s = 0u64;
        for d in 0..ndim {
            if producer[d] % g[d] == 0 {
                s += 1 << (ndim - d);
            }
        }
        (s, std::cmp::Reverse(*g.iter().max().unwrap()))
    };
    all.into_iter()
        .max_by_key(score)
        .unwrap_or_else(|| balanced_grid(n, ndim))
}

/// [`concurrent_scenario`] with explicit process grids (used by the
/// weak-scaling experiments, which must keep the decomposition family
/// fixed while only one dimension grows).
pub fn concurrent_scenario_with_grids(
    pgrid: &[u64],
    cgrid: &[u64],
    region_side: u64,
    pattern: PatternPair,
) -> Scenario {
    let prod_tasks: u64 = pgrid.iter().product();
    let cons_tasks: u64 = cgrid.iter().product();
    let domain_sizes: Vec<u64> = pgrid.iter().map(|&p| p * region_side).collect();
    let domain = BoundingBox::from_sizes(&domain_sizes);
    let producer_dec = Decomposition::new(domain, ProcessGrid::new(pgrid), pattern.producer);
    let consumer_dec = Decomposition::new(domain, ProcessGrid::new(cgrid), pattern.consumer);
    let workflow = WorkflowSpec {
        apps: vec![
            AppSpec::new(1, "CAP1", prod_tasks as u32).with_decomposition(producer_dec),
            AppSpec::new(2, "CAP2", cons_tasks as u32).with_decomposition(consumer_dec),
        ],
        edges: vec![],
        bundles: vec![vec![1, 2]],
    };
    Scenario {
        name: format!("concurrent {prod_tasks}/{cons_tasks} {}", pattern.label()),
        cores_per_node: 12,
        workflow,
        couplings: vec![CouplingSpec {
            var: "coupled".into(),
            producer_app: 1,
            consumer_apps: vec![2],
            concurrent: true,
            region: None,
        }],
        subscriptions: vec![],
        halo: 2,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    }
}

/// Build the paper's **concurrent coupling scenario**: CAP1 (producer,
/// `prod_tasks` cores) and CAP2 (consumer, `cons_tasks` cores) run
/// concurrently as one bundle, sharing a 3-D domain sized so each CAP1
/// task owns a `region_side`^3 block (128^3 = 16 MB of f64 in the paper).
pub fn concurrent_scenario(
    prod_tasks: u64,
    cons_tasks: u64,
    region_side: u64,
    pattern: PatternPair,
) -> Scenario {
    let pgrid = balanced_grid(prod_tasks, 3);
    let cgrid = aligned_grid(cons_tasks, &pgrid);
    concurrent_scenario_with_grids(&pgrid, &cgrid, region_side, pattern)
}

/// [`sequential_scenario`] with explicit process grids.
pub fn sequential_scenario_with_grids(
    pgrid: &[u64],
    c1grid: &[u64],
    c2grid: &[u64],
    region_side: u64,
    pattern: PatternPair,
) -> Scenario {
    let prod_tasks: u64 = pgrid.iter().product();
    let cons1_tasks: u64 = c1grid.iter().product();
    let cons2_tasks: u64 = c2grid.iter().product();
    let domain_sizes: Vec<u64> = pgrid.iter().map(|&p| p * region_side).collect();
    let domain = BoundingBox::from_sizes(&domain_sizes);
    let producer_dec = Decomposition::new(domain, ProcessGrid::new(pgrid), pattern.producer);
    let c1 = Decomposition::new(domain, ProcessGrid::new(c1grid), pattern.consumer);
    let c2 = Decomposition::new(domain, ProcessGrid::new(c2grid), pattern.consumer);
    let workflow = WorkflowSpec {
        apps: vec![
            AppSpec::new(1, "SAP1", prod_tasks as u32).with_decomposition(producer_dec),
            AppSpec::new(2, "SAP2", cons1_tasks as u32).with_decomposition(c1),
            AppSpec::new(3, "SAP3", cons2_tasks as u32).with_decomposition(c2),
        ],
        edges: vec![(1, 2), (1, 3)],
        bundles: vec![vec![1], vec![2], vec![3]],
    };
    Scenario {
        name: format!(
            "sequential {prod_tasks}/({cons1_tasks}+{cons2_tasks}) {}",
            pattern.label()
        ),
        cores_per_node: 12,
        workflow,
        couplings: vec![CouplingSpec {
            var: "coupled".into(),
            producer_app: 1,
            consumer_apps: vec![2, 3],
            concurrent: false,
            region: None,
        }],
        subscriptions: vec![],
        halo: 2,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    }
}

/// Build the paper's **sequential coupling scenario**: SAP1 produces into
/// CoDS on `prod_tasks` cores; SAP2 (`cons1_tasks`) and SAP3
/// (`cons2_tasks`) then launch on the same nodes and retrieve the coupled
/// data.
pub fn sequential_scenario(
    prod_tasks: u64,
    cons1_tasks: u64,
    cons2_tasks: u64,
    region_side: u64,
    pattern: PatternPair,
) -> Scenario {
    let pgrid = balanced_grid(prod_tasks, 3);
    let c1grid = aligned_grid(cons1_tasks, &pgrid);
    let c2grid = aligned_grid(cons2_tasks, &pgrid);
    sequential_scenario_with_grids(&pgrid, &c1grid, &c2grid, region_side, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_grid_products() {
        for (n, d) in [
            (512u64, 3usize),
            (64, 3),
            (128, 3),
            (384, 3),
            (8192, 3),
            (12, 2),
        ] {
            let g = balanced_grid(n, d);
            assert_eq!(g.iter().product::<u64>(), n, "grid {g:?} for {n}");
            assert_eq!(g.len(), d);
        }
    }

    #[test]
    fn balanced_grid_is_roughly_cubic() {
        let g = balanced_grid(512, 3);
        assert_eq!(g, vec![8, 8, 8]);
        let g = balanced_grid(64, 3);
        assert_eq!(g, vec![4, 4, 4]);
    }

    #[test]
    fn concurrent_scenario_paper_config() {
        // The paper's small config: CAP1=512, CAP2=64, 128^3 regions.
        let s = concurrent_scenario(512, 64, 128, pattern_pairs(&[32, 32, 32])[0]);
        let d = s.decomposition(1);
        assert_eq!(d.num_ranks(), 512);
        // 8 GB total coupled data: 1024^3 cells x 8 B.
        assert_eq!(d.domain().num_cells() * 8, 8 << 30);
        // Each producer task: 16 MB.
        assert_eq!(d.rank_cells(0) * 8, 16 << 20);
        // Each CAP2 task retrieves 128 MB.
        let c = s.decomposition(2);
        assert_eq!(c.rank_cells(0) * 8, 128 << 20);
        s.workflow.validate().unwrap();
    }

    #[test]
    fn sequential_scenario_paper_config() {
        let s = sequential_scenario(512, 128, 384, 128, pattern_pairs(&[32, 32, 32])[0]);
        assert_eq!(s.decomposition(1).num_ranks(), 512);
        // SAP2: 64 MB per task; SAP3: ~22 MB per task.
        assert_eq!(s.decomposition(2).rank_cells(0) * 8, 64 << 20);
        let sap3 = s.decomposition(3).rank_cells(0) * 8;
        assert!(
            sap3 > 21 << 20 && sap3 < 23 << 20,
            "SAP3 per-task {} MB",
            sap3 >> 20
        );
        s.workflow.validate().unwrap();
        // Two waves: SAP1, then SAP2+SAP3 concurrently.
        let waves = s.workflow.bundle_waves().unwrap();
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[1].len(), 2);
    }

    #[test]
    fn pattern_pairs_cover_matched_and_mismatched() {
        let pairs = pattern_pairs(&[4, 4, 4]);
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].label(), "blocked/blocked");
        assert_eq!(pairs[2].label(), "blocked/block-cyclic");
    }

    #[test]
    fn coupling_lookup() {
        let s = sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        assert!(s.coupling_into(2).is_some());
        assert!(s.coupling_into(3).is_some());
        assert!(s.coupling_into(1).is_none());
    }
}
