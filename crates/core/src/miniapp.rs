//! A real data-parallel mini-application on the framework: 2-D Jacobi
//! heat diffusion. Unlike the synthetic CAP/SAP workloads (which move
//! verifiable but meaningless bytes), this solver exchanges *real*
//! boundary rows through HybridDART mailboxes every iteration, relaxes
//! its local block, reduces the global residual with group collectives,
//! and publishes the converged field into CoDS for a consumer — i.e. it
//! exercises the full paper stack with a computation whose answer can be
//! checked against a serial reference bit for bit.

use crate::comm::{GroupComm, ReduceOp};
use insitu_cods::{CodsConfig, CodsSpace, Dht};
use insitu_dart::{DartRuntime, Msg};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{
    ClientId, LedgerSnapshot, MachineSpec, Placement, TrafficClass, TransferLedger,
};
use insitu_sfc::HilbertCurve;
use insitu_util::Bytes;
use insitu_workflow::AppGroup;
use std::sync::Arc;

/// Configuration of a Jacobi run.
#[derive(Clone, Copy, Debug)]
pub struct JacobiConfig {
    /// Interior grid size (cells per side; the hot boundary is implicit).
    pub size: u64,
    /// Process grid (rows, cols); product = task count.
    pub grid: [u64; 2],
    /// Jacobi sweeps to run.
    pub sweeps: u32,
    /// Cores per simulated node.
    pub cores_per_node: u32,
}

/// Result of a Jacobi run.
#[derive(Clone, Debug)]
pub struct JacobiOutcome {
    /// The final field, row-major over the full interior.
    pub field: Vec<f64>,
    /// Global max-abs update of the final sweep (residual).
    pub residual: f64,
    /// Byte ledger of the whole run (halo + collective + publish traffic).
    pub ledger: LedgerSnapshot,
}

/// Serial reference: identical sweeps on one grid. Boundary conditions:
/// the left wall is held at 1.0, the other three walls at 0.0.
pub fn jacobi_serial(size: u64, sweeps: u32) -> (Vec<f64>, f64) {
    let n = size as usize;
    let mut cur = vec![0.0f64; n * n];
    let mut next = vec![0.0f64; n * n];
    let mut residual = 0.0;
    let at = |g: &[f64], r: i64, c: i64| -> f64 {
        if c < 0 {
            1.0 // hot left wall
        } else if r < 0 || r >= n as i64 || c >= n as i64 {
            0.0
        } else {
            g[r as usize * n + c as usize]
        }
    };
    for _ in 0..sweeps {
        residual = 0.0;
        for r in 0..n as i64 {
            for c in 0..n as i64 {
                let v = 0.25
                    * (at(&cur, r - 1, c)
                        + at(&cur, r + 1, c)
                        + at(&cur, r, c - 1)
                        + at(&cur, r, c + 1));
                let d = (v - cur[r as usize * n + c as usize]).abs();
                if d > residual {
                    residual = d;
                }
                next[r as usize * n + c as usize] = v;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    (cur, residual)
}

const TAG_HALO_BASE: u64 = 0x4a41_0000_0000; // "JA"

fn halo_tag(sweep: u32, dir: u8) -> u64 {
    TAG_HALO_BASE | ((sweep as u64) << 8) | dir as u64
}

fn encode(v: &[f64]) -> Bytes {
    let mut b = Vec::with_capacity(v.len() * 8);
    for x in v {
        b.extend_from_slice(&x.to_ne_bytes());
    }
    Bytes::from(b)
}

fn decode(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_ne_bytes(c.try_into().unwrap()))
        .collect()
}

/// Run the distributed solver and return the assembled field (gathered
/// through CoDS), the global residual and the transfer ledger.
///
/// # Panics
/// Panics if the process grid does not divide the domain.
pub fn run_jacobi(cfg: &JacobiConfig) -> JacobiOutcome {
    let tasks = (cfg.grid[0] * cfg.grid[1]) as u32;
    assert!(
        cfg.size % cfg.grid[0] == 0 && cfg.size % cfg.grid[1] == 0,
        "grid must divide the domain"
    );
    // One extra client gathers the published field.
    let clients = tasks + 1;
    let machine = MachineSpec::new(clients.div_ceil(cfg.cores_per_node), cfg.cores_per_node);
    let placement = Arc::new(Placement::pack_sequential(machine, clients));
    let ledger = Arc::new(TransferLedger::new());
    let dart = DartRuntime::new(placement, Arc::clone(&ledger));
    let order = 64 - (cfg.size - 1).leading_zeros().max(1);
    let dht_clients: Vec<ClientId> = (0..machine.nodes).map(|n| machine.core(n, 0)).collect();
    let dht = Dht::new(Box::new(HilbertCurve::new(2, order.max(1))), dht_clients);
    let space = CodsSpace::new(Arc::clone(&dart), dht, CodsConfig::default());
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[cfg.size, cfg.size]),
        ProcessGrid::new(&cfg.grid),
        Distribution::Blocked,
    );
    let group = Arc::new(AppGroup {
        app_id: 1,
        members: (0..tasks).collect(),
    });

    let mut handles = Vec::new();
    for rank in 0..tasks {
        let dart = Arc::clone(&dart);
        let space = Arc::clone(&space);
        let group = Arc::clone(&group);
        let cfg = *cfg;
        handles.push(std::thread::spawn(move || {
            jacobi_rank(&cfg, &dec, rank, &dart, &space, &group)
        }));
    }
    let residual = handles
        .into_iter()
        .map(|h| h.join().expect("solver rank panicked"))
        .fold(0.0f64, f64::max);

    // Gather the published field through the space (the in-situ consumer).
    let full = BoundingBox::from_sizes(&[cfg.size, cfg.size]);
    let (field, _) = space
        .get_seq(tasks, 2, "temperature", cfg.sweeps as u64, &full)
        .expect("field gather failed");
    JacobiOutcome {
        field: field.into_vec(),
        residual,
        ledger: ledger.snapshot(),
    }
}

/// One solver rank: ghosted local block, per-sweep halo exchange, local
/// relaxation, final residual all-reduce and field publish.
fn jacobi_rank(
    cfg: &JacobiConfig,
    dec: &Decomposition,
    rank: u32,
    dart: &Arc<DartRuntime>,
    space: &Arc<CodsSpace>,
    group: &Arc<AppGroup>,
) -> f64 {
    let client = group.client_of(rank);
    let mailbox = dart.take_mailbox(client);
    let comm = GroupComm::new(dart, group, rank, &mailbox);

    let region = dec.blocked_box(rank as u64).expect("divisible grid");
    let (rows, cols) = (region.extent(0) as usize, region.extent(1) as usize);
    let coords = dec.coords_of(rank as u64);
    let (gr, gc) = (coords[0], coords[1]);
    let neighbor = |dr: i64, dc: i64| -> Option<ClientId> {
        let nr = gr as i64 + dr;
        let nc = gc as i64 + dc;
        if nr < 0 || nc < 0 || nr >= cfg.grid[0] as i64 || nc >= cfg.grid[1] as i64 {
            None
        } else {
            Some(group.client_of(dec.grid().rank_of(&[nr as u64, nc as u64, 0, 0]) as u32))
        }
    };

    // Ghosted local block, row-major (rows+2) x (cols+2). Boundary ghosts
    // hold the wall conditions; neighbor ghosts are refreshed per sweep.
    let gw = cols + 2;
    let mut cur = vec![0.0f64; (rows + 2) * gw];
    let mut next = cur.clone();
    let set_walls = |g: &mut [f64]| {
        if gc == 0 {
            for r in 0..rows + 2 {
                g[r * gw] = 1.0; // hot left wall
            }
        }
    };
    set_walls(&mut cur);
    set_walls(&mut next);

    // All receives go through the group communicator's tagged stash: a
    // faster rank's collective contribution can arrive interleaved with
    // halo payloads, and a second stash would strand it.
    let recv_tag = |tag: u64| -> Msg { comm.recv_tagged(tag) };

    let mut residual = 0.0f64;
    for sweep in 0..cfg.sweeps {
        // Exchange halos: directions 0=up,1=down,2=left,3=right; a
        // message's tag carries the direction *from the receiver's view*.
        let top: Vec<f64> = cur[gw + 1..gw + 1 + cols].to_vec();
        let bottom: Vec<f64> = cur[rows * gw + 1..rows * gw + 1 + cols].to_vec();
        let left: Vec<f64> = (1..=rows).map(|r| cur[r * gw + 1]).collect();
        let right: Vec<f64> = (1..=rows).map(|r| cur[r * gw + cols]).collect();
        let sends = [
            (neighbor(-1, 0), halo_tag(sweep, 1), top),
            (neighbor(1, 0), halo_tag(sweep, 0), bottom),
            (neighbor(0, -1), halo_tag(sweep, 3), left),
            (neighbor(0, 1), halo_tag(sweep, 2), right),
        ];
        for (peer, tag, data) in sends {
            if let Some(p) = peer {
                dart.send(1, TrafficClass::IntraApp, client, p, tag, encode(&data));
            }
        }
        if neighbor(-1, 0).is_some() {
            let m = decode(&recv_tag(halo_tag(sweep, 0)).payload);
            cur[1..1 + cols].copy_from_slice(&m);
        }
        if neighbor(1, 0).is_some() {
            let m = decode(&recv_tag(halo_tag(sweep, 1)).payload);
            cur[(rows + 1) * gw + 1..(rows + 1) * gw + 1 + cols].copy_from_slice(&m);
        }
        if neighbor(0, -1).is_some() {
            let m = decode(&recv_tag(halo_tag(sweep, 2)).payload);
            for (r, v) in m.into_iter().enumerate() {
                cur[(r + 1) * gw] = v;
            }
        }
        if neighbor(0, 1).is_some() {
            let m = decode(&recv_tag(halo_tag(sweep, 3)).payload);
            for (r, v) in m.into_iter().enumerate() {
                cur[(r + 1) * gw + cols + 1] = v;
            }
        }

        // Relax.
        residual = 0.0;
        for r in 1..=rows {
            for c in 1..=cols {
                let v = 0.25
                    * (cur[(r - 1) * gw + c]
                        + cur[(r + 1) * gw + c]
                        + cur[r * gw + c - 1]
                        + cur[r * gw + c + 1]);
                let d = (v - cur[r * gw + c]).abs();
                if d > residual {
                    residual = d;
                }
                next[r * gw + c] = v;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }

    // Global residual and field publish for the in-situ consumer.
    let global_residual = comm.allreduce_f64(residual, ReduceOp::Max);
    let interior: Vec<f64> = (1..=rows)
        .flat_map(|r| cur[r * gw + 1..r * gw + 1 + cols].to_vec())
        .collect();
    space
        .put_seq(
            client,
            1,
            "temperature",
            cfg.sweeps as u64,
            0,
            &region,
            &interior,
        )
        .expect("field publish failed");
    dart.return_mailbox(client, mailbox);
    global_residual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_reference_converges() {
        let (field, r1) = jacobi_serial(8, 5);
        let (_, r2) = jacobi_serial(8, 50);
        assert!(r2 < r1, "residual should shrink: {r1} -> {r2}");
        // Heat flows in from the left: left column hotter than right.
        assert!(field[0] > field[7]);
    }

    #[test]
    fn parallel_matches_serial_bitwise_2x2() {
        let cfg = JacobiConfig {
            size: 12,
            grid: [2, 2],
            sweeps: 9,
            cores_per_node: 4,
        };
        let out = run_jacobi(&cfg);
        let (reference, ref_residual) = jacobi_serial(12, 9);
        assert_eq!(out.field, reference, "parallel field deviates from serial");
        assert_eq!(out.residual, ref_residual);
    }

    #[test]
    fn parallel_matches_serial_uneven_grid() {
        let cfg = JacobiConfig {
            size: 12,
            grid: [4, 2],
            sweeps: 7,
            cores_per_node: 4,
        };
        let out = run_jacobi(&cfg);
        let (reference, _) = jacobi_serial(12, 7);
        assert_eq!(out.field, reference);
    }

    #[test]
    fn single_rank_degenerate() {
        let cfg = JacobiConfig {
            size: 8,
            grid: [1, 1],
            sweeps: 4,
            cores_per_node: 2,
        };
        let out = run_jacobi(&cfg);
        let (reference, _) = jacobi_serial(8, 4);
        assert_eq!(out.field, reference);
    }

    #[test]
    fn halo_traffic_accounted_with_locality() {
        let cfg = JacobiConfig {
            size: 16,
            grid: [4, 1],
            sweeps: 3,
            cores_per_node: 2,
        };
        let out = run_jacobi(&cfg);
        let snap = &out.ledger;
        // 3 boundaries x 2 directions x 16 cells x 8 B x 3 sweeps, plus
        // collective traffic — split between shm and network by placement.
        let halo_total =
            snap.shm_bytes(TrafficClass::IntraApp) + snap.network_bytes(TrafficClass::IntraApp);
        assert!(halo_total >= 3 * 2 * 16 * 8 * 3, "halo bytes {halo_total}");
        assert!(snap.network_bytes(TrafficClass::IntraApp) > 0);
        assert!(snap.shm_bytes(TrafficClass::IntraApp) > 0);
    }
}
