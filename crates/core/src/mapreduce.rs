//! MapReduce over the shared space — the paper's future-work extension
//! ("we will also explore supporting other programming models such as
//! Partitioned Global Address Space (PGAS) and MapReduce", §VII).
//!
//! The classic fit for CoDS is the *partial-aggregation* shape: map tasks
//! scan their region of a coupled field and emit fixed-width partials
//! (here: value histograms); reducers pull the partials they are
//! responsible for directly from where they were produced — the same
//! one-sided, locality-accounted transfers as any other coupling — and
//! publish the reduced result back into the space.
//!
//! Layout: partials live in a 1-D domain of `map_tasks * bins` cells;
//! map task `m` owns `[m*bins, (m+1)*bins)`. Reducer `r` owns the bin
//! range `[r*bins/R, (r+1)*bins/R)` of the *result* domain `[0, bins)`
//! and gathers that slice from every map partial.

use crate::threaded::field_value;
use insitu_cods::{var_id, CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::{BoundingBox, Decomposition};
use insitu_fabric::{ClientId, LedgerSnapshot, MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use std::sync::Arc;

/// Configuration of a histogram MapReduce job.
#[derive(Clone, Debug)]
pub struct HistogramJob {
    /// Decomposition of the input field (one map task per rank).
    pub input: Decomposition,
    /// Number of histogram bins over the field's `[0, 1)` value range.
    pub bins: u64,
    /// Number of reduce tasks (must divide `bins`).
    pub reduce_tasks: u64,
    /// Cores per node of the simulated machine.
    pub cores_per_node: u32,
}

/// Result of a MapReduce run.
#[derive(Clone, Debug)]
pub struct HistogramOutcome {
    /// The final histogram (counts per bin).
    pub histogram: Vec<u64>,
    /// Transfer ledger of the whole job.
    pub ledger: LedgerSnapshot,
}

/// The serial reference: histogram of `field_value(var, 0, p)` over the
/// input domain.
pub fn serial_histogram(input: &Decomposition, var: &str, bins: u64) -> Vec<u64> {
    let vid = var_id(var);
    let mut hist = vec![0u64; bins as usize];
    for p in input.domain().iter_points() {
        let v = field_value(vid, 0, &p[..input.domain().ndim()]);
        let bin = ((v * bins as f64) as u64).min(bins - 1);
        hist[bin as usize] += 1;
    }
    hist
}

/// Run the histogram job with one thread per map task and per reduce
/// task, all data flowing through the shared space.
///
/// # Panics
/// Panics if `reduce_tasks` does not divide `bins` or the machine is too
/// small.
pub fn run_histogram(job: &HistogramJob, var: &str) -> HistogramOutcome {
    assert!(
        job.bins % job.reduce_tasks == 0,
        "reduce_tasks must divide bins"
    );
    let m = job.input.num_ranks();
    let r = job.reduce_tasks;
    let total_clients = (m + r) as u32;
    let machine = MachineSpec::new(
        total_clients.div_ceil(job.cores_per_node),
        job.cores_per_node,
    );
    let placement = Arc::new(Placement::pack_sequential(machine, total_clients));
    let ledger = Arc::new(TransferLedger::new());
    let dart = DartRuntime::new(placement, Arc::clone(&ledger));
    // 1-D curve covering the partials domain.
    let partial_cells = m * job.bins;
    let order = 64 - (partial_cells - 1).leading_zeros();
    let dht_clients: Vec<ClientId> = (0..machine.nodes).map(|n| machine.core(n, 0)).collect();
    let dht = Dht::new(Box::new(HilbertCurve::new(1, order.max(1))), dht_clients);
    let space = CodsSpace::new(Arc::clone(&dart), dht, CodsConfig::default());

    let partial_var = format!("{var}.partials");
    let vid = var_id(var);
    let mut handles = Vec::new();

    // Map tasks: client ids [0, m).
    for task in 0..m {
        let space = Arc::clone(&space);
        let input = job.input;
        let bins = job.bins;
        let partial_var = partial_var.clone();
        handles.push(std::thread::spawn(move || {
            let mut hist = vec![0.0f64; bins as usize];
            for piece in input.rank_region(task) {
                for p in piece.iter_points() {
                    let v = field_value(vid, 0, &p[..piece.ndim()]);
                    let bin = ((v * bins as f64) as u64).min(bins - 1);
                    hist[bin as usize] += 1.0;
                }
            }
            // Publish the partial at [task*bins, (task+1)*bins).
            let bbox = BoundingBox::new(&[task * bins], &[(task + 1) * bins - 1]);
            space
                .put_cont(task as ClientId, 1, &partial_var, 0, 0, &bbox, &hist)
                .expect("partial put failed");
        }));
    }

    // Reduce tasks: client ids [m, m + r). Partials form their own 1-D
    // blocked decomposition (one rank per map task), which the reducers
    // use for direct concurrent-coupling pulls.
    let partials_dec = Decomposition::new(
        BoundingBox::from_sizes(&[partial_cells]),
        insitu_domain::ProcessGrid::new(&[m]),
        insitu_domain::Distribution::Blocked,
    );
    let map_clients: Vec<ClientId> = (0..m as u32).collect();
    let slice = job.bins / r;
    let mut reduce_handles = Vec::new();
    for task in 0..r {
        let space = Arc::clone(&space);
        let bins = job.bins;
        let partial_var = partial_var.clone();
        let maps = m;
        let map_clients = map_clients.clone();
        reduce_handles.push(std::thread::spawn(move || {
            let client = (maps + task) as ClientId;
            let lo = task * slice;
            let hi = (task + 1) * slice - 1;
            let mut acc = vec![0u64; slice as usize];
            for map_task in 0..maps {
                // Pull this reducer's bin range of map_task's partial.
                let q = BoundingBox::new(&[map_task * bins + lo], &[map_task * bins + hi]);
                let (vals, _) = space
                    .get_cont(client, 2, &partial_var, 0, &q, &partials_dec, &map_clients)
                    .expect("partial get failed");
                for (i, v) in vals.iter().enumerate() {
                    acc[i] += *v as u64;
                }
            }
            (task, acc)
        }));
    }

    for h in handles {
        h.join().expect("map task panicked");
    }
    let mut histogram = vec![0u64; job.bins as usize];
    for h in reduce_handles {
        let (task, acc) = h.join().expect("reduce task panicked");
        let base = (task * slice) as usize;
        histogram[base..base + acc.len()].copy_from_slice(&acc);
    }
    HistogramOutcome {
        histogram,
        ledger: ledger.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{Distribution, ProcessGrid};
    use insitu_fabric::TrafficClass;

    fn input() -> Decomposition {
        Decomposition::new(
            BoundingBox::from_sizes(&[16, 16]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        )
    }

    #[test]
    fn histogram_matches_serial_reference() {
        let job = HistogramJob {
            input: input(),
            bins: 8,
            reduce_tasks: 4,
            cores_per_node: 4,
        };
        let out = run_histogram(&job, "field");
        assert_eq!(out.histogram, serial_histogram(&input(), "field", 8));
        // All cells binned exactly once.
        assert_eq!(out.histogram.iter().sum::<u64>(), 256);
    }

    #[test]
    fn single_reducer() {
        let job = HistogramJob {
            input: input(),
            bins: 4,
            reduce_tasks: 1,
            cores_per_node: 4,
        };
        let out = run_histogram(&job, "f2");
        assert_eq!(out.histogram.iter().sum::<u64>(), 256);
        assert_eq!(out.histogram, serial_histogram(&input(), "f2", 4));
    }

    #[test]
    fn shuffle_traffic_is_accounted() {
        let job = HistogramJob {
            input: input(),
            bins: 8,
            reduce_tasks: 2,
            cores_per_node: 2,
        };
        let out = run_histogram(&job, "f3");
        // 4 maps x 8 bins x 8 bytes of partials, each bin pulled once.
        assert_eq!(out.ledger.total_bytes(TrafficClass::InterApp), 4 * 8 * 8);
    }

    #[test]
    fn cyclic_input_distribution_works() {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Cyclic,
        );
        let job = HistogramJob {
            input: dec,
            bins: 4,
            reduce_tasks: 2,
            cores_per_node: 4,
        };
        let out = run_histogram(&job, "f4");
        assert_eq!(out.histogram, serial_histogram(&dec, "f4", 4));
    }

    #[test]
    #[should_panic(expected = "reduce_tasks must divide bins")]
    fn rejects_indivisible_reducers() {
        let job = HistogramJob {
            input: input(),
            bins: 7,
            reduce_tasks: 2,
            cores_per_node: 4,
        };
        run_histogram(&job, "f5");
    }
}
