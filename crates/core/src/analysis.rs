//! In-situ analysis kernels — the operations the paper's motivating
//! end-to-end workflows run on coupled data ("parallel data analysis
//! and/or transformation operations (e.g., redistribution, interpolation,
//! reduction) are executed asynchronously and concurrently", §I).
//!
//! Each kernel consumes the dense row-major array of a retrieved region
//! (what a CoDS `get` returns), so an analysis application's task is:
//! `get` its region, apply kernels, publish or accumulate results.

use insitu_domain::{layout, BoundingBox};

/// Summary statistics of one region.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionStats {
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of cells.
    pub cells: u64,
}

impl RegionStats {
    /// Merge two partial statistics (for tree or all-reduce combination
    /// across analysis tasks).
    pub fn merge(self, other: RegionStats) -> RegionStats {
        if other.cells == 0 {
            return self;
        }
        if self.cells == 0 {
            return other;
        }
        let cells = self.cells + other.cells;
        RegionStats {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            mean: (self.mean * self.cells as f64 + other.mean * other.cells as f64) / cells as f64,
            cells,
        }
    }
}

/// Compute min/max/mean of a retrieved region.
///
/// # Panics
/// Panics if `data` length does not match the region volume or is empty.
pub fn region_stats(region: &BoundingBox, data: &[f64]) -> RegionStats {
    assert_eq!(
        data.len() as u128,
        region.num_cells(),
        "data length mismatch"
    );
    assert!(!data.is_empty(), "empty region");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in data {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    RegionStats {
        min,
        max,
        mean: sum / data.len() as f64,
        cells: data.len() as u64,
    }
}

/// Downsample a region by integer `factor` per dimension (block mean):
/// the decimation step of an in-situ visualization pipeline. Returns the
/// coarse box (in coarse coordinates, origin at `region.lower()/factor`)
/// and its data.
///
/// # Panics
/// Panics if `factor` is zero, or region bounds are not aligned to
/// `factor` (extent and origin must be multiples).
pub fn downsample(region: &BoundingBox, data: &[f64], factor: u64) -> (BoundingBox, Vec<f64>) {
    assert!(factor > 0, "factor must be positive");
    assert_eq!(
        data.len() as u128,
        region.num_cells(),
        "data length mismatch"
    );
    let ndim = region.ndim();
    let mut lb = Vec::with_capacity(ndim);
    let mut ub = Vec::with_capacity(ndim);
    for d in 0..ndim {
        assert!(
            region.lb(d) % factor == 0 && region.extent(d) % factor == 0,
            "region not aligned to factor {factor} in dim {d}"
        );
        lb.push(region.lb(d) / factor);
        ub.push((region.ub(d) + 1) / factor - 1);
    }
    let coarse = BoundingBox::new(&lb, &ub);
    let mut out = vec![0.0f64; coarse.num_cells() as usize];
    let cells_per_block = (factor as f64).powi(ndim as i32);
    for p in region.iter_points() {
        let mut cp = [0u64; insitu_domain::MAX_DIMS];
        for d in 0..ndim {
            cp[d] = p[d] / factor;
        }
        out[layout::linear_index(&coarse, &cp[..ndim])] +=
            data[layout::linear_index(region, &p[..ndim])] / cells_per_block;
    }
    (coarse, out)
}

/// Resample a region onto a target box of different resolution by
/// multilinear interpolation — the "interpolation" transformation the
/// paper lists among staged data operations (§I). Source and target boxes
/// are both interpreted over the unit cube: cell centers at
/// `(i + 0.5) / extent` per dimension, so any two resolutions map onto
/// each other. Values outside the source are clamped to its border.
///
/// Supports 1-3 dimensions.
///
/// # Panics
/// Panics on rank mismatch, length mismatch or more than 3 dimensions.
#[allow(clippy::needless_range_loop)] // corner-weight loop indexes two arrays
pub fn resample(src_box: &BoundingBox, src: &[f64], dst_box: &BoundingBox) -> Vec<f64> {
    assert_eq!(src_box.ndim(), dst_box.ndim(), "rank mismatch");
    assert!(src_box.ndim() <= 3, "resample supports up to 3 dimensions");
    assert_eq!(
        src.len() as u128,
        src_box.num_cells(),
        "data length mismatch"
    );
    let ndim = src_box.ndim();
    let mut out = Vec::with_capacity(dst_box.num_cells() as usize);
    // Per-dim: fractional source coordinate for each target index.
    let coord = |d: usize, i: u64| -> (usize, usize, f64) {
        let t = (i as f64 - dst_box.lb(d) as f64 + 0.5) / dst_box.extent(d) as f64;
        let s = t * src_box.extent(d) as f64 - 0.5;
        let lo = s.floor().clamp(0.0, (src_box.extent(d) - 1) as f64);
        let hi = (lo + 1.0).min((src_box.extent(d) - 1) as f64);
        (lo as usize, hi as usize, (s - lo).clamp(0.0, 1.0))
    };
    let idx = |c: &[usize]| -> usize {
        let mut i = 0usize;
        for d in 0..ndim {
            i = i * src_box.extent(d) as usize + c[d];
        }
        i
    };
    for p in dst_box.iter_points() {
        let axes: Vec<(usize, usize, f64)> = (0..ndim).map(|d| coord(d, p[d])).collect();
        let mut acc = 0.0;
        for corner in 0..(1usize << ndim) {
            let mut c = [0usize; 3];
            let mut w = 1.0;
            for d in 0..ndim {
                let (lo, hi, f) = axes[d];
                if corner >> d & 1 == 0 {
                    c[d] = lo;
                    w *= 1.0 - f;
                } else {
                    c[d] = hi;
                    w *= f;
                }
            }
            acc += w * src[idx(&c[..ndim])];
        }
        out.push(acc);
    }
    out
}

/// Count cells at or above `threshold` — the scalar core of iso-surface
/// extent estimation.
pub fn count_above(data: &[f64], threshold: f64) -> u64 {
    data.iter().filter(|&&v| v >= threshold).count() as u64
}

/// Value histogram over `[lo, hi)` with `bins` buckets (out-of-range
/// values clamp to the end bins).
///
/// # Panics
/// Panics if `bins` is zero or `hi <= lo`.
pub fn histogram(data: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "bins must be positive");
    assert!(hi > lo, "hi must exceed lo");
    let mut h = vec![0u64; bins];
    let scale = bins as f64 / (hi - lo);
    for &v in data {
        let b = (((v - lo) * scale) as i64).clamp(0, bins as i64 - 1) as usize;
        h[b] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::layout::fill_with;

    #[test]
    fn stats_basic() {
        let b = BoundingBox::from_sizes(&[2, 2]);
        let s = region_stats(&b, &[1.0, 2.0, 3.0, 6.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.cells, 4);
    }

    #[test]
    fn stats_merge_matches_whole() {
        let b = BoundingBox::from_sizes(&[4]);
        let whole = region_stats(&b, &[1.0, 5.0, 2.0, 8.0]);
        let left = region_stats(&BoundingBox::from_sizes(&[2]), &[1.0, 5.0]);
        let right = region_stats(&BoundingBox::from_sizes(&[2]), &[2.0, 8.0]);
        let merged = left.merge(right);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        assert!((merged.mean - whole.mean).abs() < 1e-12);
        assert_eq!(merged.cells, whole.cells);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let s = RegionStats {
            min: 1.0,
            max: 2.0,
            mean: 1.5,
            cells: 4,
        };
        let empty = RegionStats {
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            cells: 0,
        };
        assert_eq!(s.merge(empty), s);
        assert_eq!(empty.merge(s), s);
    }

    #[test]
    fn downsample_block_means() {
        // 4x4 field of row-major indices, factor 2.
        let b = BoundingBox::from_sizes(&[4, 4]);
        let data = fill_with(&b, |p| (p[0] * 4 + p[1]) as f64);
        let (coarse, out) = downsample(&b, &data, 2);
        assert_eq!(coarse, BoundingBox::from_sizes(&[2, 2]));
        // Block (0,0): values 0,1,4,5 -> mean 2.5.
        assert!((out[0] - 2.5).abs() < 1e-12);
        // Block (1,1): values 10,11,14,15 -> mean 12.5.
        assert!((out[3] - 12.5).abs() < 1e-12);
    }

    #[test]
    fn downsample_preserves_mean() {
        let b = BoundingBox::from_sizes(&[8, 8]);
        let data = fill_with(&b, |p| ((p[0] * 37 + p[1] * 11) % 13) as f64);
        let s0 = region_stats(&b, &data);
        let (coarse, out) = downsample(&b, &data, 4);
        let s1 = region_stats(&coarse, &out);
        assert!((s0.mean - s1.mean).abs() < 1e-9);
    }

    #[test]
    fn downsample_offset_region() {
        // Region not at the origin but factor-aligned.
        let b = BoundingBox::new(&[4, 8], &[7, 11]);
        let data = vec![1.0; 16];
        let (coarse, out) = downsample(&b, &data, 2);
        assert_eq!(coarse, BoundingBox::new(&[2, 4], &[3, 5]));
        assert!(out.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn downsample_rejects_ragged_region() {
        let b = BoundingBox::from_sizes(&[5, 4]);
        downsample(&b, &[0.0; 20], 2);
    }

    #[test]
    fn resample_identity_resolution() {
        let b = BoundingBox::from_sizes(&[4, 4]);
        let data = fill_with(&b, |p| (p[0] * 4 + p[1]) as f64);
        let out = resample(&b, &data, &b);
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_constant_field_any_resolution() {
        let src = BoundingBox::from_sizes(&[6, 6]);
        let data = vec![3.5; 36];
        for sizes in [[2u64, 9], [12, 12], [1, 1]] {
            let dst = BoundingBox::from_sizes(&sizes);
            let out = resample(&src, &data, &dst);
            assert!(out.iter().all(|v| (v - 3.5).abs() < 1e-12), "{sizes:?}");
        }
    }

    #[test]
    fn resample_linear_ramp_preserved() {
        // A linear ramp in x is reproduced exactly by linear interpolation
        // at interior points.
        let src = BoundingBox::from_sizes(&[8]);
        let data: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let dst = BoundingBox::from_sizes(&[16]);
        let out = resample(&src, &data, &dst);
        // Cell centers of dst map to src coordinate s = t*8 - 0.5.
        for (i, v) in out.iter().enumerate() {
            let s = ((i as f64 + 0.5) / 16.0) * 8.0 - 0.5;
            let expect = s.clamp(0.0, 7.0);
            assert!((v - expect).abs() < 1e-9, "i={i} got {v} want {expect}");
        }
    }

    #[test]
    fn resample_downscale_means_reasonable() {
        let src = BoundingBox::from_sizes(&[8, 8]);
        let data = fill_with(&src, |p| p[0] as f64);
        let dst = BoundingBox::from_sizes(&[4, 4]);
        let out = resample(&src, &data, &dst);
        let s = region_stats(&dst, &out);
        // The x-ramp midpoint is 3.5.
        assert!((s.mean - 3.5).abs() < 0.01, "mean {}", s.mean);
    }

    #[test]
    fn resample_3d() {
        let src = BoundingBox::from_sizes(&[4, 4, 4]);
        let data = fill_with(&src, |p| (p[0] + p[1] + p[2]) as f64);
        let dst = BoundingBox::from_sizes(&[2, 2, 2]);
        let out = resample(&src, &data, &dst);
        assert_eq!(out.len(), 8);
        // Symmetric ramp: corners average around the global mean 4.5.
        let mean = out.iter().sum::<f64>() / 8.0;
        assert!((mean - 4.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn resample_rejects_rank_mismatch() {
        let a = BoundingBox::from_sizes(&[4]);
        let b = BoundingBox::from_sizes(&[4, 4]);
        resample(&a, &[0.0; 4], &b);
    }

    #[test]
    fn count_above_threshold() {
        assert_eq!(count_above(&[0.1, 0.5, 0.9, 0.5], 0.5), 3);
        assert_eq!(count_above(&[], 0.0), 0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = histogram(&[-1.0, 0.0, 0.49, 0.5, 0.99, 2.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![3, 3]);
    }
}
