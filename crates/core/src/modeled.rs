//! The modeled executor: same placements, same schedules, same byte
//! arithmetic as the threaded executor — evaluated analytically, with no
//! threads and no data buffers — so the paper's 512- to 9216-core
//! configurations run in milliseconds. An integration test pins its ledger
//! to the threaded executor's on identical scenarios.

use crate::mapping::{map_scenario, MappedScenario, MappingStrategy};
use crate::scenario::Scenario;
use insitu_cods::var_id;
use insitu_domain::stencil::halo_exchanges;
use insitu_fabric::{
    estimate_retrieve_slots_faulted, ClientRetrieve, LedgerSnapshot, LinkFaults, Locality,
    MachineSpec, NodeId, RetrieveBreakdown, TorusTopology, TrafficClass, Transfer, TransferLedger,
    TransferSlot,
};
use insitu_obs::{Event, EventKind, FlightRecorder, LinkClass};
use insitu_telemetry::Recorder;
use insitu_workflow::pairwise_overlaps_region;
use std::collections::{BTreeMap, HashMap};

/// Results of one modeled scenario run.
#[derive(Clone, Debug)]
pub struct ModeledOutcome {
    /// Strategy the scenario ran under.
    pub strategy: MappingStrategy,
    /// Byte ledger (the Figs. 8/9/12-15 quantities).
    pub ledger: LedgerSnapshot,
    /// Per consumer app: estimated retrieve time in ms, the per-app
    /// maximum over its tasks (the Figs. 11/16 quantity).
    pub retrieve_ms: BTreeMap<u32, f64>,
    /// Per consumer app: mean retrieve time over its tasks.
    pub retrieve_ms_mean: BTreeMap<u32, f64>,
    /// The placements used.
    pub mapped: MappedScenario,
}

/// Estimated DHT span queries a consumer task issues for a region of
/// `region_cells` cells: the number of DHT-core intervals its index spans
/// touch, approximated by volume (one core per `domain/nodes` indices),
/// clamped to the core count. Cached schedules skip these entirely; we
/// model the first (cold) iteration.
fn dht_queries_estimate(region_cells: u128, domain_cells: u128, dht_cores: u32) -> u32 {
    let interval = domain_cells.div_ceil(dht_cores as u128).max(1);
    (region_cells.div_ceil(interval) as u32 + 1).min(dht_cores)
}

/// Execution knobs of the modeled executor.
#[derive(Clone, Debug, Default)]
pub struct ModeledConfig {
    /// Torus-link bandwidth degradations to model (healthy by default);
    /// the modeled analogue of the chaos harness's `link-slow` faults.
    pub link_faults: LinkFaults,
    /// Flight recorder receiving synthetic causal events mirroring the
    /// model's `query + max(shm, net)` time decomposition (disabled by
    /// default), so `insitu profile` reads modeled and threaded runs
    /// identically.
    pub flight: FlightRecorder,
}

/// Run `scenario` under `strategy` analytically.
pub fn run_modeled(scenario: &Scenario, strategy: MappingStrategy) -> ModeledOutcome {
    run_modeled_with(scenario, strategy, &Recorder::disabled())
}

/// Run `scenario` under `strategy` analytically, mirroring the ledger into
/// `recorder`'s metrics and emitting one synthetic `app<N>.retrieve` span
/// per consumer task (track = its client id, duration = the estimated
/// retrieve time) so modeled traces line up with threaded ones.
pub fn run_modeled_with(
    scenario: &Scenario,
    strategy: MappingStrategy,
    recorder: &Recorder,
) -> ModeledOutcome {
    run_modeled_configured(scenario, strategy, recorder, &ModeledConfig::default())
}

/// [`run_modeled_with`] with explicit execution knobs: injected torus-link
/// slowdowns and a flight recorder for synthetic causal events. With the
/// default config it is exactly [`run_modeled_with`].
pub fn run_modeled_configured(
    scenario: &Scenario,
    strategy: MappingStrategy,
    recorder: &Recorder,
    cfg: &ModeledConfig,
) -> ModeledOutcome {
    let mapped = {
        let _span = recorder.span("workflow.map", "workflow", 0);
        map_scenario(scenario, strategy)
    };
    let ledger = TransferLedger::with_recorder(recorder);
    let topo = TorusTopology::cubic_for(mapped.machine.nodes);
    let mut retrieves: BTreeMap<u32, Vec<ClientRetrieve>> = BTreeMap::new();
    // `(var, concurrent, consumer rank)` tags for each retrieve, pushed in
    // the same order as `retrieves` so the flattened vectors align.
    let mut metas: BTreeMap<u32, Vec<(u64, bool, u64)>> = BTreeMap::new();

    // Inter-application coupling traffic + per-consumer retrieve flows.
    for coupling in &scenario.couplings {
        let pdec = scenario.decomposition(coupling.producer_app);
        let coupled_region = coupling.region.unwrap_or(*pdec.domain());
        for &capp in &coupling.consumer_apps {
            let cdec = scenario.decomposition(capp);
            let ntasks = scenario.workflow.app(capp).unwrap().ntasks as usize;
            let mut per_rank: Vec<HashMap<NodeId, u64>> = vec![HashMap::new(); ntasks];
            for (pr, cr, cells) in pairwise_overlaps_region(pdec, cdec, &coupled_region) {
                let bytes = cells as u64 * scenario.elem_bytes;
                let src = mapped.node_of_task(coupling.producer_app, pr);
                let dst = mapped.node_of_task(capp, cr);
                let loc = if src == dst {
                    Locality::SharedMemory
                } else {
                    Locality::Network
                };
                // The coupling repeats every iteration with the same
                // schedule: one transfer per (producer rank, consumer
                // rank) pair per iteration, exactly as the threaded
                // executor accounts its per-version pulls. Flows below
                // stay per-iteration (retrieve time is a per-version
                // quantity).
                ledger.record_repeated(
                    capp,
                    TrafficClass::InterApp,
                    loc,
                    bytes,
                    scenario.iterations,
                );
                *per_rank[cr as usize].entry(src).or_insert(0) += bytes;
            }
            let domain_cells = pdec.domain().num_cells();
            let app_retrieves = retrieves.entry(capp).or_default();
            for (rank, sources) in per_rank.into_iter().enumerate() {
                let dst_node = mapped.node_of_task(capp, rank as u64);
                let transfers: Vec<Transfer> = sources
                    .into_iter()
                    .map(|(src_node, bytes)| Transfer::new(src_node, bytes))
                    .collect();
                let dht_queries = if coupling.concurrent {
                    0
                } else {
                    dht_queries_estimate(
                        cdec.rank_cells(rank as u64),
                        domain_cells,
                        mapped.machine.nodes,
                    )
                };
                app_retrieves.push(ClientRetrieve {
                    dst_node,
                    transfers,
                    dht_queries,
                });
                metas.entry(capp).or_default().push((
                    var_id(&coupling.var),
                    coupling.concurrent,
                    rank as u64,
                ));
            }
        }
    }

    // Standing-query traffic: each on-stride version moves every
    // producer-piece × subscriber-piece overlap twice — once as the push
    // fragment (charged to the producer app, exactly as `push_to_subs`
    // accounts it at put time) and once as the subscriber's verify/resync
    // get (charged to the subscriber app, like any consumer retrieve).
    for sub in &scenario.subscriptions {
        let pdec = scenario.decomposition(sub.producer_app);
        let sdec = scenario.decomposition(sub.subscriber_app);
        let region = sub.region.unwrap_or(*pdec.domain());
        let on_stride = scenario.iterations.div_ceil(sub.every_k);
        for (pr, sr, cells) in pairwise_overlaps_region(pdec, sdec, &region) {
            let bytes = cells as u64 * scenario.elem_bytes;
            let src = mapped.node_of_task(sub.producer_app, pr);
            let dst = mapped.node_of_task(sub.subscriber_app, sr);
            let loc = if src == dst {
                Locality::SharedMemory
            } else {
                Locality::Network
            };
            ledger.record_repeated(
                sub.producer_app,
                TrafficClass::InterApp,
                loc,
                bytes,
                on_stride,
            );
            ledger.record_repeated(
                sub.subscriber_app,
                TrafficClass::InterApp,
                loc,
                bytes,
                on_stride,
            );
        }
    }

    // Intra-application stencil traffic.
    for app in &scenario.workflow.apps {
        let Some(dec) = &app.decomposition else {
            continue;
        };
        for ex in halo_exchanges(dec, scenario.halo) {
            let bytes = ex.cells as u64 * scenario.elem_bytes;
            let na = mapped.node_of_task(app.id, ex.rank_a);
            let nb = mapped.node_of_task(app.id, ex.rank_b);
            let loc = if na == nb {
                Locality::SharedMemory
            } else {
                Locality::Network
            };
            // Both directions of the exchange, once per iteration — two
            // transfers of `bytes` each, matching the threaded executor's
            // two mailbox sends per exchange pair.
            ledger.record_repeated(
                app.id,
                TrafficClass::IntraApp,
                loc,
                bytes,
                2 * scenario.iterations,
            );
        }
    }

    // Retrieve-time estimates. Consumers of the same coupling wave pull
    // simultaneously (SAP2 and SAP3 contend with each other), so all
    // retrieves share one contention domain.
    let mut retrieve_ms = BTreeMap::new();
    let mut retrieve_ms_mean = BTreeMap::new();
    let all: Vec<(u32, usize)> = retrieves
        .iter()
        .flat_map(|(&app, v)| (0..v.len()).map(move |i| (app, i)))
        .collect();
    let flat: Vec<ClientRetrieve> = retrieves.values().flat_map(|v| v.iter().cloned()).collect();
    let meta_flat: Vec<(u64, bool, u64)> = metas.values().flatten().copied().collect();
    if !flat.is_empty() {
        let with_slots =
            estimate_retrieve_slots_faulted(&scenario.model, &topo, &flat, &cfg.link_faults);
        let breakdowns: Vec<RetrieveBreakdown> = with_slots.iter().map(|(b, _)| *b).collect();
        if cfg.flight.is_enabled() {
            // Lay each version's events in its own time slot so the
            // chrome trace reads as consecutive iterations.
            let slot = breakdowns
                .iter()
                .map(|b| (b.total_ms * 1000.0).round() as u64)
                .max()
                .unwrap_or(0)
                + 1;
            for version in 0..scenario.iterations {
                for (i, ((b, slots), r)) in with_slots.iter().zip(&flat).enumerate() {
                    let (vid, concurrent, rank) = meta_flat[i];
                    let client = mapped.core_of_task(all[i].0, rank);
                    emit_retrieve_events(
                        &cfg.flight,
                        &mapped.machine,
                        b,
                        slots,
                        r,
                        all[i].0,
                        vid,
                        concurrent,
                        client,
                        version,
                        version * slot,
                    );
                }
            }
        }
        let times: Vec<f64> = breakdowns.iter().map(|b| b.total_ms).collect();
        let mut sums: BTreeMap<u32, (f64, u64)> = BTreeMap::new();
        for ((app, rank), t) in all.into_iter().zip(times) {
            // Synthetic per-client timeline entry: all retrieves of a wave
            // start together (ts 0); the duration is the model's estimate.
            // An app consuming several couplings contributes one flow per
            // coupling per rank, all on the rank's client track.
            let ntasks = mapped.app_cores[&app].len();
            recorder.synthetic_span(
                &format!("app{app}.retrieve"),
                "execute",
                mapped.core_of_task(app, (rank % ntasks) as u64) as u64,
                0,
                (t * 1000.0) as u64,
            );
            let e = retrieve_ms.entry(app).or_insert(0.0f64);
            if t > *e {
                *e = t;
            }
            let s = sums.entry(app).or_insert((0.0, 0));
            s.0 += t;
            s.1 += 1;
        }
        for (app, (sum, n)) in sums {
            retrieve_ms_mean.insert(app, sum / n as f64);
        }
    }

    ModeledOutcome {
        strategy,
        ledger: ledger.snapshot(),
        retrieve_ms,
        retrieve_ms_mean,
        mapped,
    }
}

/// Mirror one modeled retrieve into synthetic flight events for `version`,
/// laid out so the critical-path profiler's interval sweep reproduces the
/// model's `query + max(shm, net)` decomposition exactly: the schedule
/// child spans the DHT query (cold iteration only — later versions replay
/// the cached schedule, as the threaded executor does), and each pull
/// takes its window and `wait_us` from the model's [`TransferSlot`]
/// timeline — overlapped issue at the branch start, busy copy beginning
/// after the slot's wait. Piece-readiness stalls (`Transfer::ready_us`)
/// thus surface as profiler wait time, exactly as in threaded runs.
#[allow(clippy::too_many_arguments)] // event tags mirror the cods_* operator signatures
fn emit_retrieve_events(
    flight: &FlightRecorder,
    machine: &MachineSpec,
    b: &RetrieveBreakdown,
    slots: &[TransferSlot],
    r: &ClientRetrieve,
    app: u32,
    vid: u64,
    concurrent: bool,
    client: u32,
    version: u64,
    offset: u64,
) {
    let query_us = if version == 0 {
        (b.query_ms * 1000.0).round() as u64
    } else {
        0
    };
    let gseq = flight.next_seq();
    flight.record(
        Event::new(flight.next_seq(), EventKind::Schedule { hit: version > 0 })
            .parent(gseq)
            .app(app)
            .var(vid)
            .version(version)
            .dst(client)
            .window(offset, query_us),
    );
    if version == 0 && r.dht_queries > 0 {
        flight.record(
            Event::new(
                flight.next_seq(),
                EventKind::DhtLookup {
                    cores: r.dht_queries,
                },
            )
            .parent(gseq)
            .app(app)
            .var(vid)
            .version(version)
            .dst(client)
            .window(offset, 0),
        );
    }
    let shm_us = (b.shm_ms * 1000.0).round() as u64;
    let net_us = (b.net_ms * 1000.0).round() as u64;
    let tstart = offset + query_us;
    // The slot whose end defines each branch absorbs µs rounding, so the
    // event union hits the branch envelope exactly.
    let last_of = |shm: bool| {
        slots
            .iter()
            .enumerate()
            .filter(|&(i, s)| s.shm == shm && r.transfers[i].bytes > 0)
            .max_by(|a, b| a.1.end_us().total_cmp(&b.1.end_us()))
            .map(|(i, _)| i)
    };
    let (shm_last, net_last) = (last_of(true), last_of(false));
    // Every pull is issued at the branch start; its event spans issue to
    // completion, with the slot's idle prefix carried in `wait_us` so the
    // profiler charges only the busy tail to the link.
    for (i, (t, s)) in r.transfers.iter().zip(slots).enumerate() {
        if t.bytes == 0 {
            continue;
        }
        let branch = if s.shm { shm_us } else { net_us };
        let last = if s.shm { shm_last } else { net_last };
        let end = if last == Some(i) {
            branch
        } else {
            (s.end_us().round() as u64).min(branch)
        };
        let wait = (s.wait_us.round() as u64).min(end);
        flight.record(
            Event::new(flight.next_seq(), EventKind::Pull { wait_us: wait })
                .parent(gseq)
                .app(app)
                .var(vid)
                .version(version)
                .src(machine.core(t.src_node, 0))
                .dst(client)
                .link(if s.shm {
                    LinkClass::Shm
                } else {
                    LinkClass::Rdma
                })
                .bytes(t.bytes)
                .window(tstart, end),
        );
    }
    let total_us = query_us + shm_us.max(net_us);
    flight.record(
        Event::new(gseq, EventKind::Get { cont: concurrent })
            .app(app)
            .var(vid)
            .version(version)
            .dst(client)
            .bytes(r.transfers.iter().map(|t| t.bytes).sum())
            .window(offset, total_us),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{concurrent_scenario, pattern_pairs, sequential_scenario, PatternPair};

    fn small(pair: PatternPair) -> Scenario {
        let mut s = concurrent_scenario(16, 8, 8, pair);
        s.cores_per_node = 4;
        s
    }

    #[test]
    fn coupling_bytes_conserved_across_strategies() {
        // Total (shm + net) inter-app bytes equal the full coupled volume
        // regardless of mapping.
        let s = small(pattern_pairs(&[4, 4, 4])[0]);
        let volume = s.decomposition(1).domain().num_cells() as u64 * 8;
        for strat in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
            let o = run_modeled(&s, strat);
            assert_eq!(
                o.ledger.total_bytes(TrafficClass::InterApp),
                volume,
                "{strat:?}"
            );
        }
    }

    #[test]
    fn data_centric_cuts_network_coupling_matched_patterns() {
        let s = small(pattern_pairs(&[4, 4, 4])[0]); // blocked/blocked
        let rr = run_modeled(&s, MappingStrategy::RoundRobin);
        let dc = run_modeled(&s, MappingStrategy::DataCentric);
        let rr_net = rr.ledger.network_bytes(TrafficClass::InterApp);
        let dc_net = dc.ledger.network_bytes(TrafficClass::InterApp);
        assert!(
            (dc_net as f64) < 0.5 * rr_net as f64,
            "dc {dc_net} not well below rr {rr_net}"
        );
    }

    #[test]
    fn mismatched_patterns_defeat_data_centric() {
        // blocked/cyclic: fan-out makes co-location impossible; the gain
        // must be much smaller than in the matched case.
        let matched = small(pattern_pairs(&[4, 4, 4])[0]);
        let mismatched = small(pattern_pairs(&[4, 4, 4])[4]);
        let gain = |s: &Scenario| {
            let rr = run_modeled(s, MappingStrategy::RoundRobin)
                .ledger
                .network_bytes(TrafficClass::InterApp) as f64;
            let dc = run_modeled(s, MappingStrategy::DataCentric)
                .ledger
                .network_bytes(TrafficClass::InterApp) as f64;
            1.0 - dc / rr
        };
        assert!(gain(&matched) > gain(&mismatched) + 0.2);
    }

    #[test]
    fn sequential_scenario_retrieve_times_present() {
        let mut s = sequential_scenario(16, 8, 8, 8, pattern_pairs(&[4, 4, 4])[0]);
        s.cores_per_node = 4;
        let o = run_modeled(&s, MappingStrategy::DataCentric);
        assert!(o.retrieve_ms.contains_key(&2));
        assert!(o.retrieve_ms.contains_key(&3));
        assert!(o.retrieve_ms.values().all(|&t| t > 0.0));
    }

    #[test]
    fn data_centric_speeds_up_retrieves() {
        let s = small(pattern_pairs(&[4, 4, 4])[0]);
        let rr = run_modeled(&s, MappingStrategy::RoundRobin);
        let dc = run_modeled(&s, MappingStrategy::DataCentric);
        assert!(
            dc.retrieve_ms[&2] < rr.retrieve_ms[&2],
            "dc {} vs rr {}",
            dc.retrieve_ms[&2],
            rr.retrieve_ms[&2]
        );
    }

    #[test]
    fn stencil_bytes_recorded_per_app() {
        let s = small(pattern_pairs(&[4, 4, 4])[0]);
        let o = run_modeled(&s, MappingStrategy::RoundRobin);
        for app in [1u32, 2] {
            let total = o
                .ledger
                .app_bytes(app, TrafficClass::IntraApp, Locality::SharedMemory)
                + o.ledger
                    .app_bytes(app, TrafficClass::IntraApp, Locality::Network);
            assert!(total > 0, "app {app} has no stencil traffic");
        }
    }

    #[test]
    fn smaller_app_stencil_grows_under_data_centric() {
        // The Fig. 12 effect: the small consumer app's tasks scatter to
        // follow data, so its own halo exchanges cross more node
        // boundaries than under the packed baseline.
        let s = small(pattern_pairs(&[4, 4, 4])[0]);
        let rr = run_modeled(&s, MappingStrategy::RoundRobin);
        let dc = run_modeled(&s, MappingStrategy::DataCentric);
        let rr_net = rr
            .ledger
            .app_bytes(2, TrafficClass::IntraApp, Locality::Network);
        let dc_net = dc
            .ledger
            .app_bytes(2, TrafficClass::IntraApp, Locality::Network);
        assert!(dc_net >= rr_net, "dc {dc_net} < rr {rr_net}");
    }

    #[test]
    fn telemetry_mirrors_ledger_and_emits_synthetic_spans() {
        let mut s = sequential_scenario(16, 8, 8, 8, pattern_pairs(&[4, 4, 4])[0]);
        s.cores_per_node = 4;
        let rec = Recorder::enabled();
        let o = run_modeled_with(&s, MappingStrategy::DataCentric, &rec);
        let snap = rec.metrics_snapshot();
        for class in [TrafficClass::InterApp, TrafficClass::IntraApp] {
            let mirrored: u64 = Locality::ALL
                .iter()
                .map(|l| snap.counter(&format!("fabric.bytes.{}.{}", class.slug(), l.slug())))
                .sum();
            assert_eq!(mirrored, o.ledger.total_bytes(class), "{class:?}");
        }
        let trace = rec.trace_summary();
        assert!(trace.contains("workflow.map"), "missing map span:\n{trace}");
        assert!(
            trace.contains("app2.retrieve"),
            "missing synthetic spans:\n{trace}"
        );
        assert!(
            trace.contains("app3.retrieve"),
            "missing synthetic spans:\n{trace}"
        );
    }

    #[test]
    fn overlapped_modeled_retrieve_wait_is_max_not_sum() {
        use insitu_fabric::{estimate_retrieve_slots_faulted, NetworkModel};
        use insitu_obs::ProfileReport;

        // Three 1 MiB network pulls whose producers finish 5, 20 and
        // 35 ms after the get is issued. Under overlapped issue the
        // retrieve waits for the slowest producer once, not for each in
        // turn, so profiled wait ≈ max(ready), far below the 60 ms sum.
        let m = NetworkModel::jaguar();
        let topo = TorusTopology::new([4, 4, 4]);
        let machine = MachineSpec::new(8, 4);
        let readies = [5_000u64, 20_000, 35_000];
        let r = ClientRetrieve {
            dst_node: 0,
            transfers: readies
                .iter()
                .enumerate()
                .map(|(i, &ru)| Transfer::ready_at(i as u32 + 1, 1 << 20, ru))
                .collect(),
            dht_queries: 2,
        };
        let (b, slots) = estimate_retrieve_slots_faulted(
            &m,
            &topo,
            std::slice::from_ref(&r),
            &LinkFaults::new(),
        )
        .pop()
        .unwrap();
        let max_ready = *readies.iter().max().unwrap() as f64;
        let sum_ready: f64 = readies.iter().sum::<u64>() as f64;
        assert!(
            b.net_ms * 1e3 < sum_ready,
            "branch time {} should not serialize the waits ({sum_ready})",
            b.net_ms * 1e3
        );

        let flight = FlightRecorder::enabled();
        emit_retrieve_events(&flight, &machine, &b, &slots, &r, 2, 7, false, 0, 0, 0);
        let report = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
        let t = report.totals();
        assert!(
            t.wait_us >= max_ready * 0.8 && t.wait_us <= max_ready * 1.05,
            "wait {} should track the slowest producer ({max_ready})",
            t.wait_us
        );
        assert!(
            t.wait_us < sum_ready * 0.6,
            "wait {} must stay well below the serialized sum ({sum_ready})",
            t.wait_us
        );
        assert!(t.rdma_us > 0.0, "busy copy time must still be attributed");
        // The modeled decomposition is exact: categories sum to the
        // end-to-end span.
        let covered = t.schedule_us + t.shm_us + t.rdma_us + t.wait_us;
        assert!(
            (covered - report.end_to_end_total_us()).abs() < 1e-6,
            "decomposition {covered} != end-to-end {}",
            report.end_to_end_total_us()
        );
    }

    #[test]
    fn staggered_producers_overlap_shared_memory_chain() {
        use insitu_fabric::{estimate_retrieve_slots_faulted, NetworkModel};

        // Two local pieces, the second ready late: the chain stalls for
        // it only after the first copy drains, and the branch ends at
        // ready + copy rather than sum-of-waits + copies.
        let m = NetworkModel::jaguar();
        let topo = TorusTopology::new([2, 1, 1]);
        let r = ClientRetrieve {
            dst_node: 0,
            transfers: vec![
                Transfer::new(0, 4 << 20),
                Transfer::ready_at(0, 4 << 20, 30_000),
            ],
            dht_queries: 0,
        };
        let (b, slots) = estimate_retrieve_slots_faulted(&m, &topo, &[r], &LinkFaults::new())
            .pop()
            .unwrap();
        let copy_us = 0.5 + (4 << 20) as f64 / 4.0e9 * 1e6;
        assert!((slots[0].wait_us - 0.0).abs() < 1e-9);
        assert!((slots[1].wait_us - 30_000.0).abs() < 1e-9);
        let expect_end = 30_000.0 + copy_us;
        assert!(
            (b.shm_ms * 1e3 - expect_end).abs() < 1.0,
            "shm branch {} should end at ready+copy {expect_end}",
            b.shm_ms * 1e3
        );
    }

    #[test]
    fn dht_query_estimate_monotone_and_clamped() {
        assert_eq!(dht_queries_estimate(0, 1000, 10), 1);
        assert!(dht_queries_estimate(500, 1000, 10) <= 10);
        assert!(dht_queries_estimate(100, 1000, 10) <= dht_queries_estimate(900, 1000, 10));
        assert_eq!(dht_queries_estimate(1000, 1000, 4), 4);
    }
}
