//! The threaded executor: one OS thread per computation task, really
//! moving field data through CoDS and HybridDART.
//!
//! Execution clients (threads) are pinned to simulated cores by the task
//! mapping; HybridDART classifies every transfer as shared-memory or
//! network by that placement. Consumers verify every retrieved cell
//! against the deterministic field function, so a passing run certifies
//! the whole redistribution pipeline end to end.

use crate::mapping::{map_scenario, MappedScenario, MappingStrategy};
use crate::scenario::Scenario;
use insitu_cods::{var_id, CodsConfig, CodsError, CodsSpace, Dht, GetReport};
use insitu_dart::DartRuntime;
use insitu_domain::stencil::halo_exchanges;
use insitu_domain::{layout, BoundingBox};
use insitu_fabric::{
    ClientId, FaultInjector, LedgerSnapshot, Placement, TrafficClass, TransferLedger,
};
use insitu_obs::FlightRecorder;
use insitu_sfc::HilbertCurve;
use insitu_telemetry::Recorder;
use insitu_util::Bytes;
use insitu_workflow::ClientRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Message tag for halo-exchange payloads.
const TAG_HALO: u64 = 0x48414c4f; // "HALO"

/// Message tag for task-dispatch control messages (workflow server ->
/// execution client).
const TAG_DISPATCH: u64 = 0x44495350; // "DISP"

/// High-bit tag namespace reserved for group collectives (see
/// [`crate::comm`]); disjoint from [`TAG_HALO`] and user tags.
pub(crate) const TAG_COLLECTIVE_BASE: u64 = 0xC000_0000_0000_0000;

/// Results of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// Strategy the scenario ran under.
    pub strategy: MappingStrategy,
    /// Byte ledger, comparable with the modeled executor's.
    pub ledger: LedgerSnapshot,
    /// One report per consumer `get`, tagged `(app, rank)`.
    pub reports: Vec<(u32, u64, GetReport)>,
    /// Cells whose retrieved value did not match the field function.
    pub verify_failures: u64,
    /// Operator errors tasks hit, tagged `(app, rank)` and sorted for
    /// determinism. Empty on a fault-free run; never triggers a panic —
    /// a failed coupling is abandoned, the rest of the task proceeds.
    pub errors: Vec<(u32, u64, CodsError)>,
    /// Buffers still registered (staged) when the workflow finished —
    /// lost puts show up here as the difference from evictions.
    pub staged_buffers: u64,
    /// The placements used.
    pub mapped: MappedScenario,
}

/// Execution knobs of the threaded executor, mainly for chaos testing.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// How long a `get` waits for a missing piece, and how long producers
    /// wait for a version to be consumed before giving up on reclaim.
    pub get_timeout: Duration,
    /// Fault sites to consult (inert by default).
    pub injector: FaultInjector,
    /// Flight recorder for causal put/get/pull events (disabled by
    /// default; enable for `insitu profile`).
    pub flight: FlightRecorder,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            get_timeout: Duration::from_secs(60),
            injector: FaultInjector::none(),
            flight: FlightRecorder::disabled(),
        }
    }
}

/// The deterministic synthetic field: every `(variable, version, point)`
/// has one correct value, so consumers can verify redistribution exactly.
pub fn field_value(var: u64, version: u64, p: &[u64]) -> f64 {
    let mut h = var ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &c in p {
        h = (h ^ c.wrapping_add(0x5851_F42D)).wrapping_mul(0x1000_0000_01b3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn curve_for(domain: &BoundingBox) -> HilbertCurve {
    let max_extent = (0..domain.ndim()).map(|d| domain.extent(d)).max().unwrap();
    let order = 64 - (max_extent - 1).leading_zeros();
    HilbertCurve::new(domain.ndim(), order.max(1))
}

struct TaskCtx {
    scenario: Arc<Scenario>,
    mapped: Arc<MappedScenario>,
    space: Arc<CodsSpace>,
    dart: Arc<DartRuntime>,
    reports: Arc<Mutex<Vec<(u32, u64, GetReport)>>>,
    failures: Arc<AtomicU64>,
    errors: Arc<Mutex<Vec<(u32, u64, CodsError)>>>,
    get_timeout: Duration,
    app: u32,
    rank: u64,
}

impl TaskCtx {
    /// Record an operator error; the task abandons the failed coupling
    /// but keeps running (halo exchange in particular must complete so
    /// peers do not block forever on their mailboxes).
    fn note_error(&self, e: CodsError) {
        self.errors.lock().unwrap().push((self.app, self.rank, e));
    }
}

/// Run `scenario` under `strategy` with real threads and data.
///
/// Intended for up to a few hundred tasks (tests, examples); use
/// [`crate::run_modeled`] for paper-scale configurations.
pub fn run_threaded(scenario: &Scenario, strategy: MappingStrategy) -> ThreadedOutcome {
    run_threaded_with(scenario, strategy, &Recorder::disabled())
}

/// Run `scenario` under `strategy`, recording metrics and workflow-phase
/// spans (`workflow.register` → `workflow.map` → `workflow.group` →
/// `workflow.execute`, plus one `app<N>.task` span per execution client)
/// into `recorder`.
pub fn run_threaded_with(
    scenario: &Scenario,
    strategy: MappingStrategy,
    recorder: &Recorder,
) -> ThreadedOutcome {
    run_threaded_configured(scenario, strategy, recorder, &ThreadedConfig::default())
}

/// [`run_threaded_with`] with explicit execution knobs: a custom `get`
/// timeout and a [`FaultInjector`] consulted at the runtime's fault
/// sites. This is the chaos harness's entry point; with the default
/// config it is exactly [`run_threaded_with`].
pub fn run_threaded_configured(
    scenario: &Scenario,
    strategy: MappingStrategy,
    recorder: &Recorder,
    cfg: &ThreadedConfig,
) -> ThreadedOutcome {
    assert_eq!(scenario.elem_bytes, 8, "threaded mode stores f64 fields");
    let mapped = {
        let _span = recorder.span("workflow.map", "workflow", 0);
        Arc::new(map_scenario(scenario, strategy))
    };
    let machine = mapped.machine;
    // One execution client per core, client id == core id. The workflow
    // server's client-management module registers every client (its core
    // stands in for a network address) before any task is dispatched.
    let mut registry = ClientRegistry::new();
    {
        let _span = recorder.span("workflow.register", "workflow", 0);
        for client in 0..machine.total_cores() {
            registry.register(client, client);
        }
    }
    let placement = Arc::new(Placement::pack_sequential(machine, machine.total_cores()));
    let ledger = Arc::new(TransferLedger::with_observer(
        recorder,
        cfg.injector.clone(),
    ));
    let dart = DartRuntime::with_flight(
        placement,
        Arc::clone(&ledger),
        recorder.clone(),
        cfg.injector.clone(),
        cfg.flight.clone(),
    );
    let domain = *scenario
        .workflow
        .apps
        .iter()
        .find_map(|a| a.decomposition.as_ref())
        .expect("no decomposition in workflow")
        .domain();
    let dht_clients: Vec<ClientId> = (0..machine.nodes).map(|n| machine.core(n, 0)).collect();
    let dht = Dht::new(Box::new(curve_for(&domain)), dht_clients);
    let space = CodsSpace::new(
        Arc::clone(&dart),
        dht,
        CodsConfig {
            get_timeout: cfg.get_timeout,
            // Jaguar XT5 nodes carry 16 GB; staged coupling data must fit.
            staging_limit_per_node: Some(16 << 30),
            ..Default::default()
        },
    );

    let scenario = Arc::new(scenario.clone());
    let reports = Arc::new(Mutex::new(Vec::new()));
    let failures = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(Mutex::new(Vec::new()));

    // Declare consumption expectations so producers can reclaim old
    // versions: one completed get per consumer piece per version.
    for coupling in &scenario.couplings {
        let coupled_region = coupling
            .region
            .unwrap_or(*scenario.decomposition(coupling.producer_app).domain());
        let mut gets = 0u64;
        for &capp in &coupling.consumer_apps {
            let cdec = scenario.decomposition(capp);
            for r in 0..cdec.num_ranks() {
                gets += cdec
                    .rank_region(r)
                    .into_iter()
                    .filter(|p| p.intersect(&coupled_region).is_some())
                    .count() as u64;
            }
        }
        space.set_expected_gets(&coupling.var, gets);
    }

    for (wi, wave) in mapped.waves.iter().enumerate() {
        // The workflow management server dispatches each task assignment
        // (app id, rank) to its execution client before launch — the
        // paper's "initial distribution of computation tasks". The server
        // is modeled as co-resident with client 0's node; dispatches are
        // Control-class traffic. These are enqueued before any task thread
        // exists, so each client's first message is its assignment.
        {
            let _span = recorder.span("workflow.group", "workflow", wi as u64);
            for bundle in wave {
                for &app_id in bundle {
                    let ntasks = scenario.workflow.app(app_id).unwrap().ntasks as u64;
                    for rank in 0..ntasks {
                        let client = mapped.core_of_task(app_id, rank);
                        registry.set_running(client, app_id);
                        let mut payload = Vec::with_capacity(12);
                        payload.extend_from_slice(&app_id.to_ne_bytes());
                        payload.extend_from_slice(&rank.to_ne_bytes());
                        dart.send(
                            app_id,
                            TrafficClass::Control,
                            0,
                            client,
                            TAG_DISPATCH,
                            Bytes::from(payload),
                        );
                    }
                }
            }
        }
        let _span = recorder.span("workflow.execute", "workflow", wi as u64);
        let mut handles = Vec::new();
        for bundle in wave {
            for &app_id in bundle {
                let ntasks = scenario.workflow.app(app_id).unwrap().ntasks as u64;
                for rank in 0..ntasks {
                    let ctx = TaskCtx {
                        scenario: Arc::clone(&scenario),
                        mapped: Arc::clone(&mapped),
                        space: Arc::clone(&space),
                        dart: Arc::clone(&dart),
                        reports: Arc::clone(&reports),
                        failures: Arc::clone(&failures),
                        errors: Arc::clone(&errors),
                        get_timeout: cfg.get_timeout,
                        app: app_id,
                        rank,
                    };
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("app{app_id}-r{rank}"))
                            .stack_size(512 * 1024)
                            .spawn(move || task_routine(ctx))
                            .expect("thread spawn failed"),
                    );
                }
            }
        }
        for h in handles {
            h.join().expect("task thread panicked");
        }
        // Wave complete: its clients return to the idle pool.
        for bundle in wave {
            for &app_id in bundle {
                let ntasks = scenario.workflow.app(app_id).unwrap().ntasks as u64;
                for rank in 0..ntasks {
                    registry.set_idle(mapped.core_of_task(app_id, rank));
                }
            }
        }
    }

    let reports = Arc::try_unwrap(reports)
        .expect("threads done")
        .into_inner()
        .unwrap();
    let mut errors = Arc::try_unwrap(errors)
        .expect("threads done")
        .into_inner()
        .unwrap();
    // Threads report in scheduling order; sort so the outcome is a pure
    // function of scenario + faults.
    errors.sort_by(|a, b| (a.0, a.1, format!("{:?}", a.2)).cmp(&(b.0, b.1, format!("{:?}", b.2))));
    let staged_buffers = dart.registry().len() as u64;
    ThreadedOutcome {
        strategy,
        ledger: ledger.snapshot(),
        reports,
        verify_failures: failures.load(Ordering::Relaxed),
        errors,
        staged_buffers,
        mapped: Arc::try_unwrap(mapped).expect("threads done"),
    }
}

/// The statically linked "application subroutine" every execution client
/// runs: produce and/or consume coupled data, then do one stencil
/// exchange round.
fn task_routine(ctx: TaskCtx) {
    let client = ctx.mapped.core_of_task(ctx.app, ctx.rank);
    // One span per execution client, keyed by client id, so the trace
    // export shows a per-client timeline comparable with the modeled
    // executor's synthetic spans.
    let _task_span =
        ctx.dart
            .recorder()
            .span(&format!("app{}.task", ctx.app), "execute", client as u64);
    let mailbox = ctx.dart.take_mailbox(client);

    // First message is always this client's task assignment from the
    // workflow server (enqueued before the thread was spawned).
    let dispatch = mailbox.recv();
    assert_eq!(dispatch.tag, TAG_DISPATCH, "expected dispatch first");
    assert_eq!(
        u32::from_ne_bytes(dispatch.payload[..4].try_into().unwrap()),
        ctx.app
    );
    assert_eq!(
        u64::from_ne_bytes(dispatch.payload[4..12].try_into().unwrap()),
        ctx.rank
    );

    let dec = ctx.scenario.decomposition(ctx.app);

    // Producer role: one put sequence per iteration (version). For
    // concurrent couplings, version v-1 is reclaimed once every consumer
    // get of it has completed — the in-memory window a long-running
    // simulation needs.
    'producer: for coupling in &ctx.scenario.couplings {
        if coupling.producer_app != ctx.app {
            continue;
        }
        let vid = var_id(&coupling.var);
        let pieces = dec.rank_region(ctx.rank);
        for version in 0..ctx.scenario.iterations {
            for (pi, piece) in pieces.iter().enumerate() {
                let data =
                    layout::fill_with(piece, |p| field_value(vid, version, &p[..piece.ndim()]));
                let res = if coupling.concurrent {
                    ctx.space.put_cont(
                        client,
                        ctx.app,
                        &coupling.var,
                        version,
                        pi as u64,
                        piece,
                        &data,
                    )
                } else {
                    ctx.space.put_seq(
                        client,
                        ctx.app,
                        &coupling.var,
                        version,
                        pi as u64,
                        piece,
                        &data,
                    )
                };
                if let Err(e) = res {
                    // Abandon this coupling; other couplings and the halo
                    // round still run so peers are not deadlocked.
                    ctx.note_error(e);
                    continue 'producer;
                }
            }
            if coupling.concurrent && version > 0 {
                // Reclaim the previous version once fully consumed
                // (rank 0 evicts on behalf of the group; eviction of a
                // consumed version is idempotent).
                if ctx.rank == 0
                    && ctx
                        .space
                        .wait_version_consumed(&coupling.var, version - 1, ctx.get_timeout)
                {
                    ctx.space.evict_version(&coupling.var, version - 1);
                }
            }
        }
    }

    // Consumer role: retrieve and verify every iteration's version.
    for coupling in &ctx.scenario.couplings {
        if !coupling.consumer_apps.contains(&ctx.app) {
            continue;
        }
        let vid = var_id(&coupling.var);
        let pdec = ctx.scenario.decomposition(coupling.producer_app);
        let producer_clients: Vec<ClientId> = (0..pdec.num_ranks())
            .map(|r| ctx.mapped.core_of_task(coupling.producer_app, r))
            .collect();
        let coupled_region = coupling.region.unwrap_or(*pdec.domain());
        // Interface-region coupling: each task retrieves only the part of
        // its owned set inside the coupled region.
        let pieces: Vec<_> = dec
            .rank_region(ctx.rank)
            .into_iter()
            .filter_map(|p| p.intersect(&coupled_region))
            .collect();
        'versions: for version in 0..ctx.scenario.iterations {
            for piece in &pieces {
                let res = if coupling.concurrent {
                    ctx.space.get_cont(
                        client,
                        ctx.app,
                        &coupling.var,
                        version,
                        piece,
                        pdec,
                        &producer_clients,
                    )
                } else {
                    ctx.space
                        .get_seq(client, ctx.app, &coupling.var, version, piece)
                };
                let (data, report) = match res {
                    Ok(dr) => dr,
                    Err(e) => {
                        // Abandon this coupling's remaining versions; the
                        // task still completes its other roles.
                        ctx.note_error(e);
                        break 'versions;
                    }
                };
                // Verify every retrieved cell against the field function.
                let mut bad = 0u64;
                for p in piece.iter_points() {
                    let got = data[layout::linear_index(piece, &p[..piece.ndim()])];
                    if got != field_value(vid, version, &p[..piece.ndim()]) {
                        bad += 1;
                    }
                }
                if bad > 0 {
                    ctx.failures.fetch_add(bad, Ordering::Relaxed);
                }
                ctx.reports
                    .lock()
                    .unwrap()
                    .push((ctx.app, ctx.rank, report));
            }
        }
    }

    // One intra-application near-neighbor exchange round per iteration.
    let exchanges = halo_exchanges(dec, ctx.scenario.halo);
    for _ in 0..ctx.scenario.iterations {
        let mut expected = 0u32;
        for ex in &exchanges {
            let peer_rank = if ex.rank_a == ctx.rank {
                ex.rank_b
            } else if ex.rank_b == ctx.rank {
                ex.rank_a
            } else {
                continue;
            };
            let peer_client = ctx.mapped.core_of_task(ctx.app, peer_rank);
            let bytes = ex.cells as usize * ctx.scenario.elem_bytes as usize;
            ctx.dart.send(
                ctx.app,
                TrafficClass::IntraApp,
                client,
                peer_client,
                TAG_HALO,
                Bytes::from(vec![0u8; bytes]),
            );
            expected += 1;
        }
        for _ in 0..expected {
            let msg = mailbox.recv();
            debug_assert_eq!(msg.tag, TAG_HALO);
        }
    }

    ctx.dart.return_mailbox(client, mailbox);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{concurrent_scenario, pattern_pairs, sequential_scenario};
    use insitu_sfc::SpaceFillingCurve;

    #[test]
    fn field_value_deterministic_and_varied() {
        let a = field_value(1, 0, &[1, 2, 3]);
        assert_eq!(a, field_value(1, 0, &[1, 2, 3]));
        assert_ne!(a, field_value(1, 0, &[1, 2, 4]));
        assert_ne!(a, field_value(2, 0, &[1, 2, 3]));
        assert_ne!(a, field_value(1, 1, &[1, 2, 3]));
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn curve_covers_domain() {
        let c = curve_for(&BoundingBox::from_sizes(&[24, 24, 24]));
        assert_eq!(c.side(), 32);
        let c = curve_for(&BoundingBox::from_sizes(&[32, 8]));
        assert_eq!(c.side(), 32);
    }

    #[test]
    fn threaded_concurrent_verifies_clean() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0);
        assert_eq!(o.reports.len(), 4);
        // Full domain redistributed: 32^3... domain is grid*region = (2,2,2)*4 = 8^3.
        assert_eq!(o.ledger.total_bytes(TrafficClass::InterApp), 8 * 8 * 8 * 8);
    }

    #[test]
    fn threaded_sequential_verifies_clean() {
        let mut s = sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0);
        // SAP2 and SAP3 each read the whole domain.
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            2 * 8 * 8 * 8 * 8
        );
        // Sequential gets consult the DHT.
        assert!(o
            .reports
            .iter()
            .any(|(_, _, r)| r.dht_cores_queried > 0 || r.cache_hit));
    }

    #[test]
    fn threaded_mismatched_patterns_verify_clean() {
        // block-cyclic consumer: many pieces, still exact.
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[2]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(o.verify_failures, 0);
    }

    #[test]
    fn iterative_concurrent_coupling_verifies_and_reclaims() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(4);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0);
        // 4 consumers x 4 versions of gets.
        assert_eq!(o.reports.len(), 16);
        // Versions after the first replay the cached schedule.
        let hits = o.reports.iter().filter(|(_, _, r)| r.cache_hit).count();
        assert!(hits >= 12, "expected cache replays, got {hits}");
        // Coupled volume scales with iterations.
        let domain_bytes = s.decomposition(1).domain().num_cells() as u64 * 8;
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            4 * domain_bytes
        );
    }

    #[test]
    fn iterative_sequential_coupling_verifies() {
        let mut s =
            sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(2);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(o.verify_failures, 0);
        let domain_bytes = s.decomposition(1).domain().num_cells() as u64 * 8;
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            2 * 2 * domain_bytes // two consumers x two versions
        );
    }

    #[test]
    fn threaded_stencil_traffic_recorded() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        assert!(o.ledger.total_bytes(TrafficClass::IntraApp) > 0);
    }

    #[test]
    fn telemetry_mirrors_ledger_and_traces_phases() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let rec = Recorder::enabled();
        let o = run_threaded_with(&s, MappingStrategy::DataCentric, &rec);
        assert_eq!(o.verify_failures, 0);
        let snap = rec.metrics_snapshot();
        for class in TrafficClass::ALL {
            let mirrored: u64 = insitu_fabric::Locality::ALL
                .iter()
                .map(|l| snap.counter(&format!("fabric.bytes.{}.{}", class.slug(), l.slug())))
                .sum();
            assert_eq!(mirrored, o.ledger.total_bytes(class), "{class:?}");
        }
        // All four workflow phases and at least one per-client task span.
        let trace = rec.trace_summary();
        for phase in [
            "workflow.register",
            "workflow.map",
            "workflow.group",
            "workflow.execute",
        ] {
            assert!(trace.contains(phase), "missing {phase} in:\n{trace}");
        }
        assert!(
            trace.contains("app1.task"),
            "missing task spans in:\n{trace}"
        );
    }

    #[test]
    fn task_dispatch_is_control_traffic() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        // One 12-byte dispatch per task.
        assert_eq!(o.ledger.total_bytes(TrafficClass::Control), 12 * 12);
    }
}
