//! The threaded executor: one OS thread per computation task, really
//! moving field data through CoDS and HybridDART.
//!
//! Execution clients (threads) are pinned to simulated cores by the task
//! mapping; HybridDART classifies every transfer as shared-memory or
//! network by that placement. Consumers verify every retrieved cell
//! against the deterministic field function, so a passing run certifies
//! the whole redistribution pipeline end to end.
//!
//! The state construction and the per-task routine live in
//! [`crate::exec`], shared with the multi-process
//! [`distrib`](crate::distrib) runner; this module is the single-process
//! wave engine on top.

use crate::exec::{dispatch_payload, wave_tasks, ExecEnv, TAG_DISPATCH};
use crate::mapping::{MappedScenario, MappingStrategy};
use crate::scenario::Scenario;
use insitu_cods::{CodsError, GetReport};
use insitu_fabric::{FaultInjector, LedgerSnapshot, TrafficClass};
use insitu_obs::FlightRecorder;
use insitu_telemetry::Recorder;
use insitu_util::Bytes;
use insitu_workflow::ClientRegistry;
use std::time::Duration;

pub use crate::exec::field_value;
pub(crate) use crate::exec::TAG_COLLECTIVE_BASE;

/// Results of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// Strategy the scenario ran under.
    pub strategy: MappingStrategy,
    /// Byte ledger, comparable with the modeled executor's.
    pub ledger: LedgerSnapshot,
    /// One report per consumer `get`, tagged `(app, rank)`.
    pub reports: Vec<(u32, u64, GetReport)>,
    /// Cells whose retrieved value did not match the field function.
    pub verify_failures: u64,
    /// Operator errors tasks hit, tagged `(app, rank)` and sorted for
    /// determinism. Empty on a fault-free run; never triggers a panic —
    /// a failed coupling is abandoned, the rest of the task proceeds.
    pub errors: Vec<(u32, u64, CodsError)>,
    /// Buffers still registered (staged) when the workflow finished —
    /// lost puts show up here as the difference from evictions.
    pub staged_buffers: u64,
    /// The placements used.
    pub mapped: MappedScenario,
}

/// Execution knobs of the threaded executor, mainly for chaos testing.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// How long a `get` waits for a missing piece, and how long producers
    /// wait for a version to be consumed before giving up on reclaim.
    pub get_timeout: Duration,
    /// Fault sites to consult (inert by default).
    pub injector: FaultInjector,
    /// Flight recorder for causal put/get/pull events (disabled by
    /// default; enable for `insitu profile`).
    pub flight: FlightRecorder,
    /// Run epoch salting the DataSpace/BufferRegistry/DHT key space
    /// (see `CodsConfig::key_epoch`). 0 = standalone run, no salting.
    pub key_epoch: u64,
    /// In a distributed run, the node this process executes tasks for:
    /// subscription sinks are attached only for subscriber clients that
    /// live on this node (remote subscribers get registry-only entries
    /// fed over the wire). `None` — the single-process executors — hosts
    /// every sink locally.
    pub local_node: Option<u32>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            get_timeout: Duration::from_secs(60),
            injector: FaultInjector::none(),
            flight: FlightRecorder::disabled(),
            key_epoch: 0,
            local_node: None,
        }
    }
}

/// Run `scenario` under `strategy` with real threads and data.
///
/// Intended for up to a few hundred tasks (tests, examples); use
/// [`crate::run_modeled`] for paper-scale configurations.
pub fn run_threaded(scenario: &Scenario, strategy: MappingStrategy) -> ThreadedOutcome {
    run_threaded_with(scenario, strategy, &Recorder::disabled())
}

/// Run `scenario` under `strategy`, recording metrics and workflow-phase
/// spans (`workflow.register` → `workflow.map` → `workflow.group` →
/// `workflow.execute`, plus one `app<N>.task` span per execution client)
/// into `recorder`.
pub fn run_threaded_with(
    scenario: &Scenario,
    strategy: MappingStrategy,
    recorder: &Recorder,
) -> ThreadedOutcome {
    run_threaded_configured(scenario, strategy, recorder, &ThreadedConfig::default())
}

/// [`run_threaded_with`] with explicit execution knobs: a custom `get`
/// timeout and a [`FaultInjector`] consulted at the runtime's fault
/// sites. This is the chaos harness's entry point; with the default
/// config it is exactly [`run_threaded_with`].
pub fn run_threaded_configured(
    scenario: &Scenario,
    strategy: MappingStrategy,
    recorder: &Recorder,
    cfg: &ThreadedConfig,
) -> ThreadedOutcome {
    let env = ExecEnv::build(scenario, strategy, recorder, cfg, None, None);
    let machine = env.mapped.machine;
    // One execution client per core, client id == core id. The workflow
    // server's client-management module registers every client (its core
    // stands in for a network address) before any task is dispatched.
    let mut registry = ClientRegistry::new();
    {
        let _span = recorder.span("workflow.register", "workflow", 0);
        for client in 0..machine.total_cores() {
            registry.register(client, client);
        }
    }

    for (wi, wave) in env.mapped.waves.iter().enumerate() {
        let tasks = wave_tasks(&env.scenario, &env.mapped, wave);
        // The workflow management server dispatches each task assignment
        // (app id, rank) to its execution client before launch — the
        // paper's "initial distribution of computation tasks". The server
        // is modeled as co-resident with client 0's node; dispatches are
        // Control-class traffic. These are enqueued before any task thread
        // exists, so each client's first message is its assignment.
        {
            let _span = recorder.span("workflow.group", "workflow", wi as u64);
            for &(app_id, rank, client) in &tasks {
                registry.set_running(client, app_id);
                env.dart.send(
                    app_id,
                    TrafficClass::Control,
                    0,
                    client,
                    TAG_DISPATCH,
                    Bytes::from(dispatch_payload(app_id, rank)),
                );
            }
        }
        let _span = recorder.span("workflow.execute", "workflow", wi as u64);
        let local: Vec<(u32, u64)> = tasks.iter().map(|&(a, r, _)| (a, r)).collect();
        env.run_tasks(&local);
        // Wave complete: its clients return to the idle pool.
        for &(_, _, client) in &tasks {
            registry.set_idle(client);
        }
    }

    env.into_outcome(strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::curve_for;
    use crate::scenario::{concurrent_scenario, pattern_pairs, sequential_scenario};
    use insitu_domain::BoundingBox;
    use insitu_sfc::SpaceFillingCurve;

    #[test]
    fn field_value_deterministic_and_varied() {
        let a = field_value(1, 0, &[1, 2, 3]);
        assert_eq!(a, field_value(1, 0, &[1, 2, 3]));
        assert_ne!(a, field_value(1, 0, &[1, 2, 4]));
        assert_ne!(a, field_value(2, 0, &[1, 2, 3]));
        assert_ne!(a, field_value(1, 1, &[1, 2, 3]));
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn curve_covers_domain() {
        let c = curve_for(&BoundingBox::from_sizes(&[24, 24, 24]));
        assert_eq!(c.side(), 32);
        let c = curve_for(&BoundingBox::from_sizes(&[32, 8]));
        assert_eq!(c.side(), 32);
    }

    #[test]
    fn threaded_concurrent_verifies_clean() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0);
        assert_eq!(o.reports.len(), 4);
        // Full domain redistributed: 32^3... domain is grid*region = (2,2,2)*4 = 8^3.
        assert_eq!(o.ledger.total_bytes(TrafficClass::InterApp), 8 * 8 * 8 * 8);
    }

    #[test]
    fn threaded_sequential_verifies_clean() {
        let mut s = sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0);
        // SAP2 and SAP3 each read the whole domain.
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            2 * 8 * 8 * 8 * 8
        );
        // Sequential gets consult the DHT.
        assert!(o
            .reports
            .iter()
            .any(|(_, _, r)| r.dht_cores_queried > 0 || r.cache_hit));
    }

    #[test]
    fn threaded_mismatched_patterns_verify_clean() {
        // block-cyclic consumer: many pieces, still exact.
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[2]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(o.verify_failures, 0);
    }

    #[test]
    fn iterative_concurrent_coupling_verifies_and_reclaims() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(4);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(o.verify_failures, 0);
        // 4 consumers x 4 versions of gets.
        assert_eq!(o.reports.len(), 16);
        // Versions after the first replay the cached schedule.
        let hits = o.reports.iter().filter(|(_, _, r)| r.cache_hit).count();
        assert!(hits >= 12, "expected cache replays, got {hits}");
        // Coupled volume scales with iterations.
        let domain_bytes = s.decomposition(1).domain().num_cells() as u64 * 8;
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            4 * domain_bytes
        );
    }

    #[test]
    fn iterative_sequential_coupling_verifies() {
        let mut s =
            sequential_scenario(8, 4, 4, 4, pattern_pairs(&[2, 2, 2])[0]).with_iterations(2);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        assert_eq!(o.verify_failures, 0);
        let domain_bytes = s.decomposition(1).domain().num_cells() as u64 * 8;
        assert_eq!(
            o.ledger.total_bytes(TrafficClass::InterApp),
            2 * 2 * domain_bytes // two consumers x two versions
        );
    }

    #[test]
    fn threaded_stencil_traffic_recorded() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        assert!(o.ledger.total_bytes(TrafficClass::IntraApp) > 0);
    }

    #[test]
    fn telemetry_mirrors_ledger_and_traces_phases() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let rec = Recorder::enabled();
        let o = run_threaded_with(&s, MappingStrategy::DataCentric, &rec);
        assert_eq!(o.verify_failures, 0);
        let snap = rec.metrics_snapshot();
        for class in TrafficClass::ALL {
            let mirrored: u64 = insitu_fabric::Locality::ALL
                .iter()
                .map(|l| snap.counter(&format!("fabric.bytes.{}.{}", class.slug(), l.slug())))
                .sum();
            assert_eq!(mirrored, o.ledger.total_bytes(class), "{class:?}");
        }
        // All four workflow phases and at least one per-client task span.
        let trace = rec.trace_summary();
        for phase in [
            "workflow.register",
            "workflow.map",
            "workflow.group",
            "workflow.execute",
        ] {
            assert!(trace.contains(phase), "missing {phase} in:\n{trace}");
        }
        assert!(
            trace.contains("app1.task"),
            "missing task spans in:\n{trace}"
        );
    }

    #[test]
    fn task_dispatch_is_control_traffic() {
        let mut s = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let o = run_threaded(&s, MappingStrategy::RoundRobin);
        // One 12-byte dispatch per task.
        assert_eq!(o.ledger.total_bytes(TrafficClass::Control), 12 * 12);
    }
}
