//! The shared task-mapping pipeline.
//!
//! Both executors (modeled and threaded) place tasks with exactly this
//! code, so their byte ledgers agree by construction. Strategy selection
//! follows the paper: server-side data-centric mapping for bundles of
//! concurrently coupled apps, client-side data-centric mapping for
//! sequentially coupled consumers, and the launcher baseline otherwise.

use crate::scenario::Scenario;
use insitu_fabric::{CoreId, MachineSpec, NodeId};
use insitu_workflow::{
    map_client_side, pairwise_overlaps_region, AppSpec, BundleMapper, CoreAllocator,
    DataCentricServerMapper, PackedMapper, RoundRobinMapper, WorkflowEngine,
};
use std::collections::{BTreeMap, HashMap};

/// Which task-mapping strategy to run a scenario under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MappingStrategy {
    /// The paper's baseline: the placement a plain MPI launcher produces,
    /// dealing ranks to cores in order, filling each node before moving to
    /// the next (the paper calls this "round-robin task mapping").
    RoundRobin,
    /// Locality-aware data-centric mapping (the paper's contribution).
    DataCentric,
    /// Ablation: deal tasks across nodes cyclically (one rank per node per
    /// cycle), the other common launcher mode.
    NodeCyclic,
}

impl MappingStrategy {
    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            MappingStrategy::RoundRobin => "round-robin",
            MappingStrategy::DataCentric => "data-centric",
            MappingStrategy::NodeCyclic => "node-cyclic",
        }
    }

    /// Inverse of [`MappingStrategy::label`]: parse a strategy from its
    /// experiment-output label (used by the CLI and the wire handshake).
    pub fn from_label(label: &str) -> Option<MappingStrategy> {
        match label {
            "round-robin" => Some(MappingStrategy::RoundRobin),
            "data-centric" => Some(MappingStrategy::DataCentric),
            "node-cyclic" => Some(MappingStrategy::NodeCyclic),
            _ => None,
        }
    }
}

/// A fully mapped scenario: every task of every app has a core.
#[derive(Clone, Debug)]
pub struct MappedScenario {
    /// The machine the scenario runs on.
    pub machine: MachineSpec,
    /// `app_cores[&app][rank]` is the core of that task.
    pub app_cores: BTreeMap<u32, Vec<CoreId>>,
    /// The wave structure (from the workflow engine).
    pub waves: Vec<Vec<Vec<u32>>>,
}

impl MappedScenario {
    /// Node a task runs on.
    #[inline]
    pub fn node_of_task(&self, app: u32, rank: u64) -> NodeId {
        self.machine
            .node_of_core(self.app_cores[&app][rank as usize])
    }

    /// Core of a task.
    #[inline]
    pub fn core_of_task(&self, app: u32, rank: u64) -> CoreId {
        self.app_cores[&app][rank as usize]
    }

    /// Render the placement as an ASCII map: one row per node, one cell
    /// per core, labeled with the app id occupying it (`.` = idle). The
    /// picture the paper's Fig. 7 draws.
    pub fn render(&self) -> String {
        let mut grid =
            vec![vec!['.'; self.machine.cores_per_node as usize]; self.machine.nodes as usize];
        for (&app, cores) in &self.app_cores {
            let label = char::from_digit(app % 36, 36).unwrap_or('?');
            for &core in cores {
                let node = self.machine.node_of_core(core) as usize;
                let local = self.machine.local_core(core) as usize;
                // Later waves reuse earlier waves' cores; show the last.
                grid[node][local] = label;
            }
        }
        let mut out = String::new();
        for (n, row) in grid.iter().enumerate() {
            out.push_str(&format!("node {n:>3}: "));
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }
}

/// Map every wave of `scenario` under `strategy`.
///
/// Cores of a wave are released before the next wave is mapped (completed
/// applications free their nodes, which the paper's sequential scenario
/// reuses).
///
/// # Panics
/// Panics if the workflow is invalid or the machine lacks capacity.
pub fn map_scenario(scenario: &Scenario, strategy: MappingStrategy) -> MappedScenario {
    let engine = WorkflowEngine::new(scenario.workflow.clone()).expect("invalid workflow spec");
    let machine = engine.machine_for(scenario.cores_per_node);
    let waves = engine.waves().to_vec();
    let mut alloc = CoreAllocator::new(machine);
    let mut app_cores: BTreeMap<u32, Vec<CoreId>> = BTreeMap::new();
    let mut wave_cores: Vec<CoreId> = Vec::new();

    for wave in &waves {
        // The previous wave's applications have completed; their cores are
        // free for this wave.
        for c in wave_cores.drain(..) {
            alloc.release(c);
        }
        for bundle in wave {
            let apps: Vec<&AppSpec> = bundle
                .iter()
                .map(|&id| scenario.workflow.app(id).expect("validated"))
                .collect();
            let mapping = match strategy {
                MappingStrategy::RoundRobin => PackedMapper.map_bundle(&mut alloc, &apps),
                MappingStrategy::NodeCyclic => RoundRobinMapper.map_bundle(&mut alloc, &apps),
                MappingStrategy::DataCentric => {
                    map_bundle_data_centric(scenario, &app_cores, machine, &mut alloc, &apps)
                }
            };
            for (app, cores) in mapping.cores {
                wave_cores.extend(cores.iter().copied());
                app_cores.insert(app, cores);
            }
        }
    }
    MappedScenario {
        machine,
        app_cores,
        waves,
    }
}

fn map_bundle_data_centric(
    scenario: &Scenario,
    app_cores: &BTreeMap<u32, Vec<CoreId>>,
    machine: MachineSpec,
    alloc: &mut CoreAllocator,
    apps: &[&AppSpec],
) -> insitu_workflow::BundleMapping {
    if apps.len() >= 2 {
        // Concurrently coupled bundle: server-side graph partitioning,
        // restricted to the bundle's coupled region when one is declared.
        let region = apps
            .iter()
            .find_map(|a| scenario.coupling_into(a.id))
            .and_then(|c| c.region);
        return DataCentricServerMapper {
            elem_bytes: scenario.elem_bytes,
            region,
            ..Default::default()
        }
        .map_bundle(alloc, apps);
    }
    let app = apps[0];
    // Sequentially coupled consumer with an already-mapped producer:
    // client-side mapping toward the data.
    if let Some(coupling) = scenario.coupling_into(app.id) {
        if let Some(producer_cores) = app_cores.get(&coupling.producer_app) {
            let producer_dec = scenario.decomposition(coupling.producer_app);
            let consumer_dec = scenario.decomposition(app.id);
            let coupled_region = coupling.region.unwrap_or(*producer_dec.domain());
            // Bytes of each consumer task's region per node, precomputed
            // from the closed-form pairwise overlaps.
            let mut per_rank: Vec<HashMap<NodeId, u64>> = vec![HashMap::new(); app.ntasks as usize];
            for (prank, crank, cells) in
                pairwise_overlaps_region(producer_dec, consumer_dec, &coupled_region)
            {
                let node = machine.node_of_core(producer_cores[prank as usize]);
                *per_rank[crank as usize].entry(node).or_insert(0) +=
                    cells as u64 * scenario.elem_bytes;
            }
            let cores = map_client_side(alloc, app.ntasks, |rank| {
                per_rank[rank as usize]
                    .iter()
                    .map(|(&n, &b)| (n, b))
                    .collect()
            });
            let mut mapping = insitu_workflow::BundleMapping::default();
            mapping.cores.insert(app.id, cores);
            return mapping;
        }
    }
    // Producer (or uncoupled) app: launcher placement.
    PackedMapper.map_bundle(alloc, apps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{concurrent_scenario, pattern_pairs, sequential_scenario};
    use insitu_workflow::pairwise_overlaps;

    fn small_concurrent() -> Scenario {
        // 16 producer tasks, 8 consumer tasks, 4^3 regions, 4-core nodes.
        let mut s = concurrent_scenario(16, 8, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        s
    }

    fn small_sequential() -> Scenario {
        let mut s = sequential_scenario(16, 8, 8, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        s
    }

    #[test]
    fn concurrent_mapping_places_all_tasks() {
        for strat in [
            MappingStrategy::RoundRobin,
            MappingStrategy::DataCentric,
            MappingStrategy::NodeCyclic,
        ] {
            let m = map_scenario(&small_concurrent(), strat);
            assert_eq!(m.app_cores[&1].len(), 16);
            assert_eq!(m.app_cores[&2].len(), 8);
            // No core used twice within the concurrent wave.
            let mut all: Vec<CoreId> = m.app_cores.values().flatten().copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 24, "{strat:?}");
        }
    }

    #[test]
    fn machine_sized_for_widest_wave() {
        let m = map_scenario(&small_concurrent(), MappingStrategy::RoundRobin);
        assert_eq!(m.machine, MachineSpec::new(6, 4));
        let m = map_scenario(&small_sequential(), MappingStrategy::RoundRobin);
        // Widest wave: SAP1 alone (16) == SAP2+SAP3 (16) -> 4 nodes.
        assert_eq!(m.machine, MachineSpec::new(4, 4));
    }

    #[test]
    fn sequential_waves_reuse_cores() {
        let m = map_scenario(&small_sequential(), MappingStrategy::RoundRobin);
        // SAP2+SAP3 run on the same cores SAP1 used.
        let mut second_wave: Vec<CoreId> = m.app_cores[&2]
            .iter()
            .chain(m.app_cores[&3].iter())
            .copied()
            .collect();
        second_wave.sort_unstable();
        let mut first_wave = m.app_cores[&1].clone();
        first_wave.sort_unstable();
        assert_eq!(second_wave, first_wave);
    }

    #[test]
    fn data_centric_concurrent_colocates_couples() {
        // Matched blocked/blocked decompositions: count coupled pairs
        // sharing a node under both strategies; data-centric must win.
        let s = small_concurrent();
        let rr = map_scenario(&s, MappingStrategy::RoundRobin);
        let dc = map_scenario(&s, MappingStrategy::DataCentric);
        let p = s.decomposition(1);
        let c = s.decomposition(2);
        let colocated_bytes = |m: &MappedScenario| -> u128 {
            pairwise_overlaps(p, c)
                .into_iter()
                .filter(|&(pr, cr, _)| m.node_of_task(1, pr) == m.node_of_task(2, cr))
                .map(|(_, _, cells)| cells)
                .sum()
        };
        assert!(
            colocated_bytes(&dc) > colocated_bytes(&rr),
            "dc {} <= rr {}",
            colocated_bytes(&dc),
            colocated_bytes(&rr)
        );
        // For this perfectly matched case the partitioner should get close
        // to full co-location.
        let total: u128 = pairwise_overlaps(p, c).iter().map(|&(_, _, c)| c).sum();
        assert!(
            colocated_bytes(&dc) * 2 >= total,
            "less than half co-located"
        );
    }

    #[test]
    fn data_centric_sequential_follows_data() {
        let s = small_sequential();
        let rr = map_scenario(&s, MappingStrategy::RoundRobin);
        let dc = map_scenario(&s, MappingStrategy::DataCentric);
        let p = s.decomposition(1);
        for consumer in [2u32, 3] {
            let c = s.decomposition(consumer);
            let local = |m: &MappedScenario| -> u128 {
                pairwise_overlaps(p, c)
                    .into_iter()
                    .filter(|&(pr, cr, _)| m.node_of_task(1, pr) == m.node_of_task(consumer, cr))
                    .map(|(_, _, cells)| cells)
                    .sum()
            };
            assert!(local(&dc) >= local(&rr), "app {consumer}");
        }
    }

    #[test]
    fn strategies_have_labels() {
        assert_eq!(MappingStrategy::RoundRobin.label(), "round-robin");
        assert_eq!(MappingStrategy::DataCentric.label(), "data-centric");
    }

    #[test]
    fn render_shows_one_row_per_node() {
        let m = map_scenario(&small_concurrent(), MappingStrategy::RoundRobin);
        let map = m.render();
        assert_eq!(map.lines().count(), m.machine.nodes as usize);
        // 24 tasks on 6 nodes x 4 cores: every core labeled 1 or 2
        // (count only the cells after the "node N:" prefix).
        let labels: usize = map
            .lines()
            .map(|l| l.split(": ").nth(1).unwrap())
            .flat_map(|cells| cells.chars())
            .filter(|&c| c == '1' || c == '2')
            .count();
        assert_eq!(labels, 24);
    }

    #[test]
    fn paper_fig7_shape_colocates_bundle() {
        // Fig. 7's illustration: APP1 with 12 tasks and APP2 with 4 tasks
        // on two 8-core nodes — data-centric mapping co-locates each APP2
        // task with the APP1 tasks it couples to.
        use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
        use insitu_workflow::{AppSpec, WorkflowSpec};
        let domain = BoundingBox::from_sizes(&[12, 4]);
        let app1 = AppSpec::new(1, "APP1", 12).with_decomposition(Decomposition::new(
            domain,
            ProcessGrid::new(&[12, 1]),
            Distribution::Blocked,
        ));
        let app2 = AppSpec::new(2, "APP2", 4).with_decomposition(Decomposition::new(
            domain,
            ProcessGrid::new(&[4, 1]),
            Distribution::Blocked,
        ));
        let s = Scenario {
            name: "fig7".into(),
            cores_per_node: 8,
            workflow: WorkflowSpec {
                apps: vec![app1, app2],
                edges: vec![],
                bundles: vec![vec![1, 2]],
            },
            subscriptions: vec![],
            couplings: vec![crate::CouplingSpec {
                var: "v".into(),
                producer_app: 1,
                consumer_apps: vec![2],
                concurrent: true,
                region: None,
            }],
            halo: 1,
            elem_bytes: 8,
            model: insitu_fabric::NetworkModel::jaguar(),
            iterations: 1,
        };
        let m = map_scenario(&s, MappingStrategy::DataCentric);
        assert_eq!(m.machine, MachineSpec::new(2, 8));
        // Every APP2 task couples with 3 consecutive APP1 tasks; all three
        // must share its node.
        for crank in 0..4u64 {
            let cnode = m.node_of_task(2, crank);
            for prank in crank * 3..(crank + 1) * 3 {
                assert_eq!(
                    m.node_of_task(1, prank),
                    cnode,
                    "APP1 task {prank} split from APP2 task {crank}\n{}",
                    m.render()
                );
            }
        }
    }
}
