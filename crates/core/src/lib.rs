//! # insitu — in-situ execution of coupled scientific workflows
//!
//! A Rust reproduction of Zhang et al., *"Enabling In-situ Execution of
//! Coupled Scientific Workflow on Multi-core Platform"* (IPDPS 2012): a
//! distributed data sharing and task execution framework that (1) maps
//! computations from coupled applications onto processor cores so that
//! most data exchange happens through intra-node shared memory, and
//! (2) provides a shared-space programming abstraction (CoDS) with
//! one-sided asynchronous `put`/`get` operators addressed by geometric
//! descriptors.
//!
//! ## Quick start
//!
//! ```
//! use insitu::{concurrent_scenario, pattern_pairs, run_threaded, MappingStrategy};
//! use insitu_fabric::TrafficClass;
//!
//! // A miniature of the paper's concurrent coupling scenario: 8 producer
//! // tasks feed 4 consumer tasks over a shared 3-D domain.
//! let mut scenario = concurrent_scenario(8, 4, 4, pattern_pairs(&[2, 2, 2])[0]);
//! scenario.cores_per_node = 4;
//!
//! let outcome = run_threaded(&scenario, MappingStrategy::DataCentric);
//! assert_eq!(outcome.verify_failures, 0);
//! let net = outcome.ledger.network_bytes(TrafficClass::InterApp);
//! let total = outcome.ledger.total_bytes(TrafficClass::InterApp);
//! println!("coupled data over network: {net} of {total} bytes");
//! ```
//!
//! ## Layers
//!
//! | crate | role |
//! |---|---|
//! | `insitu-domain` | boxes, decompositions, overlap math |
//! | `insitu-sfc` | Hilbert/Morton curves, box → index spans |
//! | `insitu-partition` | multilevel graph partitioner (METIS stand-in) |
//! | `insitu-fabric` | simulated machine, byte ledger, torus, time model |
//! | `insitu-dart` | HybridDART transports and registered buffers |
//! | `insitu-cods` | the CoDS shared space (DHT + schedules + put/get) |
//! | `insitu-workflow` | DAG parsing, bundles, task mappers, grouping |
//! | `insitu-core` | this facade: scenarios and the two executors |
//!
//! Two executors share one mapping/accounting pipeline: [`run_threaded`]
//! really moves data between threads (tests, examples), [`run_modeled`]
//! evaluates the same byte arithmetic analytically (the paper-scale
//! experiment harness).

#![warn(missing_docs)]

pub mod analysis;
pub mod comm;
pub mod distrib;
mod exec;
pub mod mapping;
pub mod mapreduce;
pub mod miniapp;
pub mod modeled;
pub mod pgas;
pub mod scenario;
pub mod threaded;

pub use comm::{GroupComm, ReduceOp};
pub use distrib::{join, serve, DistribOutcome, JoinOptions, ServeOptions};
pub use mapping::{map_scenario, MappedScenario, MappingStrategy};
pub use modeled::{
    run_modeled, run_modeled_configured, run_modeled_with, ModeledConfig, ModeledOutcome,
};
pub use pgas::GlobalArray;
pub use scenario::{
    aligned_grid, balanced_grid, concurrent_scenario, concurrent_scenario_with_grids,
    pattern_pairs, sequential_scenario, sequential_scenario_with_grids, CouplingSpec, PatternPair,
    Scenario, SubscriptionSpec,
};
pub use threaded::{
    field_value, run_threaded, run_threaded_configured, run_threaded_with, ThreadedConfig,
    ThreadedOutcome,
};

// Re-export the substrate crates so downstream users need one dependency.
pub use insitu_cods as cods;
pub use insitu_dart as dart;
pub use insitu_domain as domain;
pub use insitu_fabric as fabric;
pub use insitu_obs as obs;
pub use insitu_partition as partition;
pub use insitu_sfc as sfc;
pub use insitu_sub as sub;
pub use insitu_workflow as workflow;
