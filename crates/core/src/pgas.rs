//! A PGAS-style view over the shared space — the other half of the
//! paper's §VII future work ("supporting other programming models such as
//! Partitioned Global Address Space (PGAS) and MapReduce").
//!
//! [`GlobalArray`] presents one coupled variable as a partitioned global
//! array: every client reads or writes arbitrary rectangular sections by
//! global coordinates, without naming owners, pieces or schedules. Reads
//! of remote sections become receiver-driven pulls (locality-accounted
//! like every CoDS transfer); writes are legal only within the caller's
//! own partition (the "partitioned" in PGAS — remote writes would race).

use insitu_cods::{CodsError, CodsSpace, FieldData, GetReport};
use insitu_domain::{layout, BoundingBox, Decomposition};
use insitu_fabric::ClientId;
use std::sync::Arc;

/// A handle on one globally addressable array, owned cooperatively by the
/// ranks of `decomposition` (rank `r` runs on `clients[r]`).
#[derive(Clone)]
pub struct GlobalArray {
    space: Arc<CodsSpace>,
    name: String,
    app: u32,
    decomposition: Decomposition,
    clients: Vec<ClientId>,
    version: u64,
}

impl GlobalArray {
    /// Create the handle (all ranks construct it identically).
    ///
    /// # Panics
    /// Panics if `clients` does not list one client per rank.
    pub fn new(
        space: Arc<CodsSpace>,
        name: impl Into<String>,
        app: u32,
        decomposition: Decomposition,
        clients: Vec<ClientId>,
        version: u64,
    ) -> Self {
        assert_eq!(
            clients.len() as u64,
            decomposition.num_ranks(),
            "one client per rank required"
        );
        GlobalArray {
            space,
            name: name.into(),
            app,
            decomposition,
            clients,
            version,
        }
    }

    /// The array's global bounds.
    pub fn bounds(&self) -> &BoundingBox {
        self.decomposition.domain()
    }

    /// The region owned by `rank` (its writable partition).
    pub fn partition_of(&self, rank: u64) -> Vec<BoundingBox> {
        self.decomposition.rank_region(rank)
    }

    /// Publish `rank`'s partition contents. `fill` is evaluated at every
    /// owned cell. This is the PGAS "local write": only the owner writes
    /// its partition.
    pub fn write_local(
        &self,
        rank: u64,
        mut fill: impl FnMut(&[u64]) -> f64,
    ) -> Result<(), CodsError> {
        let client = self.clients[rank as usize];
        for (pi, piece) in self.decomposition.rank_region(rank).into_iter().enumerate() {
            let data = layout::fill_with(&piece, |p| fill(&p[..piece.ndim()]));
            self.space.put_cont(
                client,
                self.app,
                &self.name,
                self.version,
                pi as u64,
                &piece,
                &data,
            )?;
        }
        Ok(())
    }

    /// Read an arbitrary global section from `reader` (any client). Local
    /// parts come from shared memory, remote parts are pulled over the
    /// (simulated) network; the report says which. When the section falls
    /// entirely inside one stored piece the result is a zero-copy view of
    /// the staged buffer.
    pub fn read(
        &self,
        reader: ClientId,
        section: &BoundingBox,
    ) -> Result<(FieldData, GetReport), CodsError> {
        self.space.get_cont(
            reader,
            self.app,
            &self.name,
            self.version,
            section,
            &self.decomposition,
            &self.clients,
        )
    }

    /// Read a single element by global coordinates.
    pub fn read_at(&self, reader: ClientId, p: &[u64]) -> Result<f64, CodsError> {
        let cell = BoundingBox::new(p, p);
        Ok(self.read(reader, &cell)?.0[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_cods::{CodsConfig, Dht};
    use insitu_dart::DartRuntime;
    use insitu_domain::{Distribution, ProcessGrid};
    use insitu_fabric::{MachineSpec, Placement, TransferLedger};
    use insitu_sfc::HilbertCurve;

    fn array() -> GlobalArray {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 4)), vec![0, 2]);
        let space = CodsSpace::new(dart, dht, CodsConfig::default());
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[16, 16]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        GlobalArray::new(space, "ga", 1, dec, vec![0, 1, 2, 3], 0)
    }

    fn value(p: &[u64]) -> f64 {
        (p[0] * 31 + p[1]) as f64
    }

    #[test]
    fn global_reads_see_all_partitions() {
        let ga = array();
        for r in 0..4 {
            ga.write_local(r, value).unwrap();
        }
        // A section spanning all four partitions, read by client 3.
        let section = BoundingBox::new(&[4, 4], &[11, 11]);
        let (data, report) = ga.read(3, &section).unwrap();
        for p in section.iter_points() {
            assert_eq!(
                data[layout::linear_index(&section, &p[..2])],
                value(&p[..2])
            );
        }
        assert!(report.ops >= 4);
        // Mixed locality: some shared memory, some network.
        assert!(report.shm_bytes > 0 && report.net_bytes > 0);
    }

    #[test]
    fn read_at_single_elements() {
        let ga = array();
        for r in 0..4 {
            ga.write_local(r, value).unwrap();
        }
        assert_eq!(ga.read_at(0, &[0, 0]).unwrap(), 0.0);
        assert_eq!(ga.read_at(0, &[15, 15]).unwrap(), value(&[15, 15]));
        assert_eq!(ga.read_at(2, &[7, 9]).unwrap(), value(&[7, 9]));
    }

    #[test]
    fn partitions_tile_bounds() {
        let ga = array();
        let total: u128 = (0..4)
            .flat_map(|r| ga.partition_of(r))
            .map(|b| b.num_cells())
            .sum();
        assert_eq!(total, ga.bounds().num_cells());
    }

    #[test]
    fn read_blocks_until_owner_writes() {
        let ga = array();
        ga.write_local(0, value).unwrap();
        // Partition 3 not yet written: a reader thread blocks, then the
        // owner writes, then the read completes.
        let ga2 = ga.clone();
        let reader = std::thread::spawn(move || {
            let section = BoundingBox::new(&[12, 12], &[15, 15]);
            ga2.read(0, &section).unwrap().0
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        ga.write_local(3, value).unwrap();
        let data = reader.join().unwrap();
        assert_eq!(data[0], value(&[12, 12]));
    }

    #[test]
    fn cyclic_partitions_supported() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        let space = CodsSpace::new(dart, dht, CodsConfig::default());
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Cyclic,
        );
        let ga = GlobalArray::new(space, "cy", 1, dec, vec![0, 1, 2, 3], 0);
        for r in 0..4 {
            ga.write_local(r, value).unwrap();
        }
        let section = BoundingBox::new(&[1, 1], &[6, 6]);
        let (data, _) = ga.read(1, &section).unwrap();
        for p in section.iter_points() {
            assert_eq!(
                data[layout::linear_index(&section, &p[..2])],
                value(&p[..2])
            );
        }
    }

    #[test]
    #[should_panic(expected = "one client per rank")]
    fn rejects_wrong_client_count() {
        let ga = array();
        let _ = GlobalArray::new(
            Arc::clone(&ga.space),
            "bad",
            1,
            ga.decomposition,
            vec![0, 1],
            0,
        );
    }
}
