//! The shared execution environment of the threaded and distributed
//! executors.
//!
//! [`run_threaded`](crate::run_threaded) and the socketized
//! [`distrib`](crate::distrib) runner execute the *same* task routine
//! against the *same* deterministically constructed state — mapping,
//! placement, ledger, HybridDART runtime, CoDS space. `ExecEnv::build`
//! is that construction, parameterized over the wire: with no transport
//! it is the single-process executor; with a
//! [`Transport`]/[`SpaceMirror`] pair every replica builds identical
//! local state and the wire carries only what crosses processes. That
//! replication is why a distributed run's merged ledger is
//! byte-identical to the single-process ledger: each logical transfer
//! is accounted exactly once, in the process that initiates it.

use crate::mapping::{map_scenario, MappedScenario, MappingStrategy};
use crate::scenario::Scenario;
use crate::threaded::ThreadedConfig;
use insitu_cods::{
    var_id, CodsConfig, CodsError, CodsSpace, Dht, GetReport, SpaceMirror, SubHandle,
};
use insitu_dart::{DartRuntime, Transport};
use insitu_domain::stencil::halo_exchanges;
use insitu_domain::{layout, BoundingBox};
use insitu_fabric::{ClientId, Placement, TrafficClass, TransferLedger};
use insitu_sfc::HilbertCurve;
use insitu_sub::{SubSpec, TakeResult};
use insitu_telemetry::Recorder;
use insitu_util::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Message tag for halo-exchange payloads.
pub(crate) const TAG_HALO: u64 = 0x48414c4f; // "HALO"

/// Message tag for task-dispatch control messages (workflow server ->
/// execution client).
pub(crate) const TAG_DISPATCH: u64 = 0x44495350; // "DISP"

/// High-bit tag namespace reserved for group collectives (see
/// [`crate::comm`]); disjoint from [`TAG_HALO`] and user tags.
pub(crate) const TAG_COLLECTIVE_BASE: u64 = 0xC000_0000_0000_0000;

/// Bytes of one task-dispatch message (app id + rank).
pub(crate) const DISPATCH_BYTES: u64 = 12;

/// The `(app, rank)` payload of a dispatch message.
pub(crate) fn dispatch_payload(app: u32, rank: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(DISPATCH_BYTES as usize);
    payload.extend_from_slice(&app.to_ne_bytes());
    payload.extend_from_slice(&rank.to_ne_bytes());
    payload
}

/// Every task of `wave` as `(app, rank, client)`, in the canonical
/// dispatch order (bundle, then app, then rank) both executors use.
pub(crate) fn wave_tasks(
    scenario: &Scenario,
    mapped: &MappedScenario,
    wave: &[Vec<u32>],
) -> Vec<(u32, u64, ClientId)> {
    let mut tasks = Vec::new();
    for bundle in wave {
        for &app_id in bundle {
            let ntasks = scenario.workflow.app(app_id).unwrap().ntasks as u64;
            for rank in 0..ntasks {
                tasks.push((app_id, rank, mapped.core_of_task(app_id, rank)));
            }
        }
    }
    tasks
}

/// The deterministic synthetic field: every `(variable, version, point)`
/// has one correct value, so consumers can verify redistribution exactly.
pub fn field_value(var: u64, version: u64, p: &[u64]) -> f64 {
    let mut h = var ^ version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &c in p {
        h = (h ^ c.wrapping_add(0x5851_F42D)).wrapping_mul(0x1000_0000_01b3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

pub(crate) fn curve_for(domain: &BoundingBox) -> HilbertCurve {
    let max_extent = (0..domain.ndim()).map(|d| domain.extent(d)).max().unwrap();
    let order = 64 - (max_extent - 1).leading_zeros();
    HilbertCurve::new(domain.ndim(), order.max(1))
}

/// One locally hosted subscription piece: the standing query covering
/// the intersection of a subscriber rank's region with the subscribed
/// region, plus the index of the [`crate::scenario::SubscriptionSpec`]
/// it compiles from.
pub(crate) struct SubPiece {
    pub spec_idx: usize,
    pub handle: SubHandle,
}

/// Deterministically constructed per-process execution state. In a
/// distributed run every process builds one of these from the same
/// `(scenario, strategy, config)` and they agree field for field.
pub(crate) struct ExecEnv {
    pub scenario: Arc<Scenario>,
    pub mapped: Arc<MappedScenario>,
    pub dart: Arc<DartRuntime>,
    pub space: Arc<CodsSpace>,
    pub ledger: Arc<TransferLedger>,
    pub reports: Arc<Mutex<Vec<(u32, u64, GetReport)>>>,
    pub failures: Arc<AtomicU64>,
    pub errors: Arc<Mutex<Vec<(u32, u64, CodsError)>>>,
    pub get_timeout: Duration,
    /// Locally hosted subscription handles, keyed by subscriber task.
    pub subs: Arc<HashMap<(u32, u64), Vec<SubPiece>>>,
}

impl ExecEnv {
    /// Map the scenario and build the full execution substrate. `wire`
    /// and `mirror` plug in the network transport for multi-process
    /// runs; `None` is the single-process executor.
    pub fn build(
        scenario: &Scenario,
        strategy: MappingStrategy,
        recorder: &Recorder,
        cfg: &ThreadedConfig,
        wire: Option<Arc<dyn Transport>>,
        mirror: Option<Arc<dyn SpaceMirror>>,
    ) -> ExecEnv {
        assert_eq!(scenario.elem_bytes, 8, "threaded mode stores f64 fields");
        let mapped = {
            let _span = recorder.span("workflow.map", "workflow", 0);
            Arc::new(map_scenario(scenario, strategy))
        };
        let machine = mapped.machine;
        let placement = Arc::new(Placement::pack_sequential(machine, machine.total_cores()));
        let ledger = Arc::new(TransferLedger::with_observer(
            recorder,
            cfg.injector.clone(),
        ));
        let dart = match wire {
            Some(wire) => DartRuntime::with_transport(
                placement,
                Arc::clone(&ledger),
                recorder.clone(),
                cfg.injector.clone(),
                cfg.flight.clone(),
                wire,
            ),
            None => DartRuntime::with_flight(
                placement,
                Arc::clone(&ledger),
                recorder.clone(),
                cfg.injector.clone(),
                cfg.flight.clone(),
            ),
        };
        let domain = *scenario
            .workflow
            .apps
            .iter()
            .find_map(|a| a.decomposition.as_ref())
            .expect("no decomposition in workflow")
            .domain();
        let dht_clients: Vec<ClientId> = (0..machine.nodes).map(|n| machine.core(n, 0)).collect();
        let dht = Dht::new(Box::new(curve_for(&domain)), dht_clients);
        let cods_cfg = CodsConfig {
            get_timeout: cfg.get_timeout,
            // Jaguar XT5 nodes carry 16 GB; staged coupling data must fit.
            staging_limit_per_node: Some(16 << 30),
            key_epoch: cfg.key_epoch,
            ..Default::default()
        };
        let space = match mirror {
            Some(mirror) => CodsSpace::with_mirror(Arc::clone(&dart), dht, cods_cfg, mirror),
            None => CodsSpace::new(Arc::clone(&dart), dht, cods_cfg),
        };

        let scenario = Arc::new(scenario.clone());
        // Declare consumption expectations so producers can reclaim old
        // versions: one completed get per consumer piece per version.
        // Deterministic from the scenario, so every replica agrees.
        for coupling in &scenario.couplings {
            let coupled_region = coupling
                .region
                .unwrap_or(*scenario.decomposition(coupling.producer_app).domain());
            let mut gets = 0u64;
            for &capp in &coupling.consumer_apps {
                let cdec = scenario.decomposition(capp);
                for r in 0..cdec.num_ranks() {
                    gets += cdec
                        .rank_region(r)
                        .into_iter()
                        .filter(|p| p.intersect(&coupled_region).is_some())
                        .count() as u64;
                }
            }
            space.set_expected_gets(&coupling.var, gets);
        }

        // Standing queries: every process registers every subscription
        // (so producers anywhere can fan out pushes with the right
        // subscriber address), but a sink is attached only where the
        // subscriber task will actually run — remote subscribers stay
        // registry-only entries whose fragments travel the wire. Each
        // piece also owes one resync `get` per on-stride version, which
        // keeps producer-side reclaim accounting deterministic.
        let cpn = machine.cores_per_node;
        let mut subs: HashMap<(u32, u64), Vec<SubPiece>> = HashMap::new();
        for (si, sub) in scenario.subscriptions.iter().enumerate() {
            let sdec = scenario.decomposition(sub.subscriber_app);
            let region = sub
                .region
                .unwrap_or(*scenario.decomposition(sub.producer_app).domain());
            let mut pieces = 0u64;
            for rank in 0..sdec.num_ranks() {
                let client = mapped.core_of_task(sub.subscriber_app, rank);
                for piece in sdec
                    .rank_region(rank)
                    .into_iter()
                    .filter_map(|p| p.intersect(&region))
                {
                    pieces += 1;
                    if cfg.local_node.is_none_or(|n| client / cpn == n) {
                        let handle = space.subscribe_local(
                            client,
                            sub.subscriber_app,
                            &sub.var,
                            &piece,
                            sub.every_k,
                            sub.queue_cap,
                        );
                        subs.entry((sub.subscriber_app, rank))
                            .or_default()
                            .push(SubPiece {
                                spec_idx: si,
                                handle,
                            });
                    } else {
                        space.apply_remote_subscribe(&SubSpec {
                            vid: space.key_of(&sub.var),
                            region: piece,
                            every_k: sub.every_k,
                            subscriber: client,
                        });
                    }
                }
            }
            space.add_sub_expected_gets(&sub.var, sub.every_k, pieces);
        }

        ExecEnv {
            scenario,
            mapped,
            dart,
            space,
            ledger,
            reports: Arc::new(Mutex::new(Vec::new())),
            failures: Arc::new(AtomicU64::new(0)),
            errors: Arc::new(Mutex::new(Vec::new())),
            get_timeout: cfg.get_timeout,
            subs: Arc::new(subs),
        }
    }

    /// Run the given tasks on real threads (one per task, 512 KiB
    /// stacks) and join them. Each task's dispatch message must already
    /// sit in its client's mailbox.
    pub fn run_tasks(&self, tasks: &[(u32, u64)]) {
        let mut handles = Vec::new();
        for &(app, rank) in tasks {
            let ctx = TaskCtx {
                scenario: Arc::clone(&self.scenario),
                mapped: Arc::clone(&self.mapped),
                space: Arc::clone(&self.space),
                dart: Arc::clone(&self.dart),
                reports: Arc::clone(&self.reports),
                failures: Arc::clone(&self.failures),
                errors: Arc::clone(&self.errors),
                get_timeout: self.get_timeout,
                subs: Arc::clone(&self.subs),
                app,
                rank,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("app{app}-r{rank}"))
                    .stack_size(512 * 1024)
                    .spawn(move || task_routine(ctx))
                    .expect("thread spawn failed"),
            );
        }
        for h in handles {
            h.join().expect("task thread panicked");
        }
    }

    /// Task errors sorted so the outcome is a pure function of
    /// scenario + faults (threads report in scheduling order).
    pub fn sorted_errors(&self) -> Vec<(u32, u64, CodsError)> {
        let mut errors = self.errors.lock().unwrap().clone();
        errors.sort_by(|a, b| {
            (a.0, a.1, format!("{:?}", a.2)).cmp(&(b.0, b.1, format!("{:?}", b.2)))
        });
        errors
    }

    /// Consume the environment into a [`ThreadedOutcome`] once every
    /// task thread has joined.
    pub fn into_outcome(self, strategy: MappingStrategy) -> crate::threaded::ThreadedOutcome {
        let errors = self.sorted_errors();
        let reports = Arc::try_unwrap(self.reports)
            .expect("threads done")
            .into_inner()
            .unwrap();
        let staged_buffers = self.dart.registry().len() as u64;
        crate::threaded::ThreadedOutcome {
            strategy,
            ledger: self.ledger.snapshot(),
            reports,
            verify_failures: self.failures.load(Ordering::Relaxed),
            errors,
            staged_buffers,
            mapped: Arc::try_unwrap(self.mapped).expect("threads done"),
        }
    }
}

struct TaskCtx {
    scenario: Arc<Scenario>,
    mapped: Arc<MappedScenario>,
    space: Arc<CodsSpace>,
    dart: Arc<DartRuntime>,
    reports: Arc<Mutex<Vec<(u32, u64, GetReport)>>>,
    failures: Arc<AtomicU64>,
    errors: Arc<Mutex<Vec<(u32, u64, CodsError)>>>,
    get_timeout: Duration,
    subs: Arc<HashMap<(u32, u64), Vec<SubPiece>>>,
    app: u32,
    rank: u64,
}

impl TaskCtx {
    /// Record an operator error; the task abandons the failed coupling
    /// but keeps running (halo exchange in particular must complete so
    /// peers do not block forever on their mailboxes).
    fn note_error(&self, e: CodsError) {
        self.errors.lock().unwrap().push((self.app, self.rank, e));
    }
}

/// The statically linked "application subroutine" every execution client
/// runs: produce and/or consume coupled data, then do one stencil
/// exchange round. Identical in single-process and distributed runs.
fn task_routine(ctx: TaskCtx) {
    let client = ctx.mapped.core_of_task(ctx.app, ctx.rank);
    // One span per execution client, keyed by client id, so the trace
    // export shows a per-client timeline comparable with the modeled
    // executor's synthetic spans.
    let _task_span =
        ctx.dart
            .recorder()
            .span(&format!("app{}.task", ctx.app), "execute", client as u64);
    let mailbox = ctx.dart.take_mailbox(client);

    // First message is always this client's task assignment from the
    // workflow server (enqueued before the thread was spawned).
    let dispatch = mailbox.recv();
    assert_eq!(dispatch.tag, TAG_DISPATCH, "expected dispatch first");
    assert_eq!(
        u32::from_ne_bytes(dispatch.payload[..4].try_into().unwrap()),
        ctx.app
    );
    assert_eq!(
        u64::from_ne_bytes(dispatch.payload[4..12].try_into().unwrap()),
        ctx.rank
    );

    let dec = ctx.scenario.decomposition(ctx.app);

    // Producer role: one put sequence per iteration (version). For
    // concurrent couplings, version v-1 is reclaimed once every consumer
    // get of it has completed — the in-memory window a long-running
    // simulation needs.
    'producer: for coupling in &ctx.scenario.couplings {
        if coupling.producer_app != ctx.app {
            continue;
        }
        let vid = var_id(&coupling.var);
        let pieces = dec.rank_region(ctx.rank);
        for version in 0..ctx.scenario.iterations {
            for (pi, piece) in pieces.iter().enumerate() {
                let data =
                    layout::fill_with(piece, |p| field_value(vid, version, &p[..piece.ndim()]));
                let res = if coupling.concurrent {
                    ctx.space.put_cont(
                        client,
                        ctx.app,
                        &coupling.var,
                        version,
                        pi as u64,
                        piece,
                        &data,
                    )
                } else {
                    ctx.space.put_seq(
                        client,
                        ctx.app,
                        &coupling.var,
                        version,
                        pi as u64,
                        piece,
                        &data,
                    )
                };
                if let Err(e) = res {
                    // Abandon this coupling; other couplings and the halo
                    // round still run so peers are not deadlocked.
                    ctx.note_error(e);
                    continue 'producer;
                }
            }
            if coupling.concurrent && version > 0 {
                // Reclaim the previous version once fully consumed
                // (rank 0 evicts on behalf of the group; eviction of a
                // consumed version is idempotent).
                if ctx.rank == 0
                    && ctx
                        .space
                        .wait_version_consumed(&coupling.var, version - 1, ctx.get_timeout)
                {
                    ctx.space.evict_version(&coupling.var, version - 1);
                }
            }
        }
    }

    // Consumer role: retrieve and verify every iteration's version.
    for coupling in &ctx.scenario.couplings {
        if !coupling.consumer_apps.contains(&ctx.app) {
            continue;
        }
        let vid = var_id(&coupling.var);
        let pdec = ctx.scenario.decomposition(coupling.producer_app);
        let producer_clients: Vec<ClientId> = (0..pdec.num_ranks())
            .map(|r| ctx.mapped.core_of_task(coupling.producer_app, r))
            .collect();
        let coupled_region = coupling.region.unwrap_or(*pdec.domain());
        // Interface-region coupling: each task retrieves only the part of
        // its owned set inside the coupled region.
        let pieces: Vec<_> = dec
            .rank_region(ctx.rank)
            .into_iter()
            .filter_map(|p| p.intersect(&coupled_region))
            .collect();
        'versions: for version in 0..ctx.scenario.iterations {
            for piece in &pieces {
                let res = if coupling.concurrent {
                    ctx.space.get_cont(
                        client,
                        ctx.app,
                        &coupling.var,
                        version,
                        piece,
                        pdec,
                        &producer_clients,
                    )
                } else {
                    ctx.space
                        .get_seq(client, ctx.app, &coupling.var, version, piece)
                };
                let (data, report) = match res {
                    Ok(dr) => dr,
                    Err(e) => {
                        // Abandon this coupling's remaining versions; the
                        // task still completes its other roles.
                        ctx.note_error(e);
                        break 'versions;
                    }
                };
                // Verify every retrieved cell against the field function.
                let mut bad = 0u64;
                for p in piece.iter_points() {
                    let got = data[layout::linear_index(piece, &p[..piece.ndim()])];
                    if got != field_value(vid, version, &p[..piece.ndim()]) {
                        bad += 1;
                    }
                }
                if bad > 0 {
                    ctx.failures.fetch_add(bad, Ordering::Relaxed);
                }
                ctx.reports
                    .lock()
                    .unwrap()
                    .push((ctx.app, ctx.rank, report));
            }
        }
    }

    // Subscriber role: drain standing-query pushes. Every on-stride
    // version is first taken from the push sink, then re-read with an
    // ordinary get: on `Data` the get is the byte-identity check, on
    // `Lagged`/`TimedOut` it *is* the resync heal — either way exactly
    // one get per piece per on-stride version, matching the consumption
    // expectations declared at build time so producers can reclaim.
    for st in ctx.subs.get(&(ctx.app, ctx.rank)).into_iter().flatten() {
        let sub = &ctx.scenario.subscriptions[st.spec_idx];
        let vid = var_id(&sub.var);
        let concurrent = ctx
            .scenario
            .coupling_of_subscription(sub)
            .is_some_and(|c| c.concurrent);
        let pdec = ctx.scenario.decomposition(sub.producer_app);
        let producer_clients: Vec<ClientId> = (0..pdec.num_ranks())
            .map(|r| ctx.mapped.core_of_task(sub.producer_app, r))
            .collect();
        let piece = st.handle.spec.region;
        'sub_versions: for version in (0..ctx.scenario.iterations).filter(|v| v % sub.every_k == 0)
        {
            let taken = ctx.space.sub_take(&st.handle, version, ctx.get_timeout);
            let res = if concurrent {
                ctx.space.get_cont(
                    client,
                    ctx.app,
                    &sub.var,
                    version,
                    &piece,
                    pdec,
                    &producer_clients,
                )
            } else {
                ctx.space
                    .get_seq(client, ctx.app, &sub.var, version, &piece)
            };
            let (data, report) = match res {
                Ok(dr) => dr,
                Err(e) => {
                    ctx.note_error(e);
                    break 'sub_versions;
                }
            };
            if let TakeResult::Data(pushed) = taken {
                // The push plane must agree with the pull plane bit for
                // bit; any divergence is a verification failure.
                let mismatch = pushed.len() != data.len()
                    || pushed
                        .iter()
                        .zip(data.iter())
                        .any(|(a, b)| a.to_bits() != b.to_bits());
                if mismatch {
                    ctx.failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            let mut bad = 0u64;
            for p in piece.iter_points() {
                let got = data[layout::linear_index(&piece, &p[..piece.ndim()])];
                if got != field_value(vid, version, &p[..piece.ndim()]) {
                    bad += 1;
                }
            }
            if bad > 0 {
                ctx.failures.fetch_add(bad, Ordering::Relaxed);
            }
            ctx.reports
                .lock()
                .unwrap()
                .push((ctx.app, ctx.rank, report));
        }
    }

    // One intra-application near-neighbor exchange round per iteration.
    let exchanges = halo_exchanges(dec, ctx.scenario.halo);
    for _ in 0..ctx.scenario.iterations {
        let mut expected = 0u32;
        for ex in &exchanges {
            let peer_rank = if ex.rank_a == ctx.rank {
                ex.rank_b
            } else if ex.rank_b == ctx.rank {
                ex.rank_a
            } else {
                continue;
            };
            let peer_client = ctx.mapped.core_of_task(ctx.app, peer_rank);
            let bytes = ex.cells as usize * ctx.scenario.elem_bytes as usize;
            ctx.dart.send(
                ctx.app,
                TrafficClass::IntraApp,
                client,
                peer_client,
                TAG_HALO,
                Bytes::from(vec![0u8; bytes]),
            );
            expected += 1;
        }
        for _ in 0..expected {
            let msg = mailbox.recv();
            debug_assert_eq!(msg.tag, TAG_HALO);
        }
    }

    ctx.dart.return_mailbox(client, mailbox);
}
