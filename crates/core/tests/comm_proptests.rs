//! Property tests for the group collectives: correctness across arbitrary
//! group sizes, roots, payload sizes and operation sequences.

use insitu::comm::{GroupComm, ReduceOp};
use insitu_dart::DartRuntime;
use insitu_fabric::{MachineSpec, Placement, TransferLedger};
use insitu_util::check::forall;
use insitu_util::Bytes;
use insitu_workflow::AppGroup;
use std::sync::Arc;

/// Run `f` as every rank of an `n`-member group on real threads, collect
/// per-rank results.
fn with_group<T, F>(n: u32, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&GroupComm<'_>) -> T + Send + Sync + 'static,
{
    let placement = Arc::new(Placement::pack_sequential(
        MachineSpec::new(n.div_ceil(3).max(1), 3),
        n,
    ));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let group = Arc::new(AppGroup {
        app_id: 1,
        members: (0..n).collect(),
    });
    let f = Arc::new(f);
    let mut handles = Vec::new();
    for rank in 0..n {
        let dart = Arc::clone(&dart);
        let group = Arc::clone(&group);
        let f = Arc::clone(&f);
        handles.push(std::thread::spawn(move || {
            let mailbox = dart.take_mailbox(group.client_of(rank));
            let comm = GroupComm::new(&dart, &group, rank, &mailbox);
            f(&comm)
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn broadcast_any_root_any_payload() {
    forall(24, |rng| {
        let n = rng.range_u32(1, 10);
        let root = rng.next_u64() as u32 % n;
        let len = rng.range_usize(0, 300);
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let results = with_group(n, move |comm| {
            let data = if comm.rank() == root {
                Bytes::from(payload.clone())
            } else {
                Bytes::new()
            };
            comm.broadcast(root, data).to_vec()
        });
        for r in results {
            assert_eq!(&r[..], &expected[..]);
        }
    });
}

#[test]
fn allreduce_sum_matches_serial() {
    forall(24, |rng| {
        let n = rng.range_u32(1, 9);
        let seed = rng.next_u64();
        let values: Vec<f64> = (0..n)
            .map(|i| ((seed >> (i % 48)) & 0xff) as f64 / 7.0)
            .collect();
        let expect: f64 = values.iter().sum();
        let v2 = values.clone();
        let results = with_group(n, move |comm| {
            comm.allreduce_f64(v2[comm.rank() as usize], ReduceOp::Sum)
        });
        for r in results {
            assert!((r - expect).abs() < 1e-9, "{r} != {expect}");
        }
    });
}

#[test]
fn interleaved_collective_sequences() {
    forall(24, |rng| {
        // barrier / broadcast / gather interleaved `rounds` times; every
        // rank must observe consistent results at each step.
        let n = rng.range_u32(2, 7);
        let rounds = rng.range_u32(1, 5);
        let results = with_group(n, move |comm| {
            let mut log = Vec::new();
            for round in 0..rounds {
                comm.barrier();
                let root = round % comm.size();
                let b = comm.broadcast(
                    root,
                    if comm.rank() == root {
                        Bytes::from(vec![round as u8; 3])
                    } else {
                        Bytes::new()
                    },
                );
                log.push(b[0]);
                let gathered = comm.gather(0, Bytes::from(vec![comm.rank() as u8]));
                if comm.rank() == 0 {
                    log.push(gathered.len() as u8);
                }
                let m = comm.allreduce_f64(comm.rank() as f64, ReduceOp::Max);
                log.push(m as u8);
            }
            log
        });
        let n8 = (n - 1) as u8;
        for (rank, log) in results.into_iter().enumerate() {
            let mut i = 0;
            for round in 0..rounds as u8 {
                assert_eq!(log[i], round, "rank {rank} round {round} broadcast");
                i += 1;
                if rank == 0 {
                    assert_eq!(log[i] as u32, n, "gather size");
                    i += 1;
                }
                assert_eq!(log[i], n8, "allreduce max");
                i += 1;
            }
        }
    });
}
