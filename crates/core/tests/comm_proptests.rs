//! Property tests for the group collectives: correctness across arbitrary
//! group sizes, roots, payload sizes and operation sequences.

use bytes::Bytes;
use insitu::comm::{GroupComm, ReduceOp};
use insitu_dart::DartRuntime;
use insitu_fabric::{MachineSpec, Placement, TransferLedger};
use insitu_workflow::AppGroup;
use proptest::prelude::*;
use std::sync::Arc;

/// Run `f` as every rank of an `n`-member group on real threads, collect
/// per-rank results.
fn with_group<T, F>(n: u32, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&GroupComm<'_>) -> T + Send + Sync + 'static,
{
    let placement = Arc::new(Placement::pack_sequential(
        MachineSpec::new(n.div_ceil(3).max(1), 3),
        n,
    ));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let group = Arc::new(AppGroup { app_id: 1, members: (0..n).collect() });
    let f = Arc::new(f);
    let mut handles = Vec::new();
    for rank in 0..n {
        let dart = Arc::clone(&dart);
        let group = Arc::clone(&group);
        let f = Arc::clone(&f);
        handles.push(std::thread::spawn(move || {
            let mailbox = dart.take_mailbox(group.client_of(rank));
            let comm = GroupComm::new(&dart, &group, rank, &mailbox);
            f(&comm)
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_any_root_any_payload(n in 1u32..10, root_seed in any::<u32>(), len in 0usize..300) {
        let root = root_seed % n;
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let results = with_group(n, move |comm| {
            let data = if comm.rank() == root {
                Bytes::from(payload.clone())
            } else {
                Bytes::new()
            };
            comm.broadcast(root, data).to_vec()
        });
        for r in results {
            prop_assert_eq!(&r[..], &expected[..]);
        }
    }

    #[test]
    fn allreduce_sum_matches_serial(n in 1u32..9, seed in any::<u64>()) {
        let values: Vec<f64> =
            (0..n).map(|i| ((seed >> (i % 48)) & 0xff) as f64 / 7.0).collect();
        let expect: f64 = values.iter().sum();
        let v2 = values.clone();
        let results = with_group(n, move |comm| {
            comm.allreduce_f64(v2[comm.rank() as usize], ReduceOp::Sum)
        });
        for r in results {
            prop_assert!((r - expect).abs() < 1e-9, "{r} != {expect}");
        }
    }

    #[test]
    fn interleaved_collective_sequences(n in 2u32..7, rounds in 1u32..5) {
        // barrier / broadcast / gather interleaved `rounds` times; every
        // rank must observe consistent results at each step.
        let results = with_group(n, move |comm| {
            let mut log = Vec::new();
            for round in 0..rounds {
                comm.barrier();
                let root = round % comm.size();
                let b = comm.broadcast(
                    root,
                    if comm.rank() == root {
                        Bytes::from(vec![round as u8; 3])
                    } else {
                        Bytes::new()
                    },
                );
                log.push(b[0]);
                let gathered = comm.gather(0, Bytes::from(vec![comm.rank() as u8]));
                if comm.rank() == 0 {
                    log.push(gathered.len() as u8);
                }
                let m = comm.allreduce_f64(comm.rank() as f64, ReduceOp::Max);
                log.push(m as u8);
            }
            log
        });
        let n8 = (n - 1) as u8;
        for (rank, log) in results.into_iter().enumerate() {
            let mut i = 0;
            for round in 0..rounds as u8 {
                prop_assert_eq!(log[i], round, "rank {} round {} broadcast", rank, round);
                i += 1;
                if rank == 0 {
                    prop_assert_eq!(log[i] as u32, n, "gather size");
                    i += 1;
                }
                prop_assert_eq!(log[i], n8, "allreduce max");
                i += 1;
            }
        }
    }
}
