//! Property tests over the mapping pipeline and scenario builders.

use insitu::{
    aligned_grid, balanced_grid, concurrent_scenario, map_scenario, pattern_pairs,
    sequential_scenario, MappingStrategy,
};
use insitu_util::check::forall;
use insitu_util::SplitMix64;

fn arb_strategy(rng: &mut SplitMix64) -> MappingStrategy {
    *rng.choose(&[
        MappingStrategy::RoundRobin,
        MappingStrategy::DataCentric,
        MappingStrategy::NodeCyclic,
    ])
}

#[test]
fn balanced_grid_always_multiplies_out() {
    forall(48, |rng| {
        let n = rng.range_u64(1, 5000);
        let ndim = rng.range_usize(1, 4);
        let g = balanced_grid(n, ndim);
        assert_eq!(g.len(), ndim);
        assert_eq!(g.iter().product::<u64>(), n);
        assert!(g.iter().all(|&d| d >= 1));
    });
}

#[test]
fn aligned_grid_always_multiplies_out() {
    forall(48, |rng| {
        let n = rng.range_u64(1, 200);
        let p0 = rng.range_u64(1, 9);
        let p1 = rng.range_u64(1, 9);
        let p2 = rng.range_u64(1, 9);
        let g = aligned_grid(n, &[p0, p1, p2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.iter().product::<u64>(), n);
    });
}

#[test]
fn aligned_grid_perfect_when_divisible() {
    forall(8, |rng| {
        // Consumer count = producer count / 2^k along z: the aligned grid
        // must divide component-wise.
        let k = rng.range_u64(1, 5);
        let producer = [8u64, 8, 8];
        let n = 512 / (1 << k);
        let g = aligned_grid(n, &producer);
        for d in 0..3 {
            assert_eq!(producer[d] % g[d], 0, "grid {g:?}");
        }
    });
}

#[test]
fn concurrent_mapping_valid_for_arbitrary_sizes() {
    forall(48, |rng| {
        // Producer 2^pexp tasks, consumer 2^cexp (consumer <= producer).
        let pexp = rng.range_u32(1, 5);
        let cexp = rng.range_u32(0, 4);
        let strategy = arb_strategy(rng);
        let pattern_idx = rng.range_usize(0, 5);
        let prod = 1u64 << pexp;
        let cons = 1u64 << cexp.min(pexp);
        let mut s = concurrent_scenario(prod, cons, 4, pattern_pairs(&[2, 2, 2])[pattern_idx]);
        s.cores_per_node = 4;
        let m = map_scenario(&s, strategy);
        // Every task mapped, no core reused within the concurrent wave.
        let mut cores: Vec<u32> = m.app_cores.values().flatten().copied().collect();
        assert_eq!(cores.len() as u64, prod + cons);
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len() as u64, prod + cons, "core reused");
        for &c in &cores {
            assert!(c < m.machine.total_cores());
        }
    });
}

#[test]
fn sequential_mapping_valid() {
    forall(48, |rng| {
        let pexp = rng.range_u32(2, 5);
        let strategy = arb_strategy(rng);
        let prod = 1u64 << pexp;
        let c1 = prod / 2;
        let c2 = prod / 2;
        let mut s = sequential_scenario(prod, c1, c2, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let m = map_scenario(&s, strategy);
        // Wave 2 apps fit the machine together.
        let mut cores: Vec<u32> = m.app_cores[&2]
            .iter()
            .chain(m.app_cores[&3].iter())
            .copied()
            .collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len() as u64, c1 + c2);
    });
}

#[test]
fn data_centric_never_loses_to_baseline_on_matched_patterns() {
    forall(8, |rng| {
        use insitu::run_modeled;
        use insitu_fabric::TrafficClass;
        let pexp = rng.range_u32(2, 5);
        let prod = 1u64 << pexp;
        let cons = prod / 2;
        let mut s = concurrent_scenario(prod, cons, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let rr = run_modeled(&s, MappingStrategy::RoundRobin);
        let dc = run_modeled(&s, MappingStrategy::DataCentric);
        assert!(
            dc.ledger.network_bytes(TrafficClass::InterApp)
                <= rr.ledger.network_bytes(TrafficClass::InterApp)
        );
    });
}
