//! Property tests over the mapping pipeline and scenario builders.

use insitu::{
    aligned_grid, balanced_grid, concurrent_scenario, map_scenario, pattern_pairs,
    sequential_scenario, MappingStrategy,
};
use proptest::prelude::*;

fn arb_strategy() -> impl Strategy<Value = MappingStrategy> {
    prop_oneof![
        Just(MappingStrategy::RoundRobin),
        Just(MappingStrategy::DataCentric),
        Just(MappingStrategy::NodeCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn balanced_grid_always_multiplies_out(n in 1u64..5000, ndim in 1usize..4) {
        let g = balanced_grid(n, ndim);
        prop_assert_eq!(g.len(), ndim);
        prop_assert_eq!(g.iter().product::<u64>(), n);
        prop_assert!(g.iter().all(|&d| d >= 1));
    }

    #[test]
    fn aligned_grid_always_multiplies_out(
        n in 1u64..200,
        p0 in 1u64..9, p1 in 1u64..9, p2 in 1u64..9,
    ) {
        let g = aligned_grid(n, &[p0, p1, p2]);
        prop_assert_eq!(g.len(), 3);
        prop_assert_eq!(g.iter().product::<u64>(), n);
    }

    #[test]
    fn aligned_grid_perfect_when_divisible(k in 1u64..5) {
        // Consumer count = producer count / 2^k along z: the aligned grid
        // must divide component-wise.
        let producer = [8u64, 8, 8];
        let n = 512 / (1 << k);
        let g = aligned_grid(n, &producer);
        for d in 0..3 {
            prop_assert_eq!(producer[d] % g[d], 0, "grid {:?}", g);
        }
    }

    #[test]
    fn concurrent_mapping_valid_for_arbitrary_sizes(
        pexp in 1u32..5, cexp in 0u32..4, strategy in arb_strategy(), pattern_idx in 0usize..5,
    ) {
        // Producer 2^pexp tasks, consumer 2^cexp (consumer <= producer).
        let prod = 1u64 << pexp;
        let cons = 1u64 << cexp.min(pexp);
        let mut s = concurrent_scenario(prod, cons, 4, pattern_pairs(&[2, 2, 2])[pattern_idx]);
        s.cores_per_node = 4;
        let m = map_scenario(&s, strategy);
        // Every task mapped, no core reused within the concurrent wave.
        let mut cores: Vec<u32> = m.app_cores.values().flatten().copied().collect();
        prop_assert_eq!(cores.len() as u64, prod + cons);
        cores.sort_unstable();
        cores.dedup();
        prop_assert_eq!(cores.len() as u64, prod + cons, "core reused");
        for &c in &cores {
            prop_assert!(c < m.machine.total_cores());
        }
    }

    #[test]
    fn sequential_mapping_valid(
        pexp in 2u32..5, strategy in arb_strategy(),
    ) {
        let prod = 1u64 << pexp;
        let c1 = prod / 2;
        let c2 = prod / 2;
        let mut s = sequential_scenario(prod, c1, c2, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let m = map_scenario(&s, strategy);
        // Wave 2 apps fit the machine together.
        let mut cores: Vec<u32> = m.app_cores[&2]
            .iter()
            .chain(m.app_cores[&3].iter())
            .copied()
            .collect();
        cores.sort_unstable();
        cores.dedup();
        prop_assert_eq!(cores.len() as u64, c1 + c2);
    }

    #[test]
    fn data_centric_never_loses_to_baseline_on_matched_patterns(
        pexp in 2u32..5,
    ) {
        use insitu::run_modeled;
        use insitu_fabric::TrafficClass;
        let prod = 1u64 << pexp;
        let cons = prod / 2;
        let mut s = concurrent_scenario(prod, cons, 4, pattern_pairs(&[2, 2, 2])[0]);
        s.cores_per_node = 4;
        let rr = run_modeled(&s, MappingStrategy::RoundRobin);
        let dc = run_modeled(&s, MappingStrategy::DataCentric);
        prop_assert!(
            dc.ledger.network_bytes(TrafficClass::InterApp)
                <= rr.ledger.network_bytes(TrafficClass::InterApp)
        );
    }
}
