//! Property tests: the space returns exactly what was put, for any
//! distribution type, grid shape and query box — the M×N redistribution
//! correctness invariant.

use insitu_cods::{CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{ClientId, MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use insitu_util::check::forall;
use insitu_util::SplitMix64;
use std::sync::Arc;

fn arb_dist(rng: &mut SplitMix64) -> Distribution {
    match rng.range_u32(0, 3) {
        0 => Distribution::Blocked,
        1 => Distribution::Cyclic,
        _ => {
            let a = rng.range_u64(1, 4);
            let b = rng.range_u64(1, 4);
            Distribution::block_cyclic(&[a, b])
        }
    }
}

fn tag(p: &[u64]) -> f64 {
    (p[0] * 1000 + p[1]) as f64 + 0.5
}

fn make_space(clients: u32) -> Arc<CodsSpace> {
    let nodes = clients.div_ceil(2).max(1);
    let placement = Arc::new(Placement::pack_sequential(
        MachineSpec::new(nodes, 2),
        clients,
    ));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let dht_cores: Vec<ClientId> = (0..nodes.min(clients)).map(|n| n * 2).collect();
    let dht = Dht::new(Box::new(HilbertCurve::new(2, 4)), dht_cores);
    CodsSpace::new(dart, dht, CodsConfig::default())
}

#[test]
fn get_seq_returns_what_was_put() {
    forall(64, |rng| {
        let px = rng.range_u64(1, 3);
        let py = rng.range_u64(1, 3);
        let dist = arb_dist(rng);
        let qx = rng.range_u64(0, 12);
        let qy = rng.range_u64(0, 12);
        let qw = rng.range_u64(0, 12);
        let qh = rng.range_u64(0, 12);
        // Domain fixed at 16x16 (curve order 4).
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[16, 16]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        let nclients = dec.num_ranks() as u32;
        let space = make_space(nclients);
        for r in 0..dec.num_ranks() {
            for (pi, piece) in dec.rank_region(r).into_iter().enumerate() {
                let data = layout::fill_with(&piece, tag);
                space
                    .put_seq(r as ClientId, 1, "v", 3, pi as u64, &piece, &data)
                    .unwrap();
            }
        }
        let query = BoundingBox::new(&[qx, qy], &[(qx + qw).min(15), (qy + qh).min(15)]);
        let (data, _) = space.get_seq(0, 2, "v", 3, &query).unwrap();
        for p in query.iter_points() {
            assert_eq!(data[layout::linear_index(&query, &p[..2])], tag(&p[..2]));
        }
    });
}

#[test]
fn get_cont_agrees_with_get_seq() {
    forall(64, |rng| {
        let px = rng.range_u64(1, 3);
        let py = rng.range_u64(1, 3);
        let dist = arb_dist(rng);
        let qx = rng.range_u64(0, 10);
        let qy = rng.range_u64(0, 10);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[16, 16]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        let nclients = dec.num_ranks() as u32;
        let space_seq = make_space(nclients);
        let space_cont = make_space(nclients);
        let clients: Vec<ClientId> = (0..nclients).collect();
        for r in 0..dec.num_ranks() {
            for (pi, piece) in dec.rank_region(r).into_iter().enumerate() {
                let data = layout::fill_with(&piece, tag);
                space_seq
                    .put_seq(r as ClientId, 1, "v", 0, pi as u64, &piece, &data)
                    .unwrap();
                space_cont
                    .put_cont(r as ClientId, 1, "v", 0, pi as u64, &piece, &data)
                    .unwrap();
            }
        }
        let query = BoundingBox::new(&[qx, qy], &[qx + 5, qy + 5]);
        let (a, _) = space_seq.get_seq(0, 2, "v", 0, &query).unwrap();
        let (b, _) = space_cont
            .get_cont(0, 2, "v", 0, &query, &dec, &clients)
            .unwrap();
        assert_eq!(a, b);
    });
}

#[test]
fn ledger_total_equals_moved_bytes() {
    forall(64, |rng| {
        let px = rng.range_u64(1, 3);
        let py = rng.range_u64(1, 3);
        let dist = arb_dist(rng);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[16, 16]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        let nclients = dec.num_ranks() as u32;
        let space = make_space(nclients);
        for r in 0..dec.num_ranks() {
            for (pi, piece) in dec.rank_region(r).into_iter().enumerate() {
                let data = layout::fill_with(&piece, tag);
                space
                    .put_cont(r as ClientId, 1, "v", 0, pi as u64, &piece, &data)
                    .unwrap();
            }
        }
        let clients: Vec<ClientId> = (0..nclients).collect();
        let query = BoundingBox::from_sizes(&[16, 16]);
        let (_, report) = space
            .get_cont(0, 2, "v", 0, &query, &dec, &clients)
            .unwrap();
        // Conservation: shm + net = full query volume in bytes.
        assert_eq!(
            report.shm_bytes + report.net_bytes,
            query.num_cells() as u64 * 8
        );
        let snap = space.dart().ledger().snapshot();
        assert_eq!(
            snap.total_bytes(insitu_fabric::TrafficClass::InterApp),
            report.shm_bytes + report.net_bytes
        );
    });
}
