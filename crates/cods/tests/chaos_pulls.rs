//! Fault-site and overlap behavior of the receiver-driven pull path:
//! injected pull faults must keep firing (and leaving flight events) now
//! that `get` issues its whole schedule through `pull_many`, and a slow
//! producer must no longer delay copies of pieces that already arrived.

use insitu_cods::{CodsConfig, CodsError, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{
    ClientId, FaultAction, FaultHooks, FaultInjector, MachineSpec, Placement, TransferLedger,
};
use insitu_obs::{EventKind, FlightRecorder};
use insitu_sfc::HilbertCurve;
use insitu_telemetry::Recorder;
use std::sync::Arc;
use std::time::Duration;

/// A 4-client space (2 nodes x 2 cores) with the given fault hooks and an
/// enabled flight recorder.
fn space_with(
    hooks: Option<Arc<dyn FaultHooks>>,
    cfg: CodsConfig,
) -> (Arc<CodsSpace>, FlightRecorder) {
    let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
    let flight = FlightRecorder::enabled();
    let injector = match hooks {
        Some(h) => FaultInjector::new(h),
        None => FaultInjector::none(),
    };
    let dart = DartRuntime::with_flight(
        placement,
        Arc::new(TransferLedger::new()),
        Recorder::disabled(),
        injector,
        flight.clone(),
    );
    let dht = Dht::new(Box::new(HilbertCurve::new(2, 5)), vec![0, 2]);
    (CodsSpace::new(dart, dht, cfg), flight)
}

fn domain() -> BoundingBox {
    BoundingBox::from_sizes(&[8, 8])
}

/// Producer `rank`'s half of the 8x8 domain (rows split).
fn piece_box(rank: u64) -> BoundingBox {
    BoundingBox::new(&[rank * 4, 0], &[rank * 4 + 3, 7])
}

fn tag(p: &[u64]) -> f64 {
    (p[0] * 100 + p[1]) as f64
}

#[test]
fn dropped_pulls_fault_every_scheduled_op_and_surface_timeout() {
    struct DropAll;
    impl FaultHooks for DropAll {
        fn on_pull(&self, _: u64, _: u64, _: u64) -> FaultAction {
            FaultAction::Drop
        }
    }
    let (s, flight) = space_with(
        Some(Arc::new(DropAll)),
        CodsConfig {
            get_timeout: Duration::from_millis(200),
            ..Default::default()
        },
    );
    for rank in 0..2u64 {
        let b = piece_box(rank);
        let data = layout::fill_with(&b, tag);
        s.put_seq(rank as ClientId, 1, "v", 0, 0, &b, &data)
            .unwrap();
    }
    let err = s.get_seq(2, 2, "v", 0, &domain()).unwrap_err();
    assert!(
        matches!(err, CodsError::Timeout { .. }),
        "expected typed timeout, got {err:?}"
    );
    // `pull_many` consults the injector for every key up front, so both
    // scheduled ops leave a drop-pull fault event, not just the first.
    let faults: Vec<_> = flight
        .snapshot()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::Fault { kind: "drop-pull" }))
        .collect();
    assert_eq!(faults.len(), 2, "one fault event per scheduled op");
    let mut owners: Vec<ClientId> = faults.iter().map(|e| e.src.unwrap()).collect();
    owners.sort_unstable();
    assert_eq!(owners, vec![0, 1], "fault events name both owners");
}

#[test]
fn delayed_first_producer_assembles_out_of_order() {
    // Delay every pull from owner 0 (the buf-key's high word) by 60 ms:
    // owner 1's piece must be copied while owner 0's is still withheld,
    // the get must still verify, and the delay must leave fault events.
    struct DelayOwner0;
    impl FaultHooks for DelayOwner0 {
        fn on_pull(&self, _: u64, _: u64, piece: u64) -> FaultAction {
            if piece >> 32 == 0 {
                FaultAction::Delay(Duration::from_millis(60))
            } else {
                FaultAction::Proceed
            }
        }
    }
    let (s, flight) = space_with(
        Some(Arc::new(DelayOwner0)),
        CodsConfig {
            get_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    );
    for rank in 0..2u64 {
        let b = piece_box(rank);
        let data = layout::fill_with(&b, tag);
        s.put_seq(rank as ClientId, 1, "v", 0, 0, &b, &data)
            .unwrap();
    }
    let q = domain();
    let (data, _) = s.get_seq(2, 2, "v", 0, &q).unwrap();
    for p in q.iter_points() {
        assert_eq!(data[layout::linear_index(&q, &p[..2])], tag(&p[..2]));
    }
    let events = flight.snapshot();
    let delays: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fault { kind: "delay-pull" }))
        .collect();
    assert!(!delays.is_empty(), "delay-pull fault site did not fire");
    assert!(delays.iter().all(|e| e.src == Some(0)));
    // Owner 1's copy completed while owner 0's piece was still withheld.
    let pull_end = |owner: ClientId| {
        events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Pull { .. }) && e.src == Some(owner))
            .map(|e| e.start_us + e.duration_us)
            .max()
            .expect("pull event missing")
    };
    let fast = pull_end(1);
    let slow = pull_end(0);
    assert!(
        fast + 30_000 < slow,
        "fast piece ({fast} us) should complete well before the delayed one ({slow} us)"
    );
}

/// The threaded overlapped-wait property: with one producer deliberately
/// slow, pieces from the fast producer are copied as they arrive, so the
/// slow producer stretches only its own pull — under the sequential A/B
/// knob the same scenario serializes behind the slow first op.
#[test]
fn slow_producer_no_longer_delays_arrived_pieces() {
    let run = |sequential: bool| {
        let (s, flight) = space_with(
            None,
            CodsConfig {
                get_timeout: Duration::from_secs(10),
                sequential_pulls: sequential,
                ..Default::default()
            },
        );
        let dec = Decomposition::new(domain(), ProcessGrid::new(&[2, 1]), Distribution::Blocked);
        let mut handles = Vec::new();
        for rank in 0..2u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                if rank == 0 {
                    // The slow producer: its piece lands 90 ms late.
                    std::thread::sleep(Duration::from_millis(90));
                }
                let b = piece_box(rank);
                let data = layout::fill_with(&b, tag);
                s.put_cont(rank as ClientId, 1, "v", 0, 0, &b, &data)
                    .unwrap();
            }));
        }
        let q = domain();
        let (data, _) = s.get_cont(2, 2, "v", 0, &q, &dec, &[0, 1]).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tag(&p[..2]));
        }
        let events = flight.snapshot();
        let pull_end = |owner: ClientId| {
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Pull { .. }) && e.src == Some(owner))
                .map(|e| e.start_us + e.duration_us)
                .max()
                .expect("pull event missing")
        };
        (pull_end(1), pull_end(0))
    };

    let (fast, slow) = run(false);
    assert!(
        slow >= 75_000,
        "slow pull ({slow} us) must span the producer delay"
    );
    assert!(
        fast + 40_000 < slow,
        "overlapped: arrived piece ({fast} us) must not wait for the slow one ({slow} us)"
    );

    let (fast_seq, slow_seq) = run(true);
    assert!(
        fast_seq >= slow_seq,
        "sequential A/B: the fast piece ({fast_seq} us) copies only after the slow op ({slow_seq} us)"
    );
}
