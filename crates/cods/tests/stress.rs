//! Concurrency stress: many client threads hammering one space with
//! overlapping variables, versions and gets — no locks ordering between
//! producers and consumers beyond the space's own rendezvous.

use insitu_cods::{CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{ClientId, MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use std::sync::Arc;
use std::time::Duration;

fn space(clients: u32) -> Arc<CodsSpace> {
    let nodes = clients.div_ceil(4);
    let placement = Arc::new(Placement::pack_sequential(
        MachineSpec::new(nodes, 4),
        clients,
    ));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let dht = Dht::new(
        Box::new(HilbertCurve::new(2, 5)),
        (0..nodes).map(|n| n * 4).collect(),
    );
    CodsSpace::new(
        dart,
        dht,
        CodsConfig {
            get_timeout: Duration::from_secs(20),
            ..Default::default()
        },
    )
}

fn value(var: u64, version: u64, p: &[u64]) -> f64 {
    (var * 1_000_000 + version * 10_000 + p[0] * 100 + p[1]) as f64
}

#[test]
fn many_producers_consumers_many_versions() {
    // 16 producers over a 32x32 domain, 8 consumers, 4 variables x 3
    // versions, all threads racing.
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[32, 32]),
        ProcessGrid::new(&[4, 4]),
        Distribution::Blocked,
    );
    let s = space(24);
    let vars = ["a", "b", "c", "d"];
    let mut handles = Vec::new();
    // Producers.
    for rank in 0..16u64 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let piece = dec.blocked_box(rank).unwrap();
            for version in 0..3u64 {
                for (vi, var) in ["a", "b", "c", "d"].iter().enumerate() {
                    let data = layout::fill_with(&piece, |p| value(vi as u64, version, p));
                    s.put_seq(rank as ClientId, 1, var, version, 0, &piece, &data)
                        .unwrap();
                }
            }
        }));
    }
    // Consumers: each reads random-ish sections of every var/version.
    for c in 0..8u32 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let client = 16 + c;
            for version in 0..3u64 {
                for (vi, var) in vars.iter().enumerate() {
                    let lo = [(c as u64 * 3) % 16, (c as u64 * 5) % 16];
                    let q = BoundingBox::new(&lo, &[lo[0] + 13, lo[1] + 13]);
                    // A consumer may query the DHT before every producer
                    // has indexed its piece; retry until the cover is
                    // complete (puts and gets are deliberately unordered).
                    let data = loop {
                        match s.get_seq(client, 2, var, version, &q) {
                            Ok((data, _)) => break data,
                            Err(insitu_cods::CodsError::IncompleteCover { .. }) => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(e) => panic!("get_seq failed: {e}"),
                        }
                    };
                    for p in q.iter_points() {
                        assert_eq!(
                            data[layout::linear_index(&q, &p[..2])],
                            value(vi as u64, version, &p[..2]),
                            "var {var} v{version} at {p:?}"
                        );
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Schedule cache was shared across consumers: later gets hit it.
    let (hits, misses) = s.cache().stats();
    assert!(hits > 0, "expected cache hits, got {hits}/{misses}");
}

#[test]
fn interleaved_put_get_rendezvous_storm() {
    // Consumers issue gets *before* producers put, across 50 variables.
    let s = space(8);
    let b = BoundingBox::from_sizes(&[8, 8]);
    let mut handles = Vec::new();
    for k in 0..50u64 {
        let s1 = Arc::clone(&s);
        let s2 = Arc::clone(&s);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[1, 1]),
            Distribution::Blocked,
        );
        handles.push(std::thread::spawn(move || {
            let var = format!("v{k}");
            let (data, _) = s1
                .get_cont(
                    (k % 8) as ClientId,
                    2,
                    &var,
                    0,
                    &b,
                    &dec,
                    &[((k + 1) % 8) as u32],
                )
                .unwrap();
            assert_eq!(data[0], k as f64);
        }));
        handles.push(std::thread::spawn(move || {
            // Stagger the puts behind the gets.
            std::thread::sleep(Duration::from_millis(k % 7));
            let var = format!("v{k}");
            let data = layout::fill_with(&b, |_| k as f64);
            s2.put_cont(((k + 1) % 8) as u32, 1, &var, 0, 0, &b, &data)
                .unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_staging_accounting_is_consistent() {
    let s = space(16);
    let b = BoundingBox::from_sizes(&[4, 4]); // 128 B per piece
    let mut handles = Vec::new();
    for c in 0..16u32 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            for v in 0..10u64 {
                let data = layout::fill_with(&b, |_| v as f64);
                s.put_seq(c, 1, &format!("s{c}"), v, 0, &b, &data).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // 4 clients per node x 10 versions x 128 B.
    let total: u64 = (0..4).map(|n| s.staging_bytes(n)).sum();
    assert_eq!(total, 16 * 10 * 128);
    assert_eq!(s.staging_peak(), 4 * 10 * 128);
}
