//! The SFC-indexed distributed hash table of CoDS.
//!
//! The linearized index space is divided into equal intervals, one per DHT
//! core (the paper places one DHT core per compute node). Each DHT core
//! keeps a location table recording, per shared variable and version,
//! which execution client stores which data region (paper §IV.A, Fig. 6).
//! Geometric queries are translated into index spans and routed to the
//! cores owning the covering intervals.

use insitu_domain::BoundingBox;
use insitu_fabric::ClientId;
use insitu_sfc::{spans_of_box, SpaceFillingCurve};
use std::collections::HashMap;
use std::sync::Mutex;

/// Stable hash of a variable name (FNV-1a).
pub fn var_id(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One record in a DHT core's location table: a stored piece of a shared
/// variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LocationEntry {
    /// The stored piece's region.
    pub bbox: BoundingBox,
    /// Execution client holding the data.
    pub owner: ClientId,
    /// Piece index within the owner's put sequence (disambiguates the
    /// registered buffer key).
    pub piece: u64,
}

/// Approximate wire size of one location record or span query, used for
/// DHT traffic accounting.
pub const DHT_RECORD_BYTES: u64 = 64;

type Table = HashMap<(u64, u64), Vec<LocationEntry>>;

/// The distributed location service.
pub struct Dht {
    curve: Box<dyn SpaceFillingCurve>,
    core_clients: Vec<ClientId>,
    interval: u128,
    tables: Vec<Mutex<Table>>,
}

impl Dht {
    /// Build a DHT over `curve`'s index space, divided across one core per
    /// entry of `core_clients` (the hosting execution clients).
    ///
    /// # Panics
    /// Panics if `core_clients` is empty.
    pub fn new(curve: Box<dyn SpaceFillingCurve>, core_clients: Vec<ClientId>) -> Self {
        assert!(!core_clients.is_empty(), "DHT needs at least one core");
        let n = core_clients.len() as u128;
        let interval = curve.index_count().div_ceil(n);
        let tables = (0..core_clients.len())
            .map(|_| Mutex::new(Table::new()))
            .collect();
        Dht {
            curve,
            core_clients,
            interval,
            tables,
        }
    }

    /// Number of DHT cores.
    pub fn num_cores(&self) -> usize {
        self.core_clients.len()
    }

    /// Hosting client of DHT core `idx`.
    pub fn core_client(&self, idx: usize) -> ClientId {
        self.core_clients[idx]
    }

    /// The linearization curve.
    pub fn curve(&self) -> &dyn SpaceFillingCurve {
        self.curve.as_ref()
    }

    /// DHT core owning a curve index.
    #[inline]
    pub fn core_of_index(&self, idx: u128) -> usize {
        ((idx / self.interval) as usize).min(self.core_clients.len() - 1)
    }

    /// The distinct data region DHT core `idx` is responsible for,
    /// materialized as boxes (paper §IV.A: "each DHT core is assigned a
    /// distinct data region of the application data domain").
    pub fn region_of_core(&self, idx: usize) -> Vec<BoundingBox> {
        assert!(idx < self.core_clients.len(), "core out of range");
        let first = self.interval * idx as u128;
        let last = (self.interval * (idx as u128 + 1) - 1).min(self.curve.index_count() - 1);
        insitu_sfc::boxes_of_span(self.curve.as_ref(), &insitu_sfc::Span { first, last })
    }

    /// Index spans covering a box (the query key of the paper's get path).
    pub fn spans_for(&self, bbox: &BoundingBox) -> Vec<insitu_sfc::Span> {
        spans_of_box(self.curve.as_ref(), bbox)
    }

    /// Distinct DHT cores responsible for any part of `bbox`, ascending.
    pub fn cores_for(&self, bbox: &BoundingBox) -> Vec<usize> {
        let mut cores = Vec::new();
        for s in self.spans_for(bbox) {
            let first = self.core_of_index(s.first);
            let last = self.core_of_index(s.last);
            for c in first..=last {
                if cores.last() != Some(&c) && !cores.contains(&c) {
                    cores.push(c);
                }
            }
        }
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Record a stored piece. The record lands on every core whose
    /// interval overlaps the piece's region. Returns the cores updated.
    pub fn insert(&self, var: u64, version: u64, entry: LocationEntry) -> Vec<usize> {
        let cores = self.cores_for(&entry.bbox);
        for &c in &cores {
            let mut t = self.tables[c].lock().unwrap();
            let list = t.entry((var, version)).or_default();
            // Replace a re-put of the same piece.
            if let Some(e) = list
                .iter_mut()
                .find(|e| e.owner == entry.owner && e.piece == entry.piece)
            {
                *e = entry;
            } else {
                list.push(entry);
            }
        }
        cores
    }

    /// Look up every stored piece of `(var, version)` intersecting
    /// `query`. Returns the (deduplicated) entries and the cores consulted.
    pub fn query(
        &self,
        var: u64,
        version: u64,
        query: &BoundingBox,
    ) -> (Vec<LocationEntry>, Vec<usize>) {
        self.query_filtered(var, version, query, &|_| true)
    }

    /// [`Dht::query`] restricted to the cores `core_up` reports reachable.
    /// Records held only by skipped (blacked-out) cores are simply absent
    /// from the result, surfacing downstream as an incomplete cover —
    /// exactly how an unreachable DHT server degrades.
    pub fn query_filtered(
        &self,
        var: u64,
        version: u64,
        query: &BoundingBox,
        core_up: &dyn Fn(usize) -> bool,
    ) -> (Vec<LocationEntry>, Vec<usize>) {
        let cores: Vec<usize> = self
            .cores_for(query)
            .into_iter()
            .filter(|&c| core_up(c))
            .collect();
        let mut out: Vec<LocationEntry> = Vec::new();
        for &c in &cores {
            let t = self.tables[c].lock().unwrap();
            if let Some(list) = t.get(&(var, version)) {
                for e in list {
                    if e.bbox.intersect(query).is_some()
                        && !out.iter().any(|o| o.owner == e.owner && o.piece == e.piece)
                    {
                        out.push(*e);
                    }
                }
            }
        }
        (out, cores)
    }

    /// Highest version of `var` with at least one record — DataSpaces-style
    /// version discovery for consumers that attach to a running producer.
    pub fn latest_version(&self, var: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for t in &self.tables {
            for (&(v, version), list) in t.lock().unwrap().iter() {
                if v == var && !list.is_empty() {
                    best = Some(best.map_or(version, |b| b.max(version)));
                }
            }
        }
        best
    }

    /// Drop all records of `(var, version)`; returns records removed.
    pub fn remove_version(&self, var: u64, version: u64) -> usize {
        let mut removed = 0;
        for t in &self.tables {
            if let Some(v) = t.lock().unwrap().remove(&(var, version)) {
                removed += v.len();
            }
        }
        removed
    }

    /// Drop all records of `var` with version `<= max_version` (in-order
    /// eviction of an iterative variable); returns records removed.
    pub fn remove_versions_up_to(&self, var: u64, max_version: u64) -> usize {
        let mut removed = 0;
        for t in &self.tables {
            let mut t = t.lock().unwrap();
            t.retain(|&(v, version), list| {
                let drop = v == var && version <= max_version;
                if drop {
                    removed += list.len();
                }
                !drop
            });
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_sfc::HilbertCurve;

    fn dht(cores: u32) -> Dht {
        Dht::new(Box::new(HilbertCurve::new(2, 3)), (0..cores).collect())
    }

    #[test]
    fn var_id_stable_and_distinct() {
        assert_eq!(var_id("temperature"), var_id("temperature"));
        assert_ne!(var_id("temperature"), var_id("velocity"));
    }

    #[test]
    fn interval_division_figure6() {
        // 8x8 domain, 4 DHT cores: 16 indices each, like Fig. 6.
        let d = dht(4);
        assert_eq!(d.core_of_index(0), 0);
        assert_eq!(d.core_of_index(15), 0);
        assert_eq!(d.core_of_index(16), 1);
        assert_eq!(d.core_of_index(63), 3);
    }

    #[test]
    fn quadrant_box_hits_single_core() {
        let d = dht(4);
        // The first Hilbert quadrant is one core's interval exactly.
        let q = BoundingBox::new(&[0, 0], &[3, 3]);
        assert_eq!(d.cores_for(&q).len(), 1);
    }

    #[test]
    fn full_domain_hits_all_cores() {
        let d = dht(4);
        let q = BoundingBox::from_sizes(&[8, 8]);
        assert_eq!(d.cores_for(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn insert_then_query_roundtrip() {
        let d = dht(4);
        let piece = BoundingBox::new(&[0, 0], &[3, 7]);
        d.insert(
            var_id("t"),
            1,
            LocationEntry {
                bbox: piece,
                owner: 9,
                piece: 0,
            },
        );
        let (entries, cores) = d.query(var_id("t"), 1, &BoundingBox::new(&[2, 2], &[5, 5]));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].owner, 9);
        assert!(!cores.is_empty());
    }

    #[test]
    fn query_wrong_version_empty() {
        let d = dht(2);
        let piece = BoundingBox::new(&[0, 0], &[3, 3]);
        d.insert(
            var_id("t"),
            1,
            LocationEntry {
                bbox: piece,
                owner: 0,
                piece: 0,
            },
        );
        let (entries, _) = d.query(var_id("t"), 2, &piece);
        assert!(entries.is_empty());
    }

    #[test]
    fn query_disjoint_region_empty() {
        let d = dht(2);
        d.insert(
            var_id("t"),
            0,
            LocationEntry {
                bbox: BoundingBox::new(&[0, 0], &[1, 1]),
                owner: 0,
                piece: 0,
            },
        );
        let (entries, _) = d.query(var_id("t"), 0, &BoundingBox::new(&[6, 6], &[7, 7]));
        assert!(entries.is_empty());
    }

    #[test]
    fn entries_deduplicated_across_cores() {
        // A piece spanning all intervals is recorded on all cores but
        // returned once.
        let d = dht(4);
        let whole = BoundingBox::from_sizes(&[8, 8]);
        let cores = d.insert(
            var_id("v"),
            0,
            LocationEntry {
                bbox: whole,
                owner: 1,
                piece: 0,
            },
        );
        assert_eq!(cores.len(), 4);
        let (entries, consulted) = d.query(var_id("v"), 0, &whole);
        assert_eq!(entries.len(), 1);
        assert_eq!(consulted.len(), 4);
    }

    #[test]
    fn reinsert_same_piece_replaces() {
        let d = dht(2);
        let b1 = BoundingBox::new(&[0, 0], &[1, 1]);
        d.insert(
            var_id("x"),
            0,
            LocationEntry {
                bbox: b1,
                owner: 5,
                piece: 3,
            },
        );
        d.insert(
            var_id("x"),
            0,
            LocationEntry {
                bbox: b1,
                owner: 5,
                piece: 3,
            },
        );
        let (entries, _) = d.query(var_id("x"), 0, &b1);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn multiple_owners_returned() {
        let d = dht(4);
        for (i, lb) in [[0u64, 0], [0, 4], [4, 0], [4, 4]].iter().enumerate() {
            let b = BoundingBox::new(lb, &[lb[0] + 3, lb[1] + 3]);
            d.insert(
                var_id("f"),
                0,
                LocationEntry {
                    bbox: b,
                    owner: i as u32,
                    piece: 0,
                },
            );
        }
        let (entries, _) = d.query(var_id("f"), 0, &BoundingBox::new(&[2, 2], &[5, 5]));
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn region_of_core_partitions_domain() {
        let d = dht(4);
        let mut cells = std::collections::HashSet::new();
        for c in 0..4 {
            for b in d.region_of_core(c) {
                for p in b.iter_points() {
                    assert!(cells.insert((p[0], p[1])), "cell owned twice");
                }
            }
        }
        assert_eq!(cells.len(), 64);
        // Fig. 6: core 0's region is the first quadrant.
        assert_eq!(
            d.region_of_core(0),
            vec![BoundingBox::new(&[0, 0], &[3, 3])]
        );
    }

    #[test]
    fn remove_version_clears() {
        let d = dht(2);
        let b = BoundingBox::new(&[0, 0], &[7, 7]);
        d.insert(
            var_id("g"),
            0,
            LocationEntry {
                bbox: b,
                owner: 0,
                piece: 0,
            },
        );
        assert!(d.remove_version(var_id("g"), 0) > 0);
        let (entries, _) = d.query(var_id("g"), 0, &b);
        assert!(entries.is_empty());
    }

    #[test]
    fn single_core_dht() {
        let d = dht(1);
        let b = BoundingBox::new(&[1, 1], &[2, 2]);
        assert_eq!(d.cores_for(&b), vec![0]);
    }
}
