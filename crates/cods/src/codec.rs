//! Conversion between `f64` field data and raw byte buffers.
//!
//! CoDS stores registered buffers as raw bytes ([`bytes::Bytes`]); the
//! applications' field data is `f64`. Encoding is a single memcpy through
//! a byte view of the slice (always sound: any `f64` bit pattern is valid
//! as bytes); decoding rebuilds `f64`s from native-endian chunks. The
//! assembly path avoids decoding entirely: [`f64s_of_bytes`] reinterprets
//! an aligned staged buffer in place, and [`FieldData`] lets a `get`
//! return either an owned assembly buffer or a zero-copy view of a single
//! staged piece.

use insitu_util::Bytes;

/// Size of one field element.
pub const ELEM_BYTES: usize = std::mem::size_of::<f64>();

/// Encode a field slice into an owned byte buffer.
pub fn encode_f64s(v: &[f64]) -> Bytes {
    // SAFETY: reinterpreting `f64`s as bytes is always valid; the view
    // lives only for the duration of the copy.
    let view = unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * ELEM_BYTES) };
    Bytes::copy_from_slice(view)
}

/// Decode a byte buffer produced by [`encode_f64s`].
///
/// # Panics
/// Panics if the length is not a multiple of [`ELEM_BYTES`].
pub fn decode_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % ELEM_BYTES, 0, "byte length not a multiple of 8");
    b.chunks_exact(ELEM_BYTES)
        .map(|c| f64::from_ne_bytes(c.try_into().unwrap()))
        .collect()
}

/// Reinterpret a byte buffer as `f64` cells without copying. `None` when
/// the buffer is misaligned for `f64` access or has a ragged length —
/// callers fall back to a decoding copy.
pub fn f64s_of_bytes(b: &[u8]) -> Option<&[f64]> {
    if b.len() % ELEM_BYTES != 0 || b.as_ptr() as usize % std::mem::align_of::<f64>() != 0 {
        return None;
    }
    // SAFETY: length and alignment were just checked, and every bit
    // pattern is a valid f64.
    Some(unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<f64>(), b.len() / ELEM_BYTES) })
}

/// View a mutable `f64` slice as raw bytes (for byte-level region copies
/// directly into a typed assembly buffer).
pub fn bytes_of_f64s_mut(v: &mut [f64]) -> &mut [u8] {
    // SAFETY: any f64 is valid as bytes and any bytes are valid as f64;
    // the view covers exactly the slice's storage.
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<u8>(), v.len() * ELEM_BYTES) }
}

/// Field data returned by a `get`: either an owned assembly of several
/// pieces, or a zero-copy view of a single staged piece that exactly
/// covered the query. Derefs to `[f64]` either way.
#[derive(Clone)]
pub enum FieldData {
    /// Assembled into a dedicated buffer.
    Owned(Vec<f64>),
    /// Zero-copy view of one staged piece (kept alive by the refcount;
    /// invariant: aligned and sized for `f64` reinterpretation).
    View(Bytes),
}

impl FieldData {
    /// Wrap staged bytes without copying when alignment permits; falls
    /// back to a decoding copy otherwise.
    pub fn from_bytes(b: Bytes) -> FieldData {
        if f64s_of_bytes(&b).is_some() {
            FieldData::View(b)
        } else {
            FieldData::Owned(decode_f64s(&b))
        }
    }

    /// Whether this is a zero-copy view.
    pub fn is_view(&self) -> bool {
        matches!(self, FieldData::View(_))
    }

    /// The cells as an owned vector (free for `Owned`, one copy for a
    /// view).
    pub fn into_vec(self) -> Vec<f64> {
        match self {
            FieldData::Owned(v) => v,
            FieldData::View(b) => f64s_of_bytes(&b).expect("view invariant").to_vec(),
        }
    }
}

impl std::ops::Deref for FieldData {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        match self {
            FieldData::Owned(v) => v,
            FieldData::View(b) => f64s_of_bytes(b).expect("view invariant"),
        }
    }
}

impl std::fmt::Debug for FieldData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FieldData::{}({} cells)",
            if self.is_view() { "View" } else { "Owned" },
            self.len()
        )
    }
}

impl PartialEq for FieldData {
    fn eq(&self, other: &FieldData) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Vec<f64>> for FieldData {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<FieldData> for Vec<f64> {
    fn eq(&self, other: &FieldData) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<[f64]> for FieldData {
    fn eq(&self, other: &[f64]) -> bool {
        self[..] == *other
    }
}

impl From<FieldData> for Vec<f64> {
    fn from(d: FieldData) -> Vec<f64> {
        d.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 42.42];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    fn empty() {
        assert!(decode_f64s(&encode_f64s(&[])).is_empty());
    }

    #[test]
    fn nan_bits_preserved() {
        let v = vec![f64::NAN];
        let out = decode_f64s(&encode_f64s(&v));
        assert_eq!(out[0].to_bits(), v[0].to_bits());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_ragged_length() {
        decode_f64s(&[1, 2, 3]);
    }

    #[test]
    fn large_buffer_roundtrip() {
        let v: Vec<f64> = (0..100_000).map(|i| i as f64 * 0.5).collect();
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    fn typed_view_agrees_with_decode() {
        let v = vec![1.0, 2.5, -0.0, f64::INFINITY];
        let b = encode_f64s(&v);
        match f64s_of_bytes(&b) {
            Some(view) => assert_eq!(view, &v[..]),
            // Arc allocations are not guaranteed 8-aligned; the decode
            // fallback must still hold.
            None => assert_eq!(decode_f64s(&b), v),
        }
    }

    #[test]
    fn typed_view_rejects_ragged_length() {
        assert!(f64s_of_bytes(&[0u8; 12]).is_none());
    }

    #[test]
    fn mut_byte_view_writes_through() {
        let mut v = vec![0.0f64; 2];
        let src = encode_f64s(&[3.5, -7.25]);
        bytes_of_f64s_mut(&mut v).copy_from_slice(&src);
        assert_eq!(v, vec![3.5, -7.25]);
    }

    #[test]
    fn field_data_view_and_owned_agree() {
        let v = vec![9.0, 8.0, 7.0];
        let d = FieldData::from_bytes(encode_f64s(&v));
        assert_eq!(d, v);
        assert_eq!(d.len(), 3);
        assert_eq!(FieldData::Owned(v.clone()), d);
        assert_eq!(d.clone().into_vec(), v);
        assert_eq!(Vec::from(d), v);
    }
}
