//! Conversion between `f64` field data and raw byte buffers.
//!
//! CoDS stores registered buffers as raw bytes ([`bytes::Bytes`]); the
//! applications' field data is `f64`. Encoding is a single memcpy through
//! a byte view of the slice (always sound: any `f64` bit pattern is valid
//! as bytes); decoding rebuilds `f64`s from native-endian chunks.

use insitu_util::Bytes;

/// Size of one field element.
pub const ELEM_BYTES: usize = std::mem::size_of::<f64>();

/// Encode a field slice into an owned byte buffer.
pub fn encode_f64s(v: &[f64]) -> Bytes {
    // SAFETY: reinterpreting `f64`s as bytes is always valid; the view
    // lives only for the duration of the copy.
    let view = unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), v.len() * ELEM_BYTES) };
    Bytes::copy_from_slice(view)
}

/// Decode a byte buffer produced by [`encode_f64s`].
///
/// # Panics
/// Panics if the length is not a multiple of [`ELEM_BYTES`].
pub fn decode_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % ELEM_BYTES, 0, "byte length not a multiple of 8");
    b.chunks_exact(ELEM_BYTES)
        .map(|c| f64::from_ne_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 42.42];
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }

    #[test]
    fn empty() {
        assert!(decode_f64s(&encode_f64s(&[])).is_empty());
    }

    #[test]
    fn nan_bits_preserved() {
        let v = vec![f64::NAN];
        let out = decode_f64s(&encode_f64s(&v));
        assert_eq!(out[0].to_bits(), v[0].to_bits());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_ragged_length() {
        decode_f64s(&[1, 2, 3]);
    }

    #[test]
    fn large_buffer_roundtrip() {
        let v: Vec<f64> = (0..100_000).map(|i| i as f64 * 0.5).collect();
        assert_eq!(decode_f64s(&encode_f64s(&v)), v);
    }
}
