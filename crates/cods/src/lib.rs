//! Co-located DataSpaces (CoDS): the virtual shared-space abstraction.
//!
//! CoDS "constructs a distributed hash table (DHT) that spans cores across
//! all the compute nodes, which keeps track of locations of the coupled
//! data and uses a semantically specialized indexing that is based on the
//! scientific applications' representation of the data domain" (§IV.A).
//!
//! * [`Dht`] — Hilbert-SFC interval DHT with per-core location tables;
//! * [`schedule`] — communication-schedule computation (from DHT entries
//!   or directly from a producer's decomposition) and the schedule cache;
//! * [`CodsSpace`] — the `put`/`get` operator API of Table I, one-sided,
//!   asynchronous, geometric-descriptor addressed;
//! * [`codec`] — field data ↔ byte buffer conversion.

#![warn(missing_docs)]

pub mod codec;
pub mod dht;
pub mod schedule;
pub mod space;

pub use codec::FieldData;
pub use dht::{var_id, Dht, LocationEntry, DHT_RECORD_BYTES};
pub use schedule::{
    merge_schedule_ops, schedule_from_decomposition, schedule_from_entries, CommSchedule,
    ScheduleCache, TransferOp,
};
pub use space::{epoch_salt, CodsConfig, CodsError, CodsSpace, GetReport, SpaceMirror, SubHandle};
