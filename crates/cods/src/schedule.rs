//! Communication schedules for M×N redistribution.
//!
//! A communication schedule "represents the sequence of data transfers
//! required to correctly move data between coupled applications"
//! (§IV.A). Consumers compute one per `get()` — from the DHT's location
//! entries (sequential coupling) or directly from the producer's declared
//! decomposition (concurrent coupling) — cache it, and replay it on later
//! iterations.

use crate::dht::LocationEntry;
use insitu_domain::{BoundingBox, Decomposition};
use insitu_fabric::ClientId;
use insitu_telemetry::{Counter, Recorder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One transfer of a schedule: pull `region` out of the piece stored by
/// `src_client`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransferOp {
    /// Client holding the source piece.
    pub src_client: ClientId,
    /// Piece index within the source's put sequence.
    pub piece: u64,
    /// Full box of the stored piece (the registered buffer's layout).
    pub piece_box: BoundingBox,
    /// Sub-box to move.
    pub region: BoundingBox,
}

/// The transfers fulfilling one consumer `get`.
#[derive(Clone, Debug, Default)]
pub struct CommSchedule {
    /// Transfers, ordered by source client.
    pub ops: Vec<TransferOp>,
}

impl CommSchedule {
    /// Total cells moved by the schedule.
    pub fn total_cells(&self) -> u128 {
        self.ops.iter().map(|o| o.region.num_cells()).sum()
    }
}

/// Build a schedule from DHT location entries, clipping each stored piece
/// to the query box.
pub fn schedule_from_entries(entries: &[LocationEntry], query: &BoundingBox) -> CommSchedule {
    let mut ops: Vec<TransferOp> = entries
        .iter()
        .filter_map(|e| {
            e.bbox.intersect(query).map(|region| TransferOp {
                src_client: e.owner,
                piece: e.piece,
                piece_box: e.bbox,
                region,
            })
        })
        .collect();
    ops.sort_by_key(|o| (o.src_client, o.piece));
    CommSchedule { ops }
}

/// Build a schedule directly from a producer's decomposition — the
/// concurrent-coupling path, where the consumer knows the producer's
/// declared data decomposition instead of asking the DHT.
///
/// `producer_clients[rank]` maps producer ranks to execution clients.
/// Piece indices follow the producer's `rank_region` enumeration order,
/// matching what the producer's `put` sequence registers.
pub fn schedule_from_decomposition(
    producer: &Decomposition,
    producer_clients: &[ClientId],
    query: &BoundingBox,
) -> CommSchedule {
    assert_eq!(
        producer_clients.len() as u64,
        producer.num_ranks(),
        "client map size mismatch"
    );
    let mut ops = Vec::new();
    for overlap in producer.overlaps(query) {
        let src_client = producer_clients[overlap.rank as usize];
        for (piece, piece_box) in producer.rank_region(overlap.rank).into_iter().enumerate() {
            if let Some(region) = piece_box.intersect(query) {
                ops.push(TransferOp {
                    src_client,
                    piece: piece as u64,
                    piece_box,
                    region,
                });
            }
        }
    }
    ops.sort_by_key(|o| (o.src_client, o.piece));
    CommSchedule { ops }
}

/// Cache of computed schedules keyed by `(var, query box)` — coupling
/// patterns repeat every iteration, so replays skip the DHT entirely.
///
/// Hit/miss accounting lives in telemetry [`Counter`]s
/// (`cods.schedule_cache.hits` / `.misses` when built over a live
/// recorder); a cache built with [`ScheduleCache::new`] counts into
/// detached cells, so [`ScheduleCache::stats`] works either way.
#[derive(Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<(u64, BoundingBox), Arc<CommSchedule>>>,
    hits: Counter,
    misses: Counter,
}

impl ScheduleCache {
    /// Empty cache, not wired to any metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache whose hit/miss counters publish through `recorder`.
    pub fn with_recorder(recorder: &Recorder) -> Self {
        ScheduleCache {
            map: Mutex::new(HashMap::new()),
            hits: recorder.counter("cods.schedule_cache.hits"),
            misses: recorder.counter("cods.schedule_cache.misses"),
        }
    }

    /// Cached schedule for `(var, query)`, if any.
    pub fn lookup(&self, var: u64, query: &BoundingBox) -> Option<Arc<CommSchedule>> {
        let got = self.map.lock().unwrap().get(&(var, *query)).cloned();
        match &got {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        got
    }

    /// Store a schedule.
    pub fn insert(&self, var: u64, query: &BoundingBox, schedule: Arc<CommSchedule>) {
        self.map.lock().unwrap().insert((var, *query), schedule);
    }

    /// Invalidate everything (e.g. after a re-decomposition).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{Distribution, ProcessGrid};

    fn blocked(sizes: &[u64], procs: &[u64]) -> Decomposition {
        Decomposition::new(
            BoundingBox::from_sizes(sizes),
            ProcessGrid::new(procs),
            Distribution::Blocked,
        )
    }

    #[test]
    fn schedule_from_entries_clips() {
        let entries = vec![
            LocationEntry {
                bbox: BoundingBox::new(&[0, 0], &[3, 3]),
                owner: 0,
                piece: 0,
            },
            LocationEntry {
                bbox: BoundingBox::new(&[0, 4], &[3, 7]),
                owner: 1,
                piece: 0,
            },
            LocationEntry {
                bbox: BoundingBox::new(&[4, 0], &[7, 3]),
                owner: 2,
                piece: 0,
            },
        ];
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let s = schedule_from_entries(&entries, &q);
        assert_eq!(s.ops.len(), 3);
        assert_eq!(s.total_cells(), 4 + 4 + 4);
        assert!(s.ops.iter().all(|o| q.contains_box(&o.region)));
    }

    #[test]
    fn schedule_from_decomposition_covers_query() {
        let dec = blocked(&[8, 8], &[2, 2]);
        let clients = vec![10, 11, 12, 13];
        let q = BoundingBox::new(&[1, 1], &[6, 6]);
        let s = schedule_from_decomposition(&dec, &clients, &q);
        assert_eq!(s.total_cells(), q.num_cells());
        assert_eq!(s.ops.len(), 4);
        assert!(s.ops.iter().all(|o| clients.contains(&o.src_client)));
    }

    #[test]
    fn decomposition_and_entries_paths_agree() {
        // Entries as the producers would have put them (one piece each).
        let dec = blocked(&[8, 8], &[2, 2]);
        let clients = vec![0, 1, 2, 3];
        let entries: Vec<LocationEntry> = (0..4)
            .map(|r| LocationEntry {
                bbox: dec.blocked_box(r).unwrap(),
                owner: clients[r as usize],
                piece: 0,
            })
            .collect();
        let q = BoundingBox::new(&[2, 3], &[7, 6]);
        let a = schedule_from_entries(&entries, &q);
        let b = schedule_from_decomposition(&dec, &clients, &q);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn cyclic_producer_many_pieces() {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Cyclic,
        );
        let clients = vec![0, 1, 2, 3];
        let q = BoundingBox::new(&[0, 0], &[3, 3]);
        let s = schedule_from_decomposition(&dec, &clients, &q);
        assert_eq!(s.total_cells(), 16);
        // Every rank contributes scattered cells: 4 ranks x 4 single-cell ops.
        assert_eq!(s.ops.len(), 16);
    }

    #[test]
    fn empty_query_outside_domain() {
        let dec = blocked(&[8, 8], &[2, 2]);
        let s = schedule_from_decomposition(
            &dec,
            &[0, 1, 2, 3],
            &BoundingBox::new(&[20, 20], &[30, 30]),
        );
        assert!(s.ops.is_empty());
        assert_eq!(s.total_cells(), 0);
    }

    #[test]
    fn cache_hit_miss_stats() {
        let c = ScheduleCache::new();
        let q = BoundingBox::new(&[0, 0], &[1, 1]);
        assert!(c.lookup(1, &q).is_none());
        c.insert(1, &q, Arc::new(CommSchedule::default()));
        assert!(c.lookup(1, &q).is_some());
        assert!(c.lookup(2, &q).is_none());
        assert_eq!(c.stats(), (1, 2));
        c.clear();
        assert!(c.lookup(1, &q).is_none());
    }

    #[test]
    #[should_panic(expected = "client map size mismatch")]
    fn rejects_short_client_map() {
        let dec = blocked(&[8, 8], &[2, 2]);
        schedule_from_decomposition(&dec, &[0, 1], &BoundingBox::from_sizes(&[8, 8]));
    }
}
