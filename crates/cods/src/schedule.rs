//! Communication schedules for M×N redistribution.
//!
//! A communication schedule "represents the sequence of data transfers
//! required to correctly move data between coupled applications"
//! (§IV.A). Consumers compute one per `get()` — from the DHT's location
//! entries (sequential coupling) or directly from the producer's declared
//! decomposition (concurrent coupling) — cache it, and replay it on later
//! iterations.

use crate::dht::LocationEntry;
use insitu_domain::{BoundingBox, Decomposition};
use insitu_fabric::ClientId;
use insitu_telemetry::{Counter, Recorder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One transfer of a schedule: pull `region` out of the piece stored by
/// `src_client`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransferOp {
    /// Client holding the source piece.
    pub src_client: ClientId,
    /// Piece index within the source's put sequence.
    pub piece: u64,
    /// Full box of the stored piece (the registered buffer's layout).
    pub piece_box: BoundingBox,
    /// Sub-box to move.
    pub region: BoundingBox,
}

/// The transfers fulfilling one consumer `get`.
#[derive(Clone, Debug, Default)]
pub struct CommSchedule {
    /// Transfers, ordered by source client.
    pub ops: Vec<TransferOp>,
}

impl CommSchedule {
    /// Total cells moved by the schedule.
    pub fn total_cells(&self) -> u128 {
        self.ops.iter().map(|o| o.region.num_cells()).sum()
    }
}

/// Union of two regions when they tile a box: identical, or abutting
/// along exactly one dimension with matching extents in all others.
fn try_union(a: &BoundingBox, b: &BoundingBox) -> Option<BoundingBox> {
    if a == b {
        return Some(*a);
    }
    let ndim = a.ndim();
    let mut split = None;
    for d in 0..ndim {
        if a.lb(d) == b.lb(d) && a.ub(d) == b.ub(d) {
            continue;
        }
        if split.is_some() {
            return None;
        }
        split = Some(d);
    }
    let d = split?;
    // Abutting (not overlapping, not gapped) along the split dimension.
    if a.ub(d) + 1 != b.lb(d) && b.ub(d) + 1 != a.lb(d) {
        return None;
    }
    let ndim = a.ndim();
    let lbs: Vec<u64> = (0..ndim).map(|i| a.lb(i).min(b.lb(i))).collect();
    let ubs: Vec<u64> = (0..ndim).map(|i| a.ub(i).max(b.ub(i))).collect();
    Some(BoundingBox::new(&lbs, &ubs))
}

/// Coalesce ops that pull from the same stored piece: duplicate regions
/// collapse and regions abutting along one dimension merge into a single
/// larger transfer, shrinking the schedule without changing the set of
/// cells it moves. Ops must be sorted by `(src_client, piece)`.
pub fn merge_schedule_ops(mut ops: Vec<TransferOp>) -> Vec<TransferOp> {
    let mut out: Vec<TransferOp> = Vec::with_capacity(ops.len());
    let mut start = 0;
    while start < ops.len() {
        let mut end = start + 1;
        while end < ops.len()
            && ops[end].src_client == ops[start].src_client
            && ops[end].piece == ops[start].piece
            && ops[end].piece_box == ops[start].piece_box
        {
            end += 1;
        }
        let group = &mut ops[start..end];
        // Fixpoint merge within the group (groups are tiny in practice).
        // Duplicates collapse first: a copy of a band that already merged
        // into a larger box would otherwise never find its twin.
        let mut regions: Vec<BoundingBox> = group.iter().map(|o| o.region).collect();
        let key = |b: &BoundingBox| -> Vec<(u64, u64)> {
            (0..b.ndim()).map(|d| (b.lb(d), b.ub(d))).collect()
        };
        regions.sort_by_key(&key);
        regions.dedup_by_key(|b| key(b));
        loop {
            let mut merged_any = false;
            'outer: for i in 0..regions.len() {
                for j in i + 1..regions.len() {
                    if let Some(u) = try_union(&regions[i], &regions[j]) {
                        regions[i] = u;
                        regions.swap_remove(j);
                        merged_any = true;
                        break 'outer;
                    }
                }
            }
            if !merged_any {
                break;
            }
        }
        let proto = group[0];
        out.extend(
            regions
                .into_iter()
                .map(|region| TransferOp { region, ..proto }),
        );
        start = end;
    }
    out
}

/// Build a schedule from DHT location entries, clipping each stored piece
/// to the query box.
pub fn schedule_from_entries(entries: &[LocationEntry], query: &BoundingBox) -> CommSchedule {
    let mut ops: Vec<TransferOp> = entries
        .iter()
        .filter_map(|e| {
            e.bbox.intersect(query).map(|region| TransferOp {
                src_client: e.owner,
                piece: e.piece,
                piece_box: e.bbox,
                region,
            })
        })
        .collect();
    ops.sort_by_key(|o| (o.src_client, o.piece));
    CommSchedule {
        ops: merge_schedule_ops(ops),
    }
}

/// Build a schedule directly from a producer's decomposition — the
/// concurrent-coupling path, where the consumer knows the producer's
/// declared data decomposition instead of asking the DHT.
///
/// `producer_clients[rank]` maps producer ranks to execution clients.
/// Piece indices follow the producer's `rank_region` enumeration order,
/// matching what the producer's `put` sequence registers.
pub fn schedule_from_decomposition(
    producer: &Decomposition,
    producer_clients: &[ClientId],
    query: &BoundingBox,
) -> CommSchedule {
    assert_eq!(
        producer_clients.len() as u64,
        producer.num_ranks(),
        "client map size mismatch"
    );
    let mut ops = Vec::new();
    for overlap in producer.overlaps(query) {
        let src_client = producer_clients[overlap.rank as usize];
        for (piece, piece_box) in producer.rank_region(overlap.rank).into_iter().enumerate() {
            if let Some(region) = piece_box.intersect(query) {
                ops.push(TransferOp {
                    src_client,
                    piece: piece as u64,
                    piece_box,
                    region,
                });
            }
        }
    }
    ops.sort_by_key(|o| (o.src_client, o.piece));
    CommSchedule {
        ops: merge_schedule_ops(ops),
    }
}

/// Cache of computed schedules keyed by `(var, query box)` — coupling
/// patterns repeat every iteration, so replays skip the DHT entirely.
///
/// Hit/miss accounting lives in telemetry [`Counter`]s
/// (`cods.schedule_cache.hits` / `.misses` when built over a live
/// recorder); a cache built with [`ScheduleCache::new`] counts into
/// detached cells, so [`ScheduleCache::stats`] works either way.
#[derive(Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<(u64, BoundingBox), Arc<CommSchedule>>>,
    hits: Counter,
    misses: Counter,
}

impl ScheduleCache {
    /// Empty cache, not wired to any metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache whose hit/miss counters publish through `recorder`.
    pub fn with_recorder(recorder: &Recorder) -> Self {
        ScheduleCache {
            map: Mutex::new(HashMap::new()),
            hits: recorder.counter("cods.schedule_cache.hits"),
            misses: recorder.counter("cods.schedule_cache.misses"),
        }
    }

    /// Cached schedule for `(var, query)`, if any.
    pub fn lookup(&self, var: u64, query: &BoundingBox) -> Option<Arc<CommSchedule>> {
        let got = self.map.lock().unwrap().get(&(var, *query)).cloned();
        match &got {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        got
    }

    /// Store a schedule.
    pub fn insert(&self, var: u64, query: &BoundingBox, schedule: Arc<CommSchedule>) {
        self.map.lock().unwrap().insert((var, *query), schedule);
    }

    /// Invalidate everything (e.g. after a re-decomposition).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{Distribution, ProcessGrid};

    fn blocked(sizes: &[u64], procs: &[u64]) -> Decomposition {
        Decomposition::new(
            BoundingBox::from_sizes(sizes),
            ProcessGrid::new(procs),
            Distribution::Blocked,
        )
    }

    #[test]
    fn schedule_from_entries_clips() {
        let entries = vec![
            LocationEntry {
                bbox: BoundingBox::new(&[0, 0], &[3, 3]),
                owner: 0,
                piece: 0,
            },
            LocationEntry {
                bbox: BoundingBox::new(&[0, 4], &[3, 7]),
                owner: 1,
                piece: 0,
            },
            LocationEntry {
                bbox: BoundingBox::new(&[4, 0], &[7, 3]),
                owner: 2,
                piece: 0,
            },
        ];
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let s = schedule_from_entries(&entries, &q);
        assert_eq!(s.ops.len(), 3);
        assert_eq!(s.total_cells(), 4 + 4 + 4);
        assert!(s.ops.iter().all(|o| q.contains_box(&o.region)));
    }

    #[test]
    fn schedule_from_decomposition_covers_query() {
        let dec = blocked(&[8, 8], &[2, 2]);
        let clients = vec![10, 11, 12, 13];
        let q = BoundingBox::new(&[1, 1], &[6, 6]);
        let s = schedule_from_decomposition(&dec, &clients, &q);
        assert_eq!(s.total_cells(), q.num_cells());
        assert_eq!(s.ops.len(), 4);
        assert!(s.ops.iter().all(|o| clients.contains(&o.src_client)));
    }

    #[test]
    fn decomposition_and_entries_paths_agree() {
        // Entries as the producers would have put them (one piece each).
        let dec = blocked(&[8, 8], &[2, 2]);
        let clients = vec![0, 1, 2, 3];
        let entries: Vec<LocationEntry> = (0..4)
            .map(|r| LocationEntry {
                bbox: dec.blocked_box(r).unwrap(),
                owner: clients[r as usize],
                piece: 0,
            })
            .collect();
        let q = BoundingBox::new(&[2, 3], &[7, 6]);
        let a = schedule_from_entries(&entries, &q);
        let b = schedule_from_decomposition(&dec, &clients, &q);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn cyclic_producer_many_pieces() {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Cyclic,
        );
        let clients = vec![0, 1, 2, 3];
        let q = BoundingBox::new(&[0, 0], &[3, 3]);
        let s = schedule_from_decomposition(&dec, &clients, &q);
        assert_eq!(s.total_cells(), 16);
        // Every rank contributes scattered cells: 4 ranks x 4 single-cell ops.
        assert_eq!(s.ops.len(), 16);
    }

    #[test]
    fn empty_query_outside_domain() {
        let dec = blocked(&[8, 8], &[2, 2]);
        let s = schedule_from_decomposition(
            &dec,
            &[0, 1, 2, 3],
            &BoundingBox::new(&[20, 20], &[30, 30]),
        );
        assert!(s.ops.is_empty());
        assert_eq!(s.total_cells(), 0);
    }

    #[test]
    fn cache_hit_miss_stats() {
        let c = ScheduleCache::new();
        let q = BoundingBox::new(&[0, 0], &[1, 1]);
        assert!(c.lookup(1, &q).is_none());
        c.insert(1, &q, Arc::new(CommSchedule::default()));
        assert!(c.lookup(1, &q).is_some());
        assert!(c.lookup(2, &q).is_none());
        assert_eq!(c.stats(), (1, 2));
        c.clear();
        assert!(c.lookup(1, &q).is_none());
    }

    /// Cells covered by a list of ops, as a multiset-free set (ops never
    /// overlap, so a set is enough to compare coverage).
    fn covered_cells(ops: &[TransferOp]) -> std::collections::BTreeSet<Vec<u64>> {
        ops.iter()
            .flat_map(|o| {
                o.region
                    .iter_points()
                    .map(|p| p[..o.region.ndim()].to_vec())
            })
            .collect()
    }

    #[test]
    fn merge_coalesces_adjacent_regions_same_piece() {
        let piece_box = BoundingBox::new(&[0, 0], &[7, 7]);
        let mk = |lb: [u64; 2], ub: [u64; 2]| TransferOp {
            src_client: 3,
            piece: 0,
            piece_box,
            region: BoundingBox::new(&lb, &ub),
        };
        // Two row bands abutting along dim 0, plus a duplicate.
        let ops = vec![mk([0, 0], [3, 7]), mk([4, 0], [7, 7]), mk([0, 0], [3, 7])];
        let before = covered_cells(&ops);
        let merged = merge_schedule_ops(ops);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].region, BoundingBox::new(&[0, 0], &[7, 7]));
        assert_eq!(covered_cells(&merged), before);
    }

    #[test]
    fn merge_cascades_to_fixpoint() {
        let piece_box = BoundingBox::new(&[0, 0], &[7, 7]);
        let mk = |lb: [u64; 2], ub: [u64; 2]| TransferOp {
            src_client: 0,
            piece: 0,
            piece_box,
            region: BoundingBox::new(&lb, &ub),
        };
        // Four quadrants: pairwise merges must cascade into one box.
        let ops = vec![
            mk([0, 0], [3, 3]),
            mk([0, 4], [3, 7]),
            mk([4, 0], [7, 3]),
            mk([4, 4], [7, 7]),
        ];
        let before = covered_cells(&ops);
        let merged = merge_schedule_ops(ops);
        assert_eq!(merged.len(), 1);
        assert_eq!(covered_cells(&merged), before);
    }

    #[test]
    fn merge_keeps_distinct_sources_and_pieces_apart() {
        let piece_box = BoundingBox::new(&[0, 0], &[7, 7]);
        let mk = |src: ClientId, piece: u64, lb: [u64; 2], ub: [u64; 2]| TransferOp {
            src_client: src,
            piece,
            piece_box,
            region: BoundingBox::new(&lb, &ub),
        };
        // Adjacent regions, but different owners / piece ids: untouched.
        let ops = vec![
            mk(0, 0, [0, 0], [3, 7]),
            mk(0, 1, [4, 0], [7, 7]),
            mk(1, 0, [0, 0], [3, 7]),
        ];
        let before = covered_cells(&ops);
        let merged = merge_schedule_ops(ops.clone());
        assert_eq!(merged, ops);
        assert_eq!(covered_cells(&merged), before);
    }

    #[test]
    fn merge_rejects_diagonal_and_gapped_regions() {
        let piece_box = BoundingBox::new(&[0, 0], &[7, 7]);
        let mk = |lb: [u64; 2], ub: [u64; 2]| TransferOp {
            src_client: 0,
            piece: 0,
            piece_box,
            region: BoundingBox::new(&lb, &ub),
        };
        // Diagonal neighbors and a gapped pair: no merge is legal.
        let ops = vec![mk([0, 0], [1, 1]), mk([2, 2], [3, 3]), mk([0, 6], [1, 7])];
        let merged = merge_schedule_ops(ops.clone());
        assert_eq!(merged.len(), 3);
        assert_eq!(covered_cells(&merged), covered_cells(&ops));
    }

    #[test]
    fn merge_requires_matching_piece_boxes() {
        // Same owner and piece id but different stored boxes (as distinct
        // DHT records could claim): regions must NOT merge across them —
        // the merged op would read from the wrong source layout.
        let mk = |pb: BoundingBox, lb: [u64; 2], ub: [u64; 2]| TransferOp {
            src_client: 0,
            piece: 0,
            piece_box: pb,
            region: BoundingBox::new(&lb, &ub),
        };
        let ops = vec![
            mk(BoundingBox::new(&[0, 0], &[3, 7]), [0, 0], [3, 7]),
            mk(BoundingBox::new(&[4, 0], &[7, 7]), [4, 0], [7, 7]),
        ];
        let merged = merge_schedule_ops(ops.clone());
        assert_eq!(merged, ops);
    }

    #[test]
    fn merged_and_unmerged_entry_schedules_move_identical_cells() {
        // Duplicate location records for the same piece (e.g. replicated
        // DHT cores answering the same query, before any dedup).
        let q = BoundingBox::new(&[1, 1], &[6, 6]);
        let bbox = BoundingBox::new(&[0, 0], &[7, 7]);
        let entries: Vec<LocationEntry> = (0..3)
            .map(|_| LocationEntry {
                bbox,
                owner: 5,
                piece: 0,
            })
            .collect();
        let merged = schedule_from_entries(&entries, &q);
        // Reference: the unmerged clip of each entry.
        let unmerged: Vec<TransferOp> = entries
            .iter()
            .filter_map(|e| {
                e.bbox.intersect(&q).map(|region| TransferOp {
                    src_client: e.owner,
                    piece: e.piece,
                    piece_box: e.bbox,
                    region,
                })
            })
            .collect();
        assert_eq!(unmerged.len(), 3);
        assert_eq!(merged.ops.len(), 1);
        assert_eq!(covered_cells(&merged.ops), covered_cells(&unmerged));
        assert_eq!(merged.total_cells(), q.num_cells());
    }

    #[test]
    #[should_panic(expected = "client map size mismatch")]
    fn rejects_short_client_map() {
        let dec = blocked(&[8, 8], &[2, 2]);
        schedule_from_decomposition(&dec, &[0, 1], &BoundingBox::from_sizes(&[8, 8]));
    }
}
