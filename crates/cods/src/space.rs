//! The shared-space programming abstraction: `put`/`get` operators.
//!
//! Mirrors Table I of the paper:
//!
//! | paper            | here                       | coupling    |
//! |------------------|----------------------------|-------------|
//! | `cods_put_cont()`| [`CodsSpace::put_cont`]    | concurrent  |
//! | `cods_get_cont()`| [`CodsSpace::get_cont`]    | concurrent  |
//! | `cods_put_seq()` | [`CodsSpace::put_seq`]     | sequential  |
//! | `cods_get_seq()` | [`CodsSpace::get_seq`]     | sequential  |
//!
//! All operators are one-sided and asynchronous: a `put` registers a
//! remotely readable buffer and returns; a `get` computes (or replays) a
//! communication schedule and pulls every piece directly from where it
//! lives — shared memory when producer and consumer share a node, the
//! (simulated) network otherwise. The sequential variants additionally
//! index the data in the DHT so later applications can discover it.

use crate::codec::{
    bytes_of_f64s_mut, decode_f64s, encode_f64s, f64s_of_bytes, FieldData, ELEM_BYTES,
};
use crate::dht::{var_id, Dht, LocationEntry, DHT_RECORD_BYTES};
use crate::schedule::{
    schedule_from_decomposition, schedule_from_entries, CommSchedule, ScheduleCache,
};
use insitu_dart::{BufKey, BufferHandle, DartRuntime};
use insitu_domain::layout::{copy_region, copy_region_bytes};
use insitu_domain::{BoundingBox, Decomposition};
use insitu_fabric::{ClientId, FaultAction, Locality, TrafficClass};
use insitu_obs::{Event, EventKind, LinkClass};
use insitu_sub::{SubId, SubSink, SubSpec, TakeResult};
use insitu_telemetry::{Counter, Gauge, Recorder};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Errors surfaced by the space operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodsError {
    /// A required source buffer never appeared (producer missing or late).
    Timeout {
        /// Variable name hash.
        var: u64,
        /// Version requested.
        version: u64,
        /// The piece region that could not be fetched.
        region: BoundingBox,
        /// Client that owns (and failed to serve) the piece — names the
        /// faulty participant in reproducers.
        owner: ClientId,
    },
    /// `put` data length does not match the declared box.
    SizeMismatch {
        /// Cells in the declared box.
        expected: u128,
        /// Elements supplied.
        got: usize,
    },
    /// The available pieces do not cover the queried region.
    IncompleteCover {
        /// Cells of the query not covered by any stored piece.
        missing_cells: u128,
    },
    /// Staging this piece would exceed the node's in-memory capacity.
    StagingFull {
        /// Node whose staging memory is exhausted.
        node: u32,
        /// Bytes currently staged on that node.
        used: u64,
        /// Configured per-node limit.
        limit: u64,
    },
}

impl std::fmt::Display for CodsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodsError::Timeout {
                var,
                version,
                region,
                owner,
            } => {
                write!(
                    f,
                    "timed out waiting for var {var:#x} v{version} piece {region:?} from client {owner}"
                )
            }
            CodsError::SizeMismatch { expected, got } => {
                write!(f, "data length {got} does not match box volume {expected}")
            }
            CodsError::IncompleteCover { missing_cells } => {
                write!(f, "query not fully covered: {missing_cells} cells missing")
            }
            CodsError::StagingFull { node, used, limit } => {
                write!(f, "node {node} staging full: {used} of {limit} bytes used")
            }
        }
    }
}

impl std::error::Error for CodsError {}

/// Tuning knobs of the space.
#[derive(Clone, Copy, Debug)]
pub struct CodsConfig {
    /// How long a `get` waits for a missing producer piece.
    pub get_timeout: Duration,
    /// Whether `get` operators use the schedule cache.
    pub cache_schedules: bool,
    /// Per-node in-memory staging capacity (16 GB per Jaguar XT5 node).
    /// `None` disables the check.
    pub staging_limit_per_node: Option<u64>,
    /// Issue schedule ops one at a time instead of overlapping them
    /// (the pre-overlap behavior; kept as an A/B knob for benchmarks).
    pub sequential_pulls: bool,
    /// Run epoch salting every variable-name key (DHT entries, buffer
    /// keys, version bookkeeping), so concurrent service runs sharing
    /// one process — or one pool of node processes — never collide even
    /// when they use identical variable names and versions. `0` means
    /// no salting: keys equal the raw `var_id`, which keeps standalone
    /// runs bit-for-bit identical to the pre-epoch behavior.
    pub key_epoch: u64,
}

impl Default for CodsConfig {
    fn default() -> Self {
        CodsConfig {
            get_timeout: Duration::from_secs(30),
            cache_schedules: true,
            staging_limit_per_node: None,
            sequential_pulls: false,
            key_epoch: 0,
        }
    }
}

/// The `var_id` salt for a run epoch: 0 stays 0 (identity — standalone
/// runs keep raw ids), any other epoch is diffused through a SplitMix64
/// finalizer so consecutive run ids land in unrelated key regions.
pub fn epoch_salt(epoch: u64) -> u64 {
    if epoch == 0 {
        return 0;
    }
    let mut z = epoch.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one `get` did — consumed by tests, the ledger cross-checks and
/// the retrieve-time model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GetReport {
    /// DHT cores consulted (0 on a schedule-cache hit or concurrent get).
    pub dht_cores_queried: u32,
    /// Transfers executed.
    pub ops: u32,
    /// Bytes pulled through shared memory.
    pub shm_bytes: u64,
    /// Bytes pulled over the network.
    pub net_bytes: u64,
    /// Whether the schedule came from the cache.
    pub cache_hit: bool,
}

/// The co-located data space.
///
/// Telemetry flows through the DART runtime's [`Recorder`]: put/get
/// counts, DHT query spans, schedule-cache hits/misses and the staged
/// bytes high-water mark are all published when the runtime was built
/// with a live recorder.
pub struct CodsSpace {
    dart: Arc<DartRuntime>,
    dht: Dht,
    cfg: CodsConfig,
    cache: ScheduleCache,
    consumption: Mutex<ConsumptionState>,
    consumed_cv: Condvar,
    staging: Mutex<std::collections::HashMap<u32, u64>>,
    staging_peak: std::sync::atomic::AtomicU64,
    mirror: Option<Arc<dyn SpaceMirror>>,
    recorder: Recorder,
    put_count: Counter,
    get_count: Counter,
    evict_count: Counter,
    /// Gets answered zero-copy: one aligned piece covered the whole
    /// query, so the result is a `FieldData::View` of the staged (or
    /// shm-mapped) buffer rather than an assembled copy.
    view_count: Counter,
    staging_gauge: Gauge,
    /// Standing-query fragments pushed from the put path (producer side).
    sub_pushes: Counter,
    /// Bytes those fragments carried.
    sub_push_bytes: Counter,
    /// Assembled versions handed to subscribers ([`Self::sub_take`]).
    sub_deliveries: Counter,
    /// Versions a subscriber observed lost to its bounded queue.
    sub_lagged_count: Counter,
    /// Push fragments dropped by the chaos `sub-push` fault site.
    sub_push_drops: Counter,
    /// Currently registered standing queries.
    sub_active: Gauge,
}

/// The consumer end of one standing query registered through
/// [`CodsSpace::subscribe`]: pass it back to [`CodsSpace::sub_take`] to
/// block on pushed versions, and to [`CodsSpace::unsubscribe`] to tear
/// the query down.
pub struct SubHandle {
    /// Deterministic subscription id ([`SubSpec::id`]).
    pub id: SubId,
    /// The registered query.
    pub spec: SubSpec,
    sink: Arc<SubSink>,
    app: u32,
}

impl SubHandle {
    /// Versions this subscription has lost to its bounded queue.
    pub fn lagged(&self) -> u64 {
        self.sink.lagged()
    }

    /// Fully assembled versions so far (delivered or later dropped).
    pub fn completed(&self) -> u64 {
        self.sink.completed()
    }
}

/// Version-consumption bookkeeping for iterative coupling: producers may
/// only reclaim a version's buffers once every expected `get` of that
/// version has completed.
#[derive(Default)]
struct ConsumptionState {
    /// Expected number of completed gets per variable per version.
    expected: std::collections::HashMap<u64, u64>,
    /// Extra expected gets contributed by standing queries, as
    /// `(vid, every_k, gets)`: the gets apply only to versions on the
    /// subscription's stride (`version % every_k == 0`). Push fragments
    /// themselves are copied synchronously inside `put`, so they never
    /// appear here — these entries cover the subscriber's verify/resync
    /// `get` traffic.
    sub_expected: Vec<(u64, u64, u64)>,
    /// Completed gets per `(var, version)`.
    done: std::collections::HashMap<(u64, u64), u64>,
}

impl ConsumptionState {
    /// Total gets `(vid, version)` must see before release, or `None`
    /// when neither a base expectation nor any standing query covers
    /// the variable. A covered variable whose version is off every
    /// stride yields `Some(0)`: nobody will consume it, so the
    /// producer may reclaim it immediately.
    fn expected_for(&self, vid: u64, version: u64) -> Option<u64> {
        let base = self.expected.get(&vid).copied();
        let mut covered = base.is_some();
        let mut total = base.unwrap_or(0);
        for &(v, every_k, gets) in &self.sub_expected {
            if v == vid {
                covered = true;
                if version % every_k == 0 {
                    total += gets;
                }
            }
        }
        covered.then_some(total)
    }
}

fn buf_key(var: u64, version: u64, owner: ClientId, piece: u64) -> BufKey {
    BufKey {
        name: var,
        version,
        piece: ((owner as u64) << 32) | piece,
    }
}

/// Replication hooks for distributed runs.
///
/// A single-process space holds the only copy of the DHT and the
/// consumption/eviction bookkeeping. When execution clients are spread
/// over several processes, each process holds a full replica and the
/// wire transport implements this trait to propagate local state changes
/// to the other replicas. The receiving side applies them with the
/// `apply_remote_*` methods, which update the replica **without**
/// re-mirroring and without any ledger accounting — the originating
/// process already accounted the logical traffic, so merged ledgers stay
/// byte-identical to a single-process run.
pub trait SpaceMirror: Send + Sync {
    /// A piece of `(var, version)` was indexed in the local DHT replica.
    fn dht_insert(&self, var: u64, version: u64, entry: &LocationEntry);
    /// A `get` of `(var, version)` completed locally.
    fn get_done(&self, var: u64, version: u64);
    /// Versions of `var` up to and including `version` were evicted
    /// locally.
    fn evict(&self, var: u64, version: u64);
    /// A standing query was registered locally; replicate it so every
    /// producer-hosting process can match puts against it. Default:
    /// no-op (single-process spaces need no replication).
    fn sub_open(&self, spec: &SubSpec) {
        let _ = spec;
    }
    /// A standing query was cancelled locally. Default: no-op.
    fn sub_cancel(&self, id: SubId) {
        let _ = id;
    }
    /// A push fragment matched a subscription whose subscriber is
    /// hosted by another process: carry `data` (encoded f64 cells of
    /// `frag`) to it. Default: no-op, which silently drops the
    /// fragment — distributed transports must override this.
    #[allow(clippy::too_many_arguments)] // one wire frame's worth of fields
    fn sub_push(
        &self,
        id: SubId,
        var: u64,
        version: u64,
        src: ClientId,
        subscriber: ClientId,
        frag: &BoundingBox,
        data: &[u8],
    ) {
        let _ = (id, var, version, src, subscriber, frag, data);
    }
    /// The local subscriber's bounded queue lost `version`
    /// (diagnostics only — healing is the subscriber's resync `get`).
    /// Default: no-op.
    fn sub_lagged(&self, id: SubId, version: u64, subscriber: ClientId) {
        let _ = (id, version, subscriber);
    }
}

impl CodsSpace {
    /// Build a space over an existing DART runtime and DHT. Telemetry is
    /// inherited from the runtime's recorder.
    pub fn new(dart: Arc<DartRuntime>, dht: Dht, cfg: CodsConfig) -> Arc<Self> {
        Self::build(dart, dht, cfg, None)
    }

    /// The variable key this space indexes `var` under: the raw
    /// `var_id` XOR-salted by the run epoch. With `key_epoch == 0` this
    /// is exactly `var_id(var)`, so standalone runs are unchanged;
    /// distinct epochs map identical variable names into disjoint key
    /// regions of a shared registry/DHT.
    pub fn key_of(&self, var: &str) -> u64 {
        var_id(var) ^ epoch_salt(self.cfg.key_epoch)
    }

    /// Build a space whose DHT/consumption/eviction state changes are
    /// mirrored to remote replicas through `mirror` (a distributed run's
    /// wire transport).
    pub fn with_mirror(
        dart: Arc<DartRuntime>,
        dht: Dht,
        cfg: CodsConfig,
        mirror: Arc<dyn SpaceMirror>,
    ) -> Arc<Self> {
        Self::build(dart, dht, cfg, Some(mirror))
    }

    fn build(
        dart: Arc<DartRuntime>,
        dht: Dht,
        cfg: CodsConfig,
        mirror: Option<Arc<dyn SpaceMirror>>,
    ) -> Arc<Self> {
        let recorder = dart.recorder().clone();
        Arc::new(CodsSpace {
            dht,
            cfg,
            cache: ScheduleCache::with_recorder(&recorder),
            consumption: Mutex::new(ConsumptionState::default()),
            consumed_cv: Condvar::new(),
            staging: Mutex::new(std::collections::HashMap::new()),
            staging_peak: std::sync::atomic::AtomicU64::new(0),
            mirror,
            put_count: recorder.counter("cods.put"),
            get_count: recorder.counter("cods.get"),
            evict_count: recorder.counter("cods.evictions"),
            view_count: recorder.counter("cods.view_hits"),
            staging_gauge: recorder.gauge("cods.staging_bytes"),
            sub_pushes: recorder.counter("sub.pushes"),
            sub_push_bytes: recorder.counter("sub.push_bytes"),
            sub_deliveries: recorder.counter("sub.deliveries"),
            sub_lagged_count: recorder.counter("sub.lagged"),
            sub_push_drops: recorder.counter("sub.push_drops"),
            sub_active: recorder.gauge("sub.active"),
            recorder,
            dart,
        })
    }

    /// Declare how many `get` completions a version of `var` must see
    /// before [`Self::wait_version_consumed`] releases it (one per
    /// consumer piece retrieval). Enables producers of iterative
    /// couplings to reclaim old versions safely.
    pub fn set_expected_gets(&self, var: &str, gets: u64) {
        self.consumption
            .lock()
            .unwrap()
            .expected
            .insert(self.key_of(var), gets);
    }

    /// Declare that every on-stride version of `var` (those with
    /// `version % every_k == 0`) must see `gets` additional completed
    /// gets before [`Self::wait_version_consumed`] releases it. This is
    /// how standing-query verify/resync traffic enters the consumption
    /// ledger: push fragments are copied synchronously inside `put` and
    /// need no release gate of their own.
    pub fn add_sub_expected_gets(&self, var: &str, every_k: u64, gets: u64) {
        assert!(every_k >= 1, "every_k must be at least 1");
        self.consumption
            .lock()
            .unwrap()
            .sub_expected
            .push((self.key_of(var), every_k, gets));
    }

    /// Completed gets recorded for `(var, version)`.
    pub fn gets_completed(&self, var: &str, version: u64) -> u64 {
        self.consumption
            .lock()
            .unwrap()
            .done
            .get(&(self.key_of(var), version))
            .copied()
            .unwrap_or(0)
    }

    /// Block until every expected `get` of `(var, version)` has completed,
    /// up to `timeout`. Returns `false` on timeout or if no expectation
    /// was declared.
    pub fn wait_version_consumed(&self, var: &str, version: u64, timeout: Duration) -> bool {
        let vid = self.key_of(var);
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.consumption.lock().unwrap();
        let Some(expected) = state.expected_for(vid, version) else {
            return false;
        };
        loop {
            if state.done.get(&(vid, version)).copied().unwrap_or(0) >= expected {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, res) = self
                .consumed_cv
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
            if res.timed_out() {
                return state.done.get(&(vid, version)).copied().unwrap_or(0) >= expected;
            }
        }
    }

    fn note_get_complete(&self, vid: u64, version: u64) {
        self.bump_get_done(vid, version);
        if let Some(m) = &self.mirror {
            m.get_done(vid, version);
        }
    }

    fn bump_get_done(&self, vid: u64, version: u64) {
        let mut state = self.consumption.lock().unwrap();
        *state.done.entry((vid, version)).or_insert(0) += 1;
        drop(state);
        self.consumed_cv.notify_all();
    }

    /// Apply a remote replica's completed `get` (wire reader entry point).
    /// Bumps the consumption count without re-mirroring.
    pub fn apply_remote_get_done(&self, vid: u64, version: u64) {
        self.bump_get_done(vid, version);
    }

    /// Apply a remote replica's DHT insert (wire reader entry point).
    /// Indexes the location without accounting — the producer's process
    /// already recorded the DHT traffic — and without re-mirroring.
    pub fn apply_remote_dht_insert(&self, vid: u64, version: u64, entry: LocationEntry) {
        self.dht.insert(vid, version, entry);
    }

    /// Apply a remote replica's eviction (wire reader entry point):
    /// drops DHT records and registered buffers for all versions of `vid`
    /// up to and including `version`, without re-mirroring.
    pub fn apply_remote_evict(&self, vid: u64, version: u64) {
        self.evict_vid(vid, version);
    }

    /// Register a standing query for a subscriber hosted in this
    /// process and mirror it to remote replicas: every subsequent
    /// matching `put` pushes the overlapping fragment into the returned
    /// handle's sink, where [`Self::sub_take`] assembles and delivers
    /// whole versions.
    ///
    /// # Panics
    /// Panics on `every_k == 0` — user-facing config validation rejects
    /// that before it reaches the space.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn subscribe(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        region: &BoundingBox,
        every_k: u64,
        queue_cap: usize,
    ) -> SubHandle {
        let handle = self.subscribe_local(client, app, var, region, every_k, queue_cap);
        if let Some(m) = &self.mirror {
            m.sub_open(&handle.spec);
        }
        handle
    }

    /// [`Self::subscribe`] without the mirror broadcast. The execution
    /// engine uses this when every process compiles the same scenario:
    /// each replica registers the subscription from its own copy, so no
    /// wire traffic (and no registration race) is needed.
    pub fn subscribe_local(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        region: &BoundingBox,
        every_k: u64,
        queue_cap: usize,
    ) -> SubHandle {
        let spec = SubSpec {
            vid: self.key_of(var),
            region: *region,
            every_k,
            subscriber: client,
        };
        let entry = self.dart.subs().register(spec.clone());
        let sink = entry.attach_sink(queue_cap);
        self.sub_active.set(self.dart.subs().active());
        SubHandle {
            id: entry.id,
            spec,
            sink,
            app,
        }
    }

    /// Replicate a standing query whose subscriber lives in another
    /// process (wire reader / scenario compilation entry point):
    /// registry-only — no sink, no re-mirroring. Hostile or corrupt
    /// `every_k == 0` specs are ignored rather than panicking the
    /// reactor.
    pub fn apply_remote_subscribe(&self, spec: &SubSpec) {
        if spec.every_k == 0 {
            return;
        }
        self.dart.subs().register(spec.clone());
        self.sub_active.set(self.dart.subs().active());
    }

    /// Apply a remote replica's cancellation (wire reader entry point).
    pub fn apply_remote_sub_cancel(&self, id: SubId) {
        self.dart.subs().cancel(id);
        self.sub_active.set(self.dart.subs().active());
    }

    /// Deliver a wire-carried push fragment to the locally hosted
    /// subscriber sink (wire reader entry point). No accounting and no
    /// flight `SubPush` — the producer's process recorded both; the
    /// transport layer records the wire hop itself. Returns `false` if
    /// the subscription is unknown here or has no local sink (a stale
    /// push after cancellation — dropped, the ledger already charged
    /// it).
    pub fn apply_remote_sub_push(
        &self,
        sub_id: SubId,
        version: u64,
        frag_box: &BoundingBox,
        data: &[u8],
    ) -> bool {
        let Some(entry) = self.dart.subs().get(sub_id) else {
            return false;
        };
        let Some(sink) = entry.sink() else {
            return false;
        };
        if data.len() % ELEM_BYTES != 0 || (data.len() / ELEM_BYTES) as u128 != frag_box.num_cells()
        {
            return false;
        }
        let frag = decode_f64s(data);
        sink.offer(version, frag_box, &frag);
        true
    }

    /// Tear down a standing query: close its sink, drop the registry
    /// entry, and mirror the cancellation. Blocked [`Self::sub_take`]
    /// calls return [`TakeResult::Closed`]. Returns `false` if the
    /// subscription was already gone.
    pub fn unsubscribe(&self, handle: &SubHandle) -> bool {
        let removed = self.dart.subs().cancel(handle.id);
        self.sub_active.set(self.dart.subs().active());
        if removed {
            if let Some(m) = &self.mirror {
                m.sub_cancel(handle.id);
            }
        }
        removed
    }

    /// Block until `version` of the subscribed region is fully assembled
    /// in `handle`'s sink, up to `timeout`. On [`TakeResult::Lagged`] or
    /// [`TakeResult::TimedOut`] the caller heals the gap with an
    /// ordinary `get` — the space stays policy-free about resync.
    pub fn sub_take(&self, handle: &SubHandle, version: u64, timeout: Duration) -> TakeResult {
        let res = handle
            .sink
            .take_version(version, std::time::Instant::now() + timeout);
        match &res {
            TakeResult::Data(data) => {
                self.sub_deliveries.inc();
                let flight = self.dart.flight();
                if flight.is_enabled() {
                    let now = flight.now_us();
                    flight.record(
                        Event::new(flight.next_seq(), EventKind::SubDeliver)
                            .app(handle.app)
                            .var(handle.spec.vid)
                            .version(version)
                            .bbox(handle.spec.region)
                            .dst(handle.spec.subscriber)
                            .piece(handle.id)
                            .bytes(data.len() as u64 * ELEM_BYTES as u64)
                            .window(now, 0),
                    );
                }
            }
            TakeResult::Lagged => {
                self.sub_lagged_count.inc();
                if let Some(m) = &self.mirror {
                    m.sub_lagged(handle.id, version, handle.spec.subscriber);
                }
            }
            _ => {}
        }
        res
    }

    /// The location service.
    pub fn dht(&self) -> &Dht {
        &self.dht
    }

    /// The schedule cache (stats are used by the caching ablation).
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// The underlying DART runtime.
    pub fn dart(&self) -> &Arc<DartRuntime> {
        &self.dart
    }

    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    fn put_impl(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
        index_in_dht: bool,
    ) -> Result<(), CodsError> {
        if data.len() as u128 != bbox.num_cells() {
            return Err(CodsError::SizeMismatch {
                expected: bbox.num_cells(),
                got: data.len(),
            });
        }
        let vid = self.key_of(var);
        let bytes = data.len() as u64 * ELEM_BYTES as u64;
        let node = self.dart.placement().node_of(client);
        let flight = self.dart.flight();
        let put_start = flight.now_us();
        let injector = self.dart.injector();
        if injector.staging_exhausted(node) {
            let used = self.staging_bytes(node);
            self.record_fault("stage-full", app, vid, version, client, piece);
            return Err(CodsError::StagingFull {
                node,
                used,
                limit: used,
            });
        }
        // An injected dead producer crashes between its DHT insert and its
        // buffer registration: the location is advertised below, but no
        // payload ever lands in staging.
        let dead = injector.dead_producer(vid, version, client, piece);
        if dead {
            self.record_fault("dead-producer", app, vid, version, client, piece);
        }
        if !dead {
            let mut staging = self.staging.lock().unwrap();
            let used = staging.entry(node).or_insert(0);
            if let Some(limit) = self.cfg.staging_limit_per_node {
                if *used + bytes > limit {
                    self.record_fault("stage-full", app, vid, version, client, piece);
                    return Err(CodsError::StagingFull {
                        node,
                        used: *used,
                        limit,
                    });
                }
            }
            *used += bytes;
            let peak = staging.values().copied().max().unwrap_or(0);
            self.staging_peak
                .fetch_max(peak, std::sync::atomic::Ordering::Relaxed);
            self.staging_gauge.set(peak);
        }
        self.put_count.inc();
        if !dead {
            self.dart.register_buffer(
                buf_key(vid, version, client, piece),
                client,
                encode_f64s(data),
            );
        }
        if index_in_dht {
            let entry = LocationEntry {
                bbox: *bbox,
                owner: client,
                piece,
            };
            let cores = self.dht.insert(vid, version, entry);
            if let Some(m) = &self.mirror {
                m.dht_insert(vid, version, &entry);
            }
            for c in cores {
                self.dart.account(
                    app,
                    TrafficClass::Dht,
                    client,
                    self.dht.core_client(c),
                    DHT_RECORD_BYTES,
                );
            }
        }
        // The Put's sequence number is allocated before the push fan-out
        // so every SubPush it spawns can name it as parent.
        let put_seq = flight.next_seq();
        if !dead {
            self.push_to_subs(client, app, vid, version, piece, bbox, data, put_seq);
        }
        if flight.is_enabled() {
            let now = flight.now_us();
            flight.record(
                Event::new(
                    put_seq,
                    EventKind::Put {
                        indexed: index_in_dht,
                    },
                )
                .app(app)
                .var(vid)
                .version(version)
                .bbox(*bbox)
                .src(client)
                .piece(piece)
                .bytes(bytes)
                .window(put_start, now.saturating_sub(put_start)),
            );
        }
        Ok(())
    }

    /// Fan a freshly put piece out to every matching standing query.
    ///
    /// This runs synchronously inside `put`, before the transport split:
    /// a subscriber hosted in this process gets the fragment offered
    /// straight into its sink, anything else goes through the mirror.
    /// The chaos `sub-push` site is consulted here — on the shared path —
    /// so an injected drop replays identically whether or not the
    /// subscriber sits behind the wire.
    #[allow(clippy::too_many_arguments)] // put_impl's identity plus the parent seq
    fn push_to_subs(
        &self,
        client: ClientId,
        app: u32,
        vid: u64,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
        put_seq: u64,
    ) {
        let injector = self.dart.injector();
        let flight = self.dart.flight();
        for entry in self.dart.subs().matching(vid, version) {
            let Some(overlap) = entry.spec.region.intersect(bbox) else {
                continue;
            };
            if matches!(
                injector.on_sub_push(vid, version, entry.spec.subscriber, piece),
                FaultAction::Drop
            ) {
                self.record_fault("sub-push", app, vid, version, client, piece);
                self.sub_push_drops.inc();
                continue;
            }
            let mut frag = vec![0.0; overlap.num_cells() as usize];
            copy_region(data, bbox, &mut frag, &overlap, &overlap);
            let frag_bytes = frag.len() as u64 * ELEM_BYTES as u64;
            entry
                .pushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.sub_pushes.inc();
            self.sub_push_bytes.add(frag_bytes);
            // Producer-side accounting, exactly once per fragment: the
            // remote replica applies pushes without re-accounting, so
            // merged ledgers match a single-process run byte for byte.
            self.dart.account(
                app,
                TrafficClass::InterApp,
                client,
                entry.spec.subscriber,
                frag_bytes,
            );
            if flight.is_enabled() {
                let now = flight.now_us();
                flight.record(
                    Event::new(flight.next_seq(), EventKind::SubPush)
                        .parent(put_seq)
                        .app(app)
                        .var(vid)
                        .version(version)
                        .bbox(overlap)
                        .src(client)
                        .dst(entry.spec.subscriber)
                        .piece(entry.id)
                        .bytes(frag_bytes)
                        .window(now, 0),
                );
            }
            match entry.sink() {
                Some(sink) => {
                    sink.offer(version, &overlap, &frag);
                }
                None => {
                    if let Some(m) = &self.mirror {
                        m.sub_push(
                            entry.id,
                            vid,
                            version,
                            client,
                            entry.spec.subscriber,
                            &overlap,
                            &encode_f64s(&frag),
                        );
                    }
                }
            }
        }
    }

    /// Log an injected fault at a CoDS fault site as a flight event.
    fn record_fault(
        &self,
        kind: &'static str,
        app: u32,
        vid: u64,
        version: u64,
        client: ClientId,
        piece: u64,
    ) {
        let flight = self.dart.flight();
        if !flight.is_enabled() {
            return;
        }
        let now = flight.now_us();
        flight.record(
            Event::new(flight.next_seq(), EventKind::Fault { kind })
                .app(app)
                .var(vid)
                .version(version)
                .src(client)
                .piece(piece)
                .window(now, 0),
        );
    }

    /// `cods_put_seq`: store a piece into the space and index it in the
    /// DHT for later (sequentially coupled) consumers.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn put_seq(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
    ) -> Result<(), CodsError> {
        self.put_impl(client, app, var, version, piece, bbox, data, true)
    }

    /// `cods_put_cont`: expose a piece for direct pull by a concurrently
    /// running consumer (no DHT indexing — the consumer derives locations
    /// from the producer's declared decomposition).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn put_cont(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
    ) -> Result<(), CodsError> {
        self.put_impl(client, app, var, version, piece, bbox, data, false)
    }

    /// `cods_get_seq`: retrieve `query` of `(var, version)` using the DHT
    /// location service (or a cached schedule).
    pub fn get_seq(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        query: &BoundingBox,
    ) -> Result<(FieldData, GetReport), CodsError> {
        let vid = self.key_of(var);
        self.get_count.inc();
        let flight = self.dart.flight();
        let gstart = flight.now_us();
        let gseq = flight.next_seq();
        let mut report = GetReport::default();
        let schedule = match self.cached(vid, query) {
            Some(s) => {
                report.cache_hit = true;
                self.record_schedule(gseq, gstart, true, app, vid, version, client);
                s
            }
            None => {
                let dht_start = flight.now_us();
                let _query_span = self.recorder.span("cods.dht_query", "cods", client as u64);
                let injector = self.dart.injector();
                let (entries, cores) = self
                    .dht
                    .query_filtered(vid, version, query, &|c| !injector.dht_core_down(c));
                report.dht_cores_queried = cores.len() as u32;
                // One query record out to each consulted core; the reply
                // carries the matching location records (at least one
                // record's worth of header per core).
                let reply_records = 1 + entries.len().div_ceil(cores.len().max(1)) as u64;
                for c in &cores {
                    let peer = self.dht.core_client(*c);
                    self.dart
                        .account(app, TrafficClass::Dht, client, peer, DHT_RECORD_BYTES);
                    self.dart.account(
                        app,
                        TrafficClass::Dht,
                        peer,
                        client,
                        DHT_RECORD_BYTES * reply_records,
                    );
                }
                if flight.is_enabled() {
                    flight.record(
                        Event::new(
                            flight.next_seq(),
                            EventKind::DhtLookup {
                                cores: report.dht_cores_queried,
                            },
                        )
                        .parent(gseq)
                        .app(app)
                        .var(vid)
                        .version(version)
                        .dst(client)
                        .window(dht_start, flight.now_us().saturating_sub(dht_start)),
                    );
                }
                let sched_start = flight.now_us();
                let s = Arc::new(schedule_from_entries(&entries, query));
                self.record_schedule(gseq, sched_start, false, app, vid, version, client);
                self.store_cache(vid, query, Arc::clone(&s));
                s
            }
        };
        let data = self.execute(
            &schedule,
            client,
            app,
            vid,
            version,
            query,
            gseq,
            &mut report,
        )?;
        if flight.is_enabled() {
            flight.record(
                Event::new(gseq, EventKind::Get { cont: false })
                    .app(app)
                    .var(vid)
                    .version(version)
                    .bbox(*query)
                    .dst(client)
                    .bytes(data.len() as u64 * ELEM_BYTES as u64)
                    .window(gstart, flight.now_us().saturating_sub(gstart)),
            );
        }
        Ok((data, report))
    }

    /// `cods_get_cont`: retrieve `query` directly from a concurrently
    /// running producer, whose data decomposition is declared up front.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn get_cont(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        query: &BoundingBox,
        producer: &Decomposition,
        producer_clients: &[ClientId],
    ) -> Result<(FieldData, GetReport), CodsError> {
        let vid = self.key_of(var);
        self.get_count.inc();
        let flight = self.dart.flight();
        let gstart = flight.now_us();
        let gseq = flight.next_seq();
        let mut report = GetReport::default();
        let schedule = match self.cached(vid, query) {
            Some(s) => {
                report.cache_hit = true;
                self.record_schedule(gseq, gstart, true, app, vid, version, client);
                s
            }
            None => {
                let sched_start = flight.now_us();
                let s = Arc::new(schedule_from_decomposition(
                    producer,
                    producer_clients,
                    query,
                ));
                self.record_schedule(gseq, sched_start, false, app, vid, version, client);
                self.store_cache(vid, query, Arc::clone(&s));
                s
            }
        };
        let data = self.execute(
            &schedule,
            client,
            app,
            vid,
            version,
            query,
            gseq,
            &mut report,
        )?;
        if flight.is_enabled() {
            flight.record(
                Event::new(gseq, EventKind::Get { cont: true })
                    .app(app)
                    .var(vid)
                    .version(version)
                    .bbox(*query)
                    .dst(client)
                    .bytes(data.len() as u64 * ELEM_BYTES as u64)
                    .window(gstart, flight.now_us().saturating_sub(gstart)),
            );
        }
        Ok((data, report))
    }

    /// Log a schedule-computation child event under `parent` (a get's
    /// pre-allocated sequence number).
    #[allow(clippy::too_many_arguments)] // event tags mirror the cods_* operator signatures
    fn record_schedule(
        &self,
        parent: u64,
        start_us: u64,
        hit: bool,
        app: u32,
        vid: u64,
        version: u64,
        client: ClientId,
    ) {
        let flight = self.dart.flight();
        if !flight.is_enabled() {
            return;
        }
        flight.record(
            Event::new(flight.next_seq(), EventKind::Schedule { hit })
                .parent(parent)
                .app(app)
                .var(vid)
                .version(version)
                .dst(client)
                .window(start_us, flight.now_us().saturating_sub(start_us)),
        );
    }

    fn cached(&self, vid: u64, query: &BoundingBox) -> Option<Arc<CommSchedule>> {
        if self.cfg.cache_schedules {
            self.cache.lookup(vid, query)
        } else {
            None
        }
    }

    fn store_cache(&self, vid: u64, query: &BoundingBox, s: Arc<CommSchedule>) {
        // Never cache a schedule that does not cover the query (e.g. a
        // DHT snapshot taken before every producer had indexed its
        // piece): replays would keep failing even once the data exists.
        if self.cfg.cache_schedules && s.total_cells() == query.num_cells() {
            self.cache.insert(vid, query, s);
        }
    }

    /// Receiver-driven pull: issue every scheduled piece at once and
    /// assemble the dense row-major array of `query` out of order as
    /// pieces arrive, so the get blocks for the slowest producer instead
    /// of the sum of all producer waits. Each piece is copied exactly
    /// once, straight from the staged buffer into the result; when a
    /// single piece exactly covers the query the result is a zero-copy
    /// view of the staged buffer itself.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    fn execute(
        &self,
        schedule: &CommSchedule,
        client: ClientId,
        app: u32,
        vid: u64,
        version: u64,
        query: &BoundingBox,
        parent: u64,
        report: &mut GetReport,
    ) -> Result<FieldData, CodsError> {
        let covered = schedule.total_cells();
        if covered != query.num_cells() {
            return Err(CodsError::IncompleteCover {
                missing_cells: query.num_cells().saturating_sub(covered),
            });
        }
        let flight = self.dart.flight();
        let cells = query.num_cells() as usize;
        let keys: Vec<BufKey> = schedule
            .ops
            .iter()
            .map(|op| buf_key(vid, version, op.src_client, op.piece))
            .collect();
        let zero_copy = schedule.ops.len() == 1 && schedule.ops[0].piece_box == *query;
        let mut out: Vec<f64> = if zero_copy {
            Vec::new()
        } else {
            vec![0.0; cells]
        };
        let mut view: Option<insitu_util::Bytes> = None;
        let issue_us = flight.now_us();
        let mut complete = |i: usize, handle: BufferHandle, wait: Duration| {
            let op = &schedule.ops[i];
            if zero_copy {
                assert_eq!(
                    handle.data.len(),
                    cells * ELEM_BYTES,
                    "staged piece does not match its declared box"
                );
                view = Some(handle.data.clone());
            } else if let Some(src) = f64s_of_bytes(&handle.data) {
                copy_region(src, &op.piece_box, &mut out, query, &op.region);
            } else {
                // Staged buffer not 8-aligned: copy at byte granularity.
                copy_region_bytes(
                    &handle.data,
                    &op.piece_box,
                    bytes_of_f64s_mut(&mut out),
                    query,
                    &op.region,
                    ELEM_BYTES,
                );
            }
            let bytes = op.region.num_cells() as u64 * ELEM_BYTES as u64;
            let loc = self
                .dart
                .account(app, TrafficClass::InterApp, handle.owner, client, bytes);
            match loc {
                Locality::SharedMemory => report.shm_bytes += bytes,
                Locality::Network => report.net_bytes += bytes,
            }
            report.ops += 1;
            if flight.is_enabled() {
                flight.record(
                    Event::new(
                        flight.next_seq(),
                        EventKind::Pull {
                            wait_us: wait.as_micros() as u64,
                        },
                    )
                    .parent(parent)
                    .app(app)
                    .var(vid)
                    .version(version)
                    .bbox(op.region)
                    .src(handle.owner)
                    .dst(client)
                    .link(LinkClass::from_locality(loc))
                    .piece(op.piece)
                    .bytes(bytes)
                    .window(issue_us, flight.now_us().saturating_sub(issue_us)),
                );
            }
        };
        let result = if self.cfg.sequential_pulls {
            // A/B baseline: one op at a time, same single-copy assembly.
            let mut failed = None;
            for (i, key) in keys.iter().enumerate() {
                let started = std::time::Instant::now();
                match self.dart.pull(key, self.cfg.get_timeout) {
                    Some(handle) => complete(i, handle, started.elapsed()),
                    None => {
                        failed = Some(i);
                        break;
                    }
                }
            }
            failed.map_or(Ok(()), Err)
        } else {
            self.dart
                .pull_many(&keys, self.cfg.get_timeout, &mut complete)
        };
        if let Err(i) = result {
            let op = &schedule.ops[i];
            return Err(CodsError::Timeout {
                var: vid,
                version,
                region: op.region,
                owner: op.src_client,
            });
        }
        self.note_get_complete(vid, version);
        let data = match view {
            Some(bytes) => FieldData::from_bytes(bytes),
            None => FieldData::Owned(out),
        };
        if data.is_view() {
            self.view_count.inc();
        }
        Ok(data)
    }

    /// Highest version of `var` visible in the DHT (sequential couplings
    /// only; concurrent puts are not indexed).
    pub fn latest_version(&self, var: &str) -> Option<u64> {
        self.dht.latest_version(self.key_of(var))
    }

    /// Drop a version's buffers and DHT records (memory management between
    /// workflow stages). Frees the owners' staging accounting.
    /// Eviction is *in-order*: all versions up to and including `version`
    /// are dropped from both the DHT and the registry.
    pub fn evict_version(&self, var: &str, version: u64) {
        let vid = self.key_of(var);
        self.evict_vid(vid, version);
        if let Some(m) = &self.mirror {
            m.evict(vid, version);
        }
    }

    fn evict_vid(&self, vid: u64, version: u64) {
        self.dht.remove_versions_up_to(vid, version);
        let removed = self.dart.registry().evict_below(vid, version + 1);
        self.evict_count.add(removed.len() as u64);
        let mut staging = self.staging.lock().unwrap();
        for (owner, bytes) in removed {
            let node = self.dart.placement().node_of(owner);
            if let Some(used) = staging.get_mut(&node) {
                *used = used.saturating_sub(bytes);
            }
        }
        self.staging_gauge
            .set(staging.values().copied().max().unwrap_or(0));
    }

    /// Bytes currently staged in CoDS memory on `node`.
    pub fn staging_bytes(&self, node: u32) -> u64 {
        self.staging
            .lock()
            .unwrap()
            .get(&node)
            .copied()
            .unwrap_or(0)
    }

    /// The highest per-node staging occupancy observed so far.
    pub fn staging_peak(&self) -> u64 {
        self.staging_peak.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{layout, Distribution, ProcessGrid};
    use insitu_fabric::{MachineSpec, Placement, TransferLedger};
    use insitu_sfc::HilbertCurve;

    /// 4 clients on 2 nodes of 2 cores; DHT core per node on clients 0, 2.
    fn space() -> Arc<CodsSpace> {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
    }

    fn tagfn(p: &[u64]) -> f64 {
        (p[0] * 100 + p[1]) as f64 + 0.25
    }

    /// Producer decomposition 2x2 blocked over 8x8; clients 0..4 hold it.
    fn produce(space: &CodsSpace, var: &str, version: u64) -> (Decomposition, Vec<ClientId>) {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        let clients: Vec<ClientId> = (0..4).collect();
        for r in 0..4u64 {
            let b = dec.blocked_box(r).unwrap();
            let data = layout::fill_with(&b, tagfn);
            space
                .put_seq(clients[r as usize], 1, var, version, 0, &b, &data)
                .unwrap();
        }
        (dec, clients)
    }

    #[derive(Default)]
    struct RecordingMirror {
        inserts: Mutex<Vec<(u64, u64, LocationEntry)>>,
        dones: Mutex<Vec<(u64, u64)>>,
        evicts: Mutex<Vec<(u64, u64)>>,
    }

    impl SpaceMirror for RecordingMirror {
        fn dht_insert(&self, var: u64, version: u64, entry: &LocationEntry) {
            self.inserts.lock().unwrap().push((var, version, *entry));
        }
        fn get_done(&self, var: u64, version: u64) {
            self.dones.lock().unwrap().push((var, version));
        }
        fn evict(&self, var: u64, version: u64) {
            self.evicts.lock().unwrap().push((var, version));
        }
    }

    fn mirrored_space(mirror: Arc<RecordingMirror>) -> Arc<CodsSpace> {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        CodsSpace::with_mirror(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
            mirror,
        )
    }

    #[test]
    fn mirror_sees_local_changes_but_not_remote_applies() {
        let mirror = Arc::new(RecordingMirror::default());
        let s = mirrored_space(Arc::clone(&mirror));
        produce(&s, "temp", 0);
        let vid = var_id("temp");
        assert_eq!(mirror.inserts.lock().unwrap().len(), 4);
        let q = BoundingBox::from_sizes(&[8, 8]);
        s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert_eq!(*mirror.dones.lock().unwrap(), vec![(vid, 0)]);
        s.evict_version("temp", 0);
        assert_eq!(*mirror.evicts.lock().unwrap(), vec![(vid, 0)]);
        // Remote applies replay the same changes without re-mirroring.
        let entry = mirror.inserts.lock().unwrap()[0].2;
        s.apply_remote_dht_insert(vid, 1, entry);
        s.apply_remote_get_done(vid, 1);
        s.apply_remote_evict(vid, 1);
        assert_eq!(mirror.inserts.lock().unwrap().len(), 4);
        assert_eq!(mirror.dones.lock().unwrap().len(), 1);
        assert_eq!(mirror.evicts.lock().unwrap().len(), 1);
        // And nothing above accounted any traffic beyond the local run's.
        assert_eq!(s.dht().latest_version(vid), None);
    }

    #[test]
    fn remote_dht_insert_is_queryable_without_accounting() {
        let s = space();
        let vid = var_id("remote_var");
        let before = s.dart().ledger().snapshot();
        s.apply_remote_dht_insert(
            vid,
            3,
            LocationEntry {
                bbox: BoundingBox::from_sizes(&[4, 4]),
                owner: 2,
                piece: 0,
            },
        );
        assert_eq!(s.dht().latest_version(vid), Some(3));
        assert_eq!(s.dart().ledger().snapshot(), before);
    }

    #[test]
    fn remote_get_done_releases_waiting_producer() {
        let s = space();
        s.set_expected_gets("vel", 2);
        let vid = var_id("vel");
        s.apply_remote_get_done(vid, 0);
        assert!(!s.wait_version_consumed("vel", 0, Duration::from_millis(20)));
        s.apply_remote_get_done(vid, 0);
        assert!(s.wait_version_consumed("vel", 0, Duration::from_millis(20)));
    }

    #[test]
    fn put_get_seq_roundtrip_full_domain() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (data, report) = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert_eq!(data.len(), 64);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
        assert_eq!(report.ops, 4);
        assert!(report.dht_cores_queried > 0);
        assert!(!report.cache_hit);
    }

    #[test]
    fn get_seq_sub_region_crossing_owners() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let (data, report) = s.get_seq(0, 2, "temp", 0, &q).unwrap();
        assert_eq!(report.ops, 4); // crosses all four quadrants
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn second_get_hits_schedule_cache() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[0, 0], &[3, 3]);
        let (_, r1) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        let (_, r2) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit);
        assert_eq!(r2.dht_cores_queried, 0);
    }

    #[test]
    fn cached_schedule_replays_across_versions() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[0, 0], &[7, 7]);
        let _ = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        produce(&s, "temp", 1);
        let (data, r) = s.get_seq(1, 2, "temp", 1, &q).unwrap();
        assert!(r.cache_hit);
        assert_eq!(data.len(), 64);
    }

    #[test]
    fn locality_accounting_matches_placement() {
        let s = space();
        produce(&s, "temp", 0);
        // Client 1 is on node 0 with clients {0, 1}; producers 0,1 are
        // co-located with it, producers 2,3 are not.
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (_, report) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        // Each producer piece is 16 cells = 128 bytes.
        assert_eq!(report.shm_bytes, 2 * 128);
        assert_eq!(report.net_bytes, 2 * 128);
        let snap = s.dart().ledger().snapshot();
        assert_eq!(snap.shm_bytes(TrafficClass::InterApp), 256);
        assert_eq!(snap.network_bytes(TrafficClass::InterApp), 256);
    }

    #[test]
    fn get_cont_without_dht() {
        let s = space();
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        let clients: Vec<ClientId> = (0..4).collect();
        for r in 0..4u64 {
            let b = dec.blocked_box(r).unwrap();
            let data = layout::fill_with(&b, tagfn);
            s.put_cont(clients[r as usize], 1, "vel", 7, 0, &b, &data)
                .unwrap();
        }
        let q = BoundingBox::new(&[1, 1], &[6, 6]);
        let (data, report) = s.get_cont(2, 2, "vel", 7, &q, &dec, &clients).unwrap();
        assert_eq!(report.dht_cores_queried, 0);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
        // No DHT traffic at all for the concurrent path.
        assert_eq!(
            s.dart().ledger().snapshot().total_bytes(TrafficClass::Dht),
            0
        );
    }

    #[test]
    fn get_cont_rendezvous_producer_late() {
        let s = space();
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[1, 1]),
            Distribution::Blocked,
        );
        let s2 = Arc::clone(&s);
        let consumer = std::thread::spawn(move || {
            let q = BoundingBox::from_sizes(&[8, 8]);
            s2.get_cont(1, 2, "late", 0, &q, &dec, &[0]).unwrap().0
        });
        std::thread::sleep(Duration::from_millis(30));
        let b = BoundingBox::from_sizes(&[8, 8]);
        let data = layout::fill_with(&b, tagfn);
        s.put_cont(0, 1, "late", 0, 0, &b, &data).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn version_isolation() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[0, 0], &[1, 1]);
        // Version 5 was never put: schedule comes up empty -> incomplete.
        let err = s.get_seq(0, 2, "x", 5, &q).unwrap_err();
        assert!(matches!(err, CodsError::IncompleteCover { .. }));
    }

    #[test]
    fn timeout_when_piece_missing() {
        // Build an uncached space with tiny timeout; DHT knows about a
        // piece that was never registered (e.g. producer died).
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(1, 2), 2));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_millis(20),
                ..Default::default()
            },
        );
        let b = BoundingBox::from_sizes(&[4, 4]);
        s.dht().insert(
            var_id("ghost"),
            0,
            LocationEntry {
                bbox: b,
                owner: 1,
                piece: 0,
            },
        );
        let err = s.get_seq(0, 1, "ghost", 0, &b).unwrap_err();
        assert!(matches!(err, CodsError::Timeout { .. }));
    }

    #[test]
    fn size_mismatch_rejected() {
        let s = space();
        let b = BoundingBox::from_sizes(&[4, 4]);
        let err = s.put_seq(0, 1, "bad", 0, 0, &b, &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            CodsError::SizeMismatch {
                expected: 16,
                got: 2
            }
        );
    }

    #[test]
    fn evict_version_removes_data() {
        let s = space();
        produce(&s, "temp", 0);
        s.evict_version("temp", 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        // Schedules were cached before eviction? No get happened, so the
        // DHT is consulted and finds nothing.
        let err = s.get_seq(0, 2, "temp", 0, &q).unwrap_err();
        assert!(matches!(err, CodsError::IncompleteCover { .. }));
    }

    #[test]
    fn consumption_tracking_counts_gets() {
        let s = space();
        produce(&s, "temp", 0);
        s.set_expected_gets("temp", 2);
        assert_eq!(s.gets_completed("temp", 0), 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        let _ = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        assert_eq!(s.gets_completed("temp", 0), 1);
        assert!(!s.wait_version_consumed("temp", 0, Duration::from_millis(10)));
        let _ = s.get_seq(2, 2, "temp", 0, &q).unwrap();
        assert!(s.wait_version_consumed("temp", 0, Duration::from_millis(10)));
    }

    #[test]
    fn wait_version_consumed_without_expectation_is_false() {
        let s = space();
        assert!(!s.wait_version_consumed("nobody", 0, Duration::from_millis(5)));
    }

    #[test]
    fn wait_version_consumed_unblocks_across_threads() {
        let s = space();
        produce(&s, "temp", 0);
        s.set_expected_gets("temp", 1);
        let s2 = Arc::clone(&s);
        let waiter =
            std::thread::spawn(move || s2.wait_version_consumed("temp", 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        let q = BoundingBox::from_sizes(&[8, 8]);
        let _ = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn latest_version_discovery() {
        let s = space();
        assert_eq!(s.latest_version("temp"), None);
        produce(&s, "temp", 0);
        assert_eq!(s.latest_version("temp"), Some(0));
        produce(&s, "temp", 5);
        assert_eq!(s.latest_version("temp"), Some(5));
        // In-order eviction drops every version up to the given one.
        s.evict_version("temp", 5);
        assert_eq!(s.latest_version("temp"), None);
    }

    #[test]
    fn staging_accounting_tracks_puts_and_evictions() {
        let s = space();
        // Clients 0,1 on node 0; 2,3 on node 1. Each piece = 16 cells.
        produce(&s, "temp", 0);
        assert_eq!(s.staging_bytes(0), 2 * 16 * 8);
        assert_eq!(s.staging_bytes(1), 2 * 16 * 8);
        assert_eq!(s.staging_peak(), 2 * 16 * 8);
        s.evict_version("temp", 0);
        assert_eq!(s.staging_bytes(0), 0);
        assert_eq!(s.staging_bytes(1), 0);
        // Peak is sticky.
        assert_eq!(s.staging_peak(), 2 * 16 * 8);
    }

    #[test]
    fn staging_limit_rejects_oversubscription() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(1, 2), 2));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                staging_limit_per_node: Some(200),
                ..Default::default()
            },
        );
        let b = BoundingBox::from_sizes(&[4, 4]); // 128 bytes
        let data = layout::fill_with(&b, tagfn);
        s.put_seq(0, 1, "x", 0, 0, &b, &data).unwrap();
        let err = s.put_seq(1, 1, "x", 0, 1, &b, &data).unwrap_err();
        assert!(matches!(
            err,
            CodsError::StagingFull {
                node: 0,
                used: 128,
                limit: 200
            }
        ));
        // Evicting frees capacity for a retry.
        s.evict_version("x", 0);
        s.put_seq(1, 1, "x", 1, 1, &b, &data).unwrap();
    }

    #[test]
    fn exact_cover_single_piece_is_zero_copy() {
        let s = space();
        produce(&s, "temp", 0);
        // Query exactly one producer's piece: the result must be a view
        // of the staged buffer, not a copy.
        let piece = BoundingBox::from_sizes(&[4, 4]);
        let (data, report) = s.get_seq(1, 2, "temp", 0, &piece).unwrap();
        assert_eq!(report.ops, 1);
        assert!(data.is_view(), "single exact piece should not be copied");
        for p in piece.iter_points() {
            assert_eq!(data[layout::linear_index(&piece, &p[..2])], tagfn(&p[..2]));
        }
        // A multi-piece query assembles into an owned buffer.
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (data, report) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        assert!(report.ops > 1);
        assert!(!data.is_view());
        // A sub-piece query is a single op but not an exact cover.
        let sub = BoundingBox::new(&[1, 1], &[2, 2]);
        let (data, report) = s.get_seq(1, 2, "temp", 0, &sub).unwrap();
        assert_eq!(report.ops, 1);
        assert!(!data.is_view());
        for p in sub.iter_points() {
            assert_eq!(data[layout::linear_index(&sub, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn sequential_pulls_knob_matches_overlapped_results() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                sequential_pulls: true,
                ..Default::default()
            },
        );
        produce(&s, "temp", 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (data, report) = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert_eq!(report.ops, 4);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn multi_piece_producer() {
        // One producer holding two disjoint pieces (cyclic-style put).
        let s = space();
        let b1 = BoundingBox::new(&[0, 0], &[3, 7]);
        let b2 = BoundingBox::new(&[4, 0], &[7, 7]);
        s.put_seq(0, 1, "mp", 0, 0, &b1, &layout::fill_with(&b1, tagfn))
            .unwrap();
        s.put_seq(0, 1, "mp", 0, 1, &b2, &layout::fill_with(&b2, tagfn))
            .unwrap();
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let (data, report) = s.get_seq(3, 2, "mp", 0, &q).unwrap();
        assert_eq!(report.ops, 2);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn epoch_salt_is_identity_at_zero_and_diffuse_otherwise() {
        assert_eq!(epoch_salt(0), 0);
        let salts: Vec<u64> = (1..64u64).map(epoch_salt).collect();
        for (i, &a) in salts.iter().enumerate() {
            assert_ne!(a, 0);
            for &b in &salts[i + 1..] {
                assert_ne!(a, b, "epoch salts must be distinct");
            }
        }
    }

    #[test]
    fn key_epoch_zero_keys_equal_raw_var_ids() {
        let s = space();
        assert_eq!(s.key_of("temperature"), var_id("temperature"));
    }

    /// Two epoched spaces over ONE runtime (one registry, one ledger):
    /// identical variable names and versions stay fully independent —
    /// each run's get sees exactly its own producer's data.
    #[test]
    fn distinct_epochs_isolate_identical_var_names_on_a_shared_runtime() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let mk = |epoch: u64| {
            CodsSpace::new(
                Arc::clone(&dart),
                Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]),
                CodsConfig {
                    get_timeout: Duration::from_secs(2),
                    key_epoch: epoch,
                    ..Default::default()
                },
            )
        };
        let (a, b) = (mk(1), mk(2));
        assert_ne!(a.key_of("temp"), b.key_of("temp"));
        let bbox = BoundingBox::from_sizes(&[4, 4]);
        let fill_a = layout::fill_with(&bbox, |p| tagfn(p) + 1000.0);
        let fill_b = layout::fill_with(&bbox, |p| tagfn(p) + 2000.0);
        a.put_seq(0, 1, "temp", 0, 0, &bbox, &fill_a).unwrap();
        b.put_seq(0, 1, "temp", 0, 0, &bbox, &fill_b).unwrap();
        // Same name, same version, same query — each space resolves to
        // its own run's bytes.
        let (da, _) = a.get_seq(3, 2, "temp", 0, &bbox).unwrap();
        let (db, _) = b.get_seq(3, 2, "temp", 0, &bbox).unwrap();
        assert_eq!(&da[..], &fill_a[..]);
        assert_eq!(&db[..], &fill_b[..]);
        // Eviction in one epoch must not disturb the other.
        a.evict_version("temp", 0);
        assert_eq!(a.latest_version("temp"), None);
        assert_eq!(b.latest_version("temp"), Some(0));
        let (db2, _) = b.get_seq(1, 2, "temp", 0, &bbox).unwrap();
        assert_eq!(&db2[..], &fill_b[..]);
    }

    // ----- standing queries -------------------------------------------

    use insitu_fabric::{FaultHooks, FaultInjector};
    use insitu_sub::DEFAULT_QUEUE_CAP;

    fn take_data(s: &CodsSpace, h: &SubHandle, version: u64) -> Vec<f64> {
        match s.sub_take(h, version, Duration::from_secs(2)) {
            TakeResult::Data(d) => d,
            other => panic!("version {version}: expected data, got {other:?}"),
        }
    }

    /// The acceptance anchor at unit scale: with `every_k = 1` and a
    /// full-domain region, every pushed version is byte-identical to the
    /// same version pulled with `get`.
    #[test]
    fn pushed_versions_are_byte_identical_to_gets() {
        let s = space();
        let q = BoundingBox::from_sizes(&[8, 8]);
        let handle = s.subscribe(3, 2, "temp", &q, 1, DEFAULT_QUEUE_CAP);
        for v in 0..3 {
            produce(&s, "temp", v);
        }
        for v in 0..3 {
            let pushed = take_data(&s, &handle, v);
            let (pulled, _) = s.get_seq(3, 2, "temp", v, &q).unwrap();
            assert_eq!(&encode_f64s(&pushed)[..], &encode_f64s(&pulled)[..]);
        }
        assert_eq!(handle.completed(), 3);
        assert_eq!(handle.lagged(), 0);
    }

    #[test]
    fn stride_and_region_filter_pushes() {
        let s = space();
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let handle = s.subscribe(3, 2, "temp", &q, 2, 4);
        for v in 0..4 {
            produce(&s, "temp", v);
        }
        // On-stride versions assemble the sub-region from the four
        // overlapping producer pieces.
        for v in [0u64, 2] {
            let data = take_data(&s, &handle, v);
            for p in q.iter_points() {
                assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
            }
        }
        // Off-stride versions are never pushed.
        assert_eq!(
            s.sub_take(&handle, 1, Duration::from_millis(20)),
            TakeResult::TimedOut
        );
        assert_eq!(handle.completed(), 2);
    }

    /// Mirrors `chaos_pulls`: version completion order must not confuse
    /// a subscriber taking versions in its own order.
    #[test]
    fn out_of_order_puts_deliver_in_any_take_order() {
        let s = space();
        let q = BoundingBox::from_sizes(&[8, 8]);
        let handle = s.subscribe(1, 2, "temp", &q, 1, 8);
        for v in [2u64, 0, 1] {
            produce(&s, "temp", v);
        }
        for v in [1u64, 0, 2] {
            let data = take_data(&s, &handle, v);
            assert_eq!(data.len(), 64);
        }
    }

    #[test]
    fn slow_subscriber_lags_oldest_and_heals_with_get() {
        let s = space();
        let q = BoundingBox::from_sizes(&[8, 8]);
        let handle = s.subscribe(3, 2, "temp", &q, 1, 1);
        for v in 0..3 {
            produce(&s, "temp", v);
        }
        // Queue capacity 1: versions 0 and 1 were evicted oldest-first,
        // and the loss is reported, never silently skipped.
        assert_eq!(
            s.sub_take(&handle, 0, Duration::from_millis(10)),
            TakeResult::Lagged
        );
        assert_eq!(handle.lagged(), 2);
        // The gap heals with an ordinary get of the lost version.
        let (healed, _) = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        for p in q.iter_points() {
            assert_eq!(healed[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
        assert!(matches!(
            s.sub_take(&handle, 2, Duration::from_millis(10)),
            TakeResult::Data(_)
        ));
    }

    #[test]
    fn unsubscribe_closes_sink_and_stops_pushes() {
        let s = space();
        let q = BoundingBox::from_sizes(&[8, 8]);
        let handle = s.subscribe(3, 2, "temp", &q, 1, 4);
        produce(&s, "temp", 0);
        assert!(s.unsubscribe(&handle));
        assert!(!s.unsubscribe(&handle));
        // Already-assembled versions stay readable; later ones see the
        // cancellation instead of hanging.
        assert!(matches!(
            s.sub_take(&handle, 0, Duration::from_millis(10)),
            TakeResult::Data(_)
        ));
        produce(&s, "temp", 1);
        assert_eq!(
            s.sub_take(&handle, 1, Duration::from_millis(10)),
            TakeResult::Closed
        );
    }

    /// A chaos-dropped fragment shows up as a deadline miss on exactly
    /// the affected version — never a partial or wrong delivery — and
    /// the subscriber resyncs with an ordinary get.
    #[test]
    fn dropped_push_times_out_and_resync_heals() {
        struct DropOne;
        impl FaultHooks for DropOne {
            fn on_sub_push(
                &self,
                _var: u64,
                version: u64,
                _subscriber: ClientId,
                piece: u64,
            ) -> FaultAction {
                if version == 1 && piece == 3 {
                    FaultAction::Drop
                } else {
                    FaultAction::Proceed
                }
            }
        }
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::with_injector(
            placement,
            Arc::new(TransferLedger::new()),
            Recorder::disabled(),
            FaultInjector::new(Arc::new(DropOne)),
        );
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        );
        let q = BoundingBox::from_sizes(&[8, 8]);
        let handle = s.subscribe(3, 2, "temp", &q, 1, 4);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        for v in 0..2 {
            for r in 0..4u64 {
                let b = dec.blocked_box(r).unwrap();
                let data = layout::fill_with(&b, tagfn);
                s.put_seq(r as ClientId, 1, "temp", v, r, &b, &data)
                    .unwrap();
            }
        }
        assert!(matches!(
            s.sub_take(&handle, 0, Duration::from_secs(2)),
            TakeResult::Data(_)
        ));
        assert_eq!(
            s.sub_take(&handle, 1, Duration::from_millis(30)),
            TakeResult::TimedOut
        );
        let (healed, _) = s.get_seq(3, 2, "temp", 1, &q).unwrap();
        for p in q.iter_points() {
            assert_eq!(healed[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn sub_expected_gets_gate_only_on_stride_versions() {
        let s = space();
        s.add_sub_expected_gets("vel", 2, 1);
        let vid = var_id("vel");
        // Off-stride versions have no expected consumers: released at
        // once instead of timing out the producer.
        assert!(s.wait_version_consumed("vel", 1, Duration::from_millis(5)));
        // On-stride versions wait for the subscriber's verify/resync get.
        assert!(!s.wait_version_consumed("vel", 0, Duration::from_millis(5)));
        s.apply_remote_get_done(vid, 0);
        assert!(s.wait_version_consumed("vel", 0, Duration::from_millis(5)));
        // Base expectations stack on top of subscription expectations.
        s.set_expected_gets("vel", 1);
        assert!(!s.wait_version_consumed("vel", 2, Duration::from_millis(5)));
        s.apply_remote_get_done(vid, 2);
        assert!(!s.wait_version_consumed("vel", 2, Duration::from_millis(5)));
        s.apply_remote_get_done(vid, 2);
        assert!(s.wait_version_consumed("vel", 2, Duration::from_millis(5)));
    }

    #[derive(Default)]
    struct SubRecordingMirror {
        opens: Mutex<Vec<SubSpec>>,
        cancels: Mutex<Vec<SubId>>,
        #[allow(clippy::type_complexity)]
        pushes: Mutex<Vec<(SubId, u64, u64, ClientId, ClientId, BoundingBox, Vec<u8>)>>,
        lags: Mutex<Vec<(SubId, u64, ClientId)>>,
    }

    impl SpaceMirror for SubRecordingMirror {
        fn dht_insert(&self, _var: u64, _version: u64, _entry: &LocationEntry) {}
        fn get_done(&self, _var: u64, _version: u64) {}
        fn evict(&self, _var: u64, _version: u64) {}
        fn sub_open(&self, spec: &SubSpec) {
            self.opens.lock().unwrap().push(spec.clone());
        }
        fn sub_cancel(&self, id: SubId) {
            self.cancels.lock().unwrap().push(id);
        }
        fn sub_push(
            &self,
            id: SubId,
            var: u64,
            version: u64,
            src: ClientId,
            subscriber: ClientId,
            frag: &BoundingBox,
            data: &[u8],
        ) {
            self.pushes.lock().unwrap().push((
                id,
                var,
                version,
                src,
                subscriber,
                *frag,
                data.to_vec(),
            ));
        }
        fn sub_lagged(&self, id: SubId, version: u64, subscriber: ClientId) {
            self.lags.lock().unwrap().push((id, version, subscriber));
        }
    }

    /// Producer process with a sink-less subscription replica: every
    /// fragment travels through the mirror (accounted producer-side),
    /// and the subscriber process's remote apply reassembles the exact
    /// bytes without accounting anything again.
    #[test]
    fn remote_subscriber_pushes_travel_via_mirror_and_apply_delivers() {
        let mirror = Arc::new(SubRecordingMirror::default());
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        let prod = CodsSpace::with_mirror(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
            Arc::clone(&mirror) as Arc<dyn SpaceMirror>,
        );
        let q = BoundingBox::from_sizes(&[8, 8]);
        let spec = SubSpec {
            vid: prod.key_of("temp"),
            region: q,
            every_k: 1,
            subscriber: 3,
        };
        prod.apply_remote_subscribe(&spec);
        produce(&prod, "temp", 0);
        let pushes = mirror.pushes.lock().unwrap().clone();
        assert_eq!(pushes.len(), 4);
        // Producer-side accounting, once per fragment: subscriber 3 is
        // on node 1, producers 0,1 are on node 0 (network) and 2,3 on
        // node 1 (shm); each fragment is 16 cells = 128 bytes.
        let snap = prod.dart().ledger().snapshot();
        assert_eq!(snap.shm_bytes(TrafficClass::InterApp), 256);
        assert_eq!(snap.network_bytes(TrafficClass::InterApp), 256);
        // Subscriber process: local sink, remote applies feed it.
        let sub = space();
        let handle = sub.subscribe_local(3, 2, "temp", &q, 1, 4);
        let before = sub.dart().ledger().snapshot();
        for (id, _var, version, _src, _subscriber, frag, data) in &pushes {
            assert!(sub.apply_remote_sub_push(*id, *version, frag, data));
        }
        assert_eq!(sub.dart().ledger().snapshot(), before);
        let got = take_data(&sub, &handle, 0);
        for p in q.iter_points() {
            assert_eq!(got[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
        // Cancelling on the subscriber side broadcasts through its
        // mirror path only when one is attached; the producer replica
        // is torn down by the remote apply.
        prod.apply_remote_sub_cancel(spec.id());
        produce(&prod, "temp", 1);
        assert_eq!(mirror.pushes.lock().unwrap().len(), 4);
    }

    #[test]
    fn hostile_remote_sub_frames_are_rejected() {
        let s = space();
        // A zero stride would poison the registry's matching arithmetic:
        // ignored, not panicked.
        s.apply_remote_subscribe(&SubSpec {
            vid: 1,
            region: BoundingBox::from_sizes(&[2]),
            every_k: 0,
            subscriber: 0,
        });
        assert_eq!(s.dart().subs().active(), 0);
        // Pushes for unknown subscriptions or with ragged payloads are
        // dropped.
        let frag = BoundingBox::from_sizes(&[2]);
        assert!(!s.apply_remote_sub_push(99, 0, &frag, &[0u8; 16]));
        let handle = s.subscribe_local(0, 1, "x", &frag, 1, 4);
        assert!(!s.apply_remote_sub_push(handle.id, 0, &frag, &[0u8; 9]));
        assert!(s.apply_remote_sub_push(handle.id, 0, &frag, &encode_f64s(&[1.0, 2.0])));
    }

    /// The flight trace ties the fan-out together: each `SubPush` parents
    /// to the producing `Put`, and the subscriber's `SubDeliver` carries
    /// the subscription id in `piece`.
    #[test]
    fn flight_records_put_push_deliver_chain() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::with_flight(
            placement,
            Arc::new(TransferLedger::new()),
            Recorder::disabled(),
            FaultInjector::none(),
            insitu_obs::FlightRecorder::enabled(),
        );
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        );
        let q = BoundingBox::from_sizes(&[8, 8]);
        let handle = s.subscribe(3, 2, "temp", &q, 1, 4);
        produce(&s, "temp", 0);
        let _ = take_data(&s, &handle, 0);
        let events = s.dart().flight().snapshot();
        let puts: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Put { .. }))
            .collect();
        let pushes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SubPush))
            .collect();
        let delivers: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SubDeliver))
            .collect();
        assert_eq!(puts.len(), 4);
        assert_eq!(pushes.len(), 4);
        assert_eq!(delivers.len(), 1);
        for push in &pushes {
            let parent = push.parent.expect("push must parent to its put");
            assert!(puts.iter().any(|p| p.seq == parent));
            assert_eq!(push.piece, handle.id);
            assert_eq!(push.dst, Some(3));
        }
        assert_eq!(delivers[0].piece, handle.id);
        assert_eq!(delivers[0].bytes, 64 * ELEM_BYTES as u64);
    }
}
