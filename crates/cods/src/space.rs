//! The shared-space programming abstraction: `put`/`get` operators.
//!
//! Mirrors Table I of the paper:
//!
//! | paper            | here                       | coupling    |
//! |------------------|----------------------------|-------------|
//! | `cods_put_cont()`| [`CodsSpace::put_cont`]    | concurrent  |
//! | `cods_get_cont()`| [`CodsSpace::get_cont`]    | concurrent  |
//! | `cods_put_seq()` | [`CodsSpace::put_seq`]     | sequential  |
//! | `cods_get_seq()` | [`CodsSpace::get_seq`]     | sequential  |
//!
//! All operators are one-sided and asynchronous: a `put` registers a
//! remotely readable buffer and returns; a `get` computes (or replays) a
//! communication schedule and pulls every piece directly from where it
//! lives — shared memory when producer and consumer share a node, the
//! (simulated) network otherwise. The sequential variants additionally
//! index the data in the DHT so later applications can discover it.

use crate::codec::{bytes_of_f64s_mut, encode_f64s, f64s_of_bytes, FieldData, ELEM_BYTES};
use crate::dht::{var_id, Dht, LocationEntry, DHT_RECORD_BYTES};
use crate::schedule::{
    schedule_from_decomposition, schedule_from_entries, CommSchedule, ScheduleCache,
};
use insitu_dart::{BufKey, BufferHandle, DartRuntime};
use insitu_domain::layout::{copy_region, copy_region_bytes};
use insitu_domain::{BoundingBox, Decomposition};
use insitu_fabric::{ClientId, Locality, TrafficClass};
use insitu_obs::{Event, EventKind, LinkClass};
use insitu_telemetry::{Counter, Gauge, Recorder};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Errors surfaced by the space operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodsError {
    /// A required source buffer never appeared (producer missing or late).
    Timeout {
        /// Variable name hash.
        var: u64,
        /// Version requested.
        version: u64,
        /// The piece region that could not be fetched.
        region: BoundingBox,
        /// Client that owns (and failed to serve) the piece — names the
        /// faulty participant in reproducers.
        owner: ClientId,
    },
    /// `put` data length does not match the declared box.
    SizeMismatch {
        /// Cells in the declared box.
        expected: u128,
        /// Elements supplied.
        got: usize,
    },
    /// The available pieces do not cover the queried region.
    IncompleteCover {
        /// Cells of the query not covered by any stored piece.
        missing_cells: u128,
    },
    /// Staging this piece would exceed the node's in-memory capacity.
    StagingFull {
        /// Node whose staging memory is exhausted.
        node: u32,
        /// Bytes currently staged on that node.
        used: u64,
        /// Configured per-node limit.
        limit: u64,
    },
}

impl std::fmt::Display for CodsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodsError::Timeout {
                var,
                version,
                region,
                owner,
            } => {
                write!(
                    f,
                    "timed out waiting for var {var:#x} v{version} piece {region:?} from client {owner}"
                )
            }
            CodsError::SizeMismatch { expected, got } => {
                write!(f, "data length {got} does not match box volume {expected}")
            }
            CodsError::IncompleteCover { missing_cells } => {
                write!(f, "query not fully covered: {missing_cells} cells missing")
            }
            CodsError::StagingFull { node, used, limit } => {
                write!(f, "node {node} staging full: {used} of {limit} bytes used")
            }
        }
    }
}

impl std::error::Error for CodsError {}

/// Tuning knobs of the space.
#[derive(Clone, Copy, Debug)]
pub struct CodsConfig {
    /// How long a `get` waits for a missing producer piece.
    pub get_timeout: Duration,
    /// Whether `get` operators use the schedule cache.
    pub cache_schedules: bool,
    /// Per-node in-memory staging capacity (16 GB per Jaguar XT5 node).
    /// `None` disables the check.
    pub staging_limit_per_node: Option<u64>,
    /// Issue schedule ops one at a time instead of overlapping them
    /// (the pre-overlap behavior; kept as an A/B knob for benchmarks).
    pub sequential_pulls: bool,
    /// Run epoch salting every variable-name key (DHT entries, buffer
    /// keys, version bookkeeping), so concurrent service runs sharing
    /// one process — or one pool of node processes — never collide even
    /// when they use identical variable names and versions. `0` means
    /// no salting: keys equal the raw `var_id`, which keeps standalone
    /// runs bit-for-bit identical to the pre-epoch behavior.
    pub key_epoch: u64,
}

impl Default for CodsConfig {
    fn default() -> Self {
        CodsConfig {
            get_timeout: Duration::from_secs(30),
            cache_schedules: true,
            staging_limit_per_node: None,
            sequential_pulls: false,
            key_epoch: 0,
        }
    }
}

/// The `var_id` salt for a run epoch: 0 stays 0 (identity — standalone
/// runs keep raw ids), any other epoch is diffused through a SplitMix64
/// finalizer so consecutive run ids land in unrelated key regions.
pub fn epoch_salt(epoch: u64) -> u64 {
    if epoch == 0 {
        return 0;
    }
    let mut z = epoch.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one `get` did — consumed by tests, the ledger cross-checks and
/// the retrieve-time model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GetReport {
    /// DHT cores consulted (0 on a schedule-cache hit or concurrent get).
    pub dht_cores_queried: u32,
    /// Transfers executed.
    pub ops: u32,
    /// Bytes pulled through shared memory.
    pub shm_bytes: u64,
    /// Bytes pulled over the network.
    pub net_bytes: u64,
    /// Whether the schedule came from the cache.
    pub cache_hit: bool,
}

/// The co-located data space.
///
/// Telemetry flows through the DART runtime's [`Recorder`]: put/get
/// counts, DHT query spans, schedule-cache hits/misses and the staged
/// bytes high-water mark are all published when the runtime was built
/// with a live recorder.
pub struct CodsSpace {
    dart: Arc<DartRuntime>,
    dht: Dht,
    cfg: CodsConfig,
    cache: ScheduleCache,
    consumption: Mutex<ConsumptionState>,
    consumed_cv: Condvar,
    staging: Mutex<std::collections::HashMap<u32, u64>>,
    staging_peak: std::sync::atomic::AtomicU64,
    mirror: Option<Arc<dyn SpaceMirror>>,
    recorder: Recorder,
    put_count: Counter,
    get_count: Counter,
    evict_count: Counter,
    /// Gets answered zero-copy: one aligned piece covered the whole
    /// query, so the result is a `FieldData::View` of the staged (or
    /// shm-mapped) buffer rather than an assembled copy.
    view_count: Counter,
    staging_gauge: Gauge,
}

/// Version-consumption bookkeeping for iterative coupling: producers may
/// only reclaim a version's buffers once every expected `get` of that
/// version has completed.
#[derive(Default)]
struct ConsumptionState {
    /// Expected number of completed gets per variable per version.
    expected: std::collections::HashMap<u64, u64>,
    /// Completed gets per `(var, version)`.
    done: std::collections::HashMap<(u64, u64), u64>,
}

fn buf_key(var: u64, version: u64, owner: ClientId, piece: u64) -> BufKey {
    BufKey {
        name: var,
        version,
        piece: ((owner as u64) << 32) | piece,
    }
}

/// Replication hooks for distributed runs.
///
/// A single-process space holds the only copy of the DHT and the
/// consumption/eviction bookkeeping. When execution clients are spread
/// over several processes, each process holds a full replica and the
/// wire transport implements this trait to propagate local state changes
/// to the other replicas. The receiving side applies them with the
/// `apply_remote_*` methods, which update the replica **without**
/// re-mirroring and without any ledger accounting — the originating
/// process already accounted the logical traffic, so merged ledgers stay
/// byte-identical to a single-process run.
pub trait SpaceMirror: Send + Sync {
    /// A piece of `(var, version)` was indexed in the local DHT replica.
    fn dht_insert(&self, var: u64, version: u64, entry: &LocationEntry);
    /// A `get` of `(var, version)` completed locally.
    fn get_done(&self, var: u64, version: u64);
    /// Versions of `var` up to and including `version` were evicted
    /// locally.
    fn evict(&self, var: u64, version: u64);
}

impl CodsSpace {
    /// Build a space over an existing DART runtime and DHT. Telemetry is
    /// inherited from the runtime's recorder.
    pub fn new(dart: Arc<DartRuntime>, dht: Dht, cfg: CodsConfig) -> Arc<Self> {
        Self::build(dart, dht, cfg, None)
    }

    /// The variable key this space indexes `var` under: the raw
    /// `var_id` XOR-salted by the run epoch. With `key_epoch == 0` this
    /// is exactly `var_id(var)`, so standalone runs are unchanged;
    /// distinct epochs map identical variable names into disjoint key
    /// regions of a shared registry/DHT.
    pub fn key_of(&self, var: &str) -> u64 {
        var_id(var) ^ epoch_salt(self.cfg.key_epoch)
    }

    /// Build a space whose DHT/consumption/eviction state changes are
    /// mirrored to remote replicas through `mirror` (a distributed run's
    /// wire transport).
    pub fn with_mirror(
        dart: Arc<DartRuntime>,
        dht: Dht,
        cfg: CodsConfig,
        mirror: Arc<dyn SpaceMirror>,
    ) -> Arc<Self> {
        Self::build(dart, dht, cfg, Some(mirror))
    }

    fn build(
        dart: Arc<DartRuntime>,
        dht: Dht,
        cfg: CodsConfig,
        mirror: Option<Arc<dyn SpaceMirror>>,
    ) -> Arc<Self> {
        let recorder = dart.recorder().clone();
        Arc::new(CodsSpace {
            dht,
            cfg,
            cache: ScheduleCache::with_recorder(&recorder),
            consumption: Mutex::new(ConsumptionState::default()),
            consumed_cv: Condvar::new(),
            staging: Mutex::new(std::collections::HashMap::new()),
            staging_peak: std::sync::atomic::AtomicU64::new(0),
            mirror,
            put_count: recorder.counter("cods.put"),
            get_count: recorder.counter("cods.get"),
            evict_count: recorder.counter("cods.evictions"),
            view_count: recorder.counter("cods.view_hits"),
            staging_gauge: recorder.gauge("cods.staging_bytes"),
            recorder,
            dart,
        })
    }

    /// Declare how many `get` completions a version of `var` must see
    /// before [`Self::wait_version_consumed`] releases it (one per
    /// consumer piece retrieval). Enables producers of iterative
    /// couplings to reclaim old versions safely.
    pub fn set_expected_gets(&self, var: &str, gets: u64) {
        self.consumption
            .lock()
            .unwrap()
            .expected
            .insert(self.key_of(var), gets);
    }

    /// Completed gets recorded for `(var, version)`.
    pub fn gets_completed(&self, var: &str, version: u64) -> u64 {
        self.consumption
            .lock()
            .unwrap()
            .done
            .get(&(self.key_of(var), version))
            .copied()
            .unwrap_or(0)
    }

    /// Block until every expected `get` of `(var, version)` has completed,
    /// up to `timeout`. Returns `false` on timeout or if no expectation
    /// was declared.
    pub fn wait_version_consumed(&self, var: &str, version: u64, timeout: Duration) -> bool {
        let vid = self.key_of(var);
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.consumption.lock().unwrap();
        let Some(&expected) = state.expected.get(&vid) else {
            return false;
        };
        loop {
            if state.done.get(&(vid, version)).copied().unwrap_or(0) >= expected {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, res) = self
                .consumed_cv
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
            if res.timed_out() {
                return state.done.get(&(vid, version)).copied().unwrap_or(0) >= expected;
            }
        }
    }

    fn note_get_complete(&self, vid: u64, version: u64) {
        self.bump_get_done(vid, version);
        if let Some(m) = &self.mirror {
            m.get_done(vid, version);
        }
    }

    fn bump_get_done(&self, vid: u64, version: u64) {
        let mut state = self.consumption.lock().unwrap();
        *state.done.entry((vid, version)).or_insert(0) += 1;
        drop(state);
        self.consumed_cv.notify_all();
    }

    /// Apply a remote replica's completed `get` (wire reader entry point).
    /// Bumps the consumption count without re-mirroring.
    pub fn apply_remote_get_done(&self, vid: u64, version: u64) {
        self.bump_get_done(vid, version);
    }

    /// Apply a remote replica's DHT insert (wire reader entry point).
    /// Indexes the location without accounting — the producer's process
    /// already recorded the DHT traffic — and without re-mirroring.
    pub fn apply_remote_dht_insert(&self, vid: u64, version: u64, entry: LocationEntry) {
        self.dht.insert(vid, version, entry);
    }

    /// Apply a remote replica's eviction (wire reader entry point):
    /// drops DHT records and registered buffers for all versions of `vid`
    /// up to and including `version`, without re-mirroring.
    pub fn apply_remote_evict(&self, vid: u64, version: u64) {
        self.evict_vid(vid, version);
    }

    /// The location service.
    pub fn dht(&self) -> &Dht {
        &self.dht
    }

    /// The schedule cache (stats are used by the caching ablation).
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// The underlying DART runtime.
    pub fn dart(&self) -> &Arc<DartRuntime> {
        &self.dart
    }

    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    fn put_impl(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
        index_in_dht: bool,
    ) -> Result<(), CodsError> {
        if data.len() as u128 != bbox.num_cells() {
            return Err(CodsError::SizeMismatch {
                expected: bbox.num_cells(),
                got: data.len(),
            });
        }
        let vid = self.key_of(var);
        let bytes = data.len() as u64 * ELEM_BYTES as u64;
        let node = self.dart.placement().node_of(client);
        let flight = self.dart.flight();
        let put_start = flight.now_us();
        let injector = self.dart.injector();
        if injector.staging_exhausted(node) {
            let used = self.staging_bytes(node);
            self.record_fault("stage-full", app, vid, version, client, piece);
            return Err(CodsError::StagingFull {
                node,
                used,
                limit: used,
            });
        }
        // An injected dead producer crashes between its DHT insert and its
        // buffer registration: the location is advertised below, but no
        // payload ever lands in staging.
        let dead = injector.dead_producer(vid, version, client, piece);
        if dead {
            self.record_fault("dead-producer", app, vid, version, client, piece);
        }
        if !dead {
            let mut staging = self.staging.lock().unwrap();
            let used = staging.entry(node).or_insert(0);
            if let Some(limit) = self.cfg.staging_limit_per_node {
                if *used + bytes > limit {
                    self.record_fault("stage-full", app, vid, version, client, piece);
                    return Err(CodsError::StagingFull {
                        node,
                        used: *used,
                        limit,
                    });
                }
            }
            *used += bytes;
            let peak = staging.values().copied().max().unwrap_or(0);
            self.staging_peak
                .fetch_max(peak, std::sync::atomic::Ordering::Relaxed);
            self.staging_gauge.set(peak);
        }
        self.put_count.inc();
        if !dead {
            self.dart.register_buffer(
                buf_key(vid, version, client, piece),
                client,
                encode_f64s(data),
            );
        }
        if index_in_dht {
            let entry = LocationEntry {
                bbox: *bbox,
                owner: client,
                piece,
            };
            let cores = self.dht.insert(vid, version, entry);
            if let Some(m) = &self.mirror {
                m.dht_insert(vid, version, &entry);
            }
            for c in cores {
                self.dart.account(
                    app,
                    TrafficClass::Dht,
                    client,
                    self.dht.core_client(c),
                    DHT_RECORD_BYTES,
                );
            }
        }
        if flight.is_enabled() {
            let now = flight.now_us();
            flight.record(
                Event::new(
                    flight.next_seq(),
                    EventKind::Put {
                        indexed: index_in_dht,
                    },
                )
                .app(app)
                .var(vid)
                .version(version)
                .bbox(*bbox)
                .src(client)
                .piece(piece)
                .bytes(bytes)
                .window(put_start, now.saturating_sub(put_start)),
            );
        }
        Ok(())
    }

    /// Log an injected fault at a CoDS fault site as a flight event.
    fn record_fault(
        &self,
        kind: &'static str,
        app: u32,
        vid: u64,
        version: u64,
        client: ClientId,
        piece: u64,
    ) {
        let flight = self.dart.flight();
        if !flight.is_enabled() {
            return;
        }
        let now = flight.now_us();
        flight.record(
            Event::new(flight.next_seq(), EventKind::Fault { kind })
                .app(app)
                .var(vid)
                .version(version)
                .src(client)
                .piece(piece)
                .window(now, 0),
        );
    }

    /// `cods_put_seq`: store a piece into the space and index it in the
    /// DHT for later (sequentially coupled) consumers.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn put_seq(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
    ) -> Result<(), CodsError> {
        self.put_impl(client, app, var, version, piece, bbox, data, true)
    }

    /// `cods_put_cont`: expose a piece for direct pull by a concurrently
    /// running consumer (no DHT indexing — the consumer derives locations
    /// from the producer's declared decomposition).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn put_cont(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        piece: u64,
        bbox: &BoundingBox,
        data: &[f64],
    ) -> Result<(), CodsError> {
        self.put_impl(client, app, var, version, piece, bbox, data, false)
    }

    /// `cods_get_seq`: retrieve `query` of `(var, version)` using the DHT
    /// location service (or a cached schedule).
    pub fn get_seq(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        query: &BoundingBox,
    ) -> Result<(FieldData, GetReport), CodsError> {
        let vid = self.key_of(var);
        self.get_count.inc();
        let flight = self.dart.flight();
        let gstart = flight.now_us();
        let gseq = flight.next_seq();
        let mut report = GetReport::default();
        let schedule = match self.cached(vid, query) {
            Some(s) => {
                report.cache_hit = true;
                self.record_schedule(gseq, gstart, true, app, vid, version, client);
                s
            }
            None => {
                let dht_start = flight.now_us();
                let _query_span = self.recorder.span("cods.dht_query", "cods", client as u64);
                let injector = self.dart.injector();
                let (entries, cores) = self
                    .dht
                    .query_filtered(vid, version, query, &|c| !injector.dht_core_down(c));
                report.dht_cores_queried = cores.len() as u32;
                // One query record out to each consulted core; the reply
                // carries the matching location records (at least one
                // record's worth of header per core).
                let reply_records = 1 + entries.len().div_ceil(cores.len().max(1)) as u64;
                for c in &cores {
                    let peer = self.dht.core_client(*c);
                    self.dart
                        .account(app, TrafficClass::Dht, client, peer, DHT_RECORD_BYTES);
                    self.dart.account(
                        app,
                        TrafficClass::Dht,
                        peer,
                        client,
                        DHT_RECORD_BYTES * reply_records,
                    );
                }
                if flight.is_enabled() {
                    flight.record(
                        Event::new(
                            flight.next_seq(),
                            EventKind::DhtLookup {
                                cores: report.dht_cores_queried,
                            },
                        )
                        .parent(gseq)
                        .app(app)
                        .var(vid)
                        .version(version)
                        .dst(client)
                        .window(dht_start, flight.now_us().saturating_sub(dht_start)),
                    );
                }
                let sched_start = flight.now_us();
                let s = Arc::new(schedule_from_entries(&entries, query));
                self.record_schedule(gseq, sched_start, false, app, vid, version, client);
                self.store_cache(vid, query, Arc::clone(&s));
                s
            }
        };
        let data = self.execute(
            &schedule,
            client,
            app,
            vid,
            version,
            query,
            gseq,
            &mut report,
        )?;
        if flight.is_enabled() {
            flight.record(
                Event::new(gseq, EventKind::Get { cont: false })
                    .app(app)
                    .var(vid)
                    .version(version)
                    .bbox(*query)
                    .dst(client)
                    .bytes(data.len() as u64 * ELEM_BYTES as u64)
                    .window(gstart, flight.now_us().saturating_sub(gstart)),
            );
        }
        Ok((data, report))
    }

    /// `cods_get_cont`: retrieve `query` directly from a concurrently
    /// running producer, whose data decomposition is declared up front.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    pub fn get_cont(
        &self,
        client: ClientId,
        app: u32,
        var: &str,
        version: u64,
        query: &BoundingBox,
        producer: &Decomposition,
        producer_clients: &[ClientId],
    ) -> Result<(FieldData, GetReport), CodsError> {
        let vid = self.key_of(var);
        self.get_count.inc();
        let flight = self.dart.flight();
        let gstart = flight.now_us();
        let gseq = flight.next_seq();
        let mut report = GetReport::default();
        let schedule = match self.cached(vid, query) {
            Some(s) => {
                report.cache_hit = true;
                self.record_schedule(gseq, gstart, true, app, vid, version, client);
                s
            }
            None => {
                let sched_start = flight.now_us();
                let s = Arc::new(schedule_from_decomposition(
                    producer,
                    producer_clients,
                    query,
                ));
                self.record_schedule(gseq, sched_start, false, app, vid, version, client);
                self.store_cache(vid, query, Arc::clone(&s));
                s
            }
        };
        let data = self.execute(
            &schedule,
            client,
            app,
            vid,
            version,
            query,
            gseq,
            &mut report,
        )?;
        if flight.is_enabled() {
            flight.record(
                Event::new(gseq, EventKind::Get { cont: true })
                    .app(app)
                    .var(vid)
                    .version(version)
                    .bbox(*query)
                    .dst(client)
                    .bytes(data.len() as u64 * ELEM_BYTES as u64)
                    .window(gstart, flight.now_us().saturating_sub(gstart)),
            );
        }
        Ok((data, report))
    }

    /// Log a schedule-computation child event under `parent` (a get's
    /// pre-allocated sequence number).
    #[allow(clippy::too_many_arguments)] // event tags mirror the cods_* operator signatures
    fn record_schedule(
        &self,
        parent: u64,
        start_us: u64,
        hit: bool,
        app: u32,
        vid: u64,
        version: u64,
        client: ClientId,
    ) {
        let flight = self.dart.flight();
        if !flight.is_enabled() {
            return;
        }
        flight.record(
            Event::new(flight.next_seq(), EventKind::Schedule { hit })
                .parent(parent)
                .app(app)
                .var(vid)
                .version(version)
                .dst(client)
                .window(start_us, flight.now_us().saturating_sub(start_us)),
        );
    }

    fn cached(&self, vid: u64, query: &BoundingBox) -> Option<Arc<CommSchedule>> {
        if self.cfg.cache_schedules {
            self.cache.lookup(vid, query)
        } else {
            None
        }
    }

    fn store_cache(&self, vid: u64, query: &BoundingBox, s: Arc<CommSchedule>) {
        // Never cache a schedule that does not cover the query (e.g. a
        // DHT snapshot taken before every producer had indexed its
        // piece): replays would keep failing even once the data exists.
        if self.cfg.cache_schedules && s.total_cells() == query.num_cells() {
            self.cache.insert(vid, query, s);
        }
    }

    /// Receiver-driven pull: issue every scheduled piece at once and
    /// assemble the dense row-major array of `query` out of order as
    /// pieces arrive, so the get blocks for the slowest producer instead
    /// of the sum of all producer waits. Each piece is copied exactly
    /// once, straight from the staged buffer into the result; when a
    /// single piece exactly covers the query the result is a zero-copy
    /// view of the staged buffer itself.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's cods_* operator signatures
    fn execute(
        &self,
        schedule: &CommSchedule,
        client: ClientId,
        app: u32,
        vid: u64,
        version: u64,
        query: &BoundingBox,
        parent: u64,
        report: &mut GetReport,
    ) -> Result<FieldData, CodsError> {
        let covered = schedule.total_cells();
        if covered != query.num_cells() {
            return Err(CodsError::IncompleteCover {
                missing_cells: query.num_cells().saturating_sub(covered),
            });
        }
        let flight = self.dart.flight();
        let cells = query.num_cells() as usize;
        let keys: Vec<BufKey> = schedule
            .ops
            .iter()
            .map(|op| buf_key(vid, version, op.src_client, op.piece))
            .collect();
        let zero_copy = schedule.ops.len() == 1 && schedule.ops[0].piece_box == *query;
        let mut out: Vec<f64> = if zero_copy {
            Vec::new()
        } else {
            vec![0.0; cells]
        };
        let mut view: Option<insitu_util::Bytes> = None;
        let issue_us = flight.now_us();
        let mut complete = |i: usize, handle: BufferHandle, wait: Duration| {
            let op = &schedule.ops[i];
            if zero_copy {
                assert_eq!(
                    handle.data.len(),
                    cells * ELEM_BYTES,
                    "staged piece does not match its declared box"
                );
                view = Some(handle.data.clone());
            } else if let Some(src) = f64s_of_bytes(&handle.data) {
                copy_region(src, &op.piece_box, &mut out, query, &op.region);
            } else {
                // Staged buffer not 8-aligned: copy at byte granularity.
                copy_region_bytes(
                    &handle.data,
                    &op.piece_box,
                    bytes_of_f64s_mut(&mut out),
                    query,
                    &op.region,
                    ELEM_BYTES,
                );
            }
            let bytes = op.region.num_cells() as u64 * ELEM_BYTES as u64;
            let loc = self
                .dart
                .account(app, TrafficClass::InterApp, handle.owner, client, bytes);
            match loc {
                Locality::SharedMemory => report.shm_bytes += bytes,
                Locality::Network => report.net_bytes += bytes,
            }
            report.ops += 1;
            if flight.is_enabled() {
                flight.record(
                    Event::new(
                        flight.next_seq(),
                        EventKind::Pull {
                            wait_us: wait.as_micros() as u64,
                        },
                    )
                    .parent(parent)
                    .app(app)
                    .var(vid)
                    .version(version)
                    .bbox(op.region)
                    .src(handle.owner)
                    .dst(client)
                    .link(LinkClass::from_locality(loc))
                    .piece(op.piece)
                    .bytes(bytes)
                    .window(issue_us, flight.now_us().saturating_sub(issue_us)),
                );
            }
        };
        let result = if self.cfg.sequential_pulls {
            // A/B baseline: one op at a time, same single-copy assembly.
            let mut failed = None;
            for (i, key) in keys.iter().enumerate() {
                let started = std::time::Instant::now();
                match self.dart.pull(key, self.cfg.get_timeout) {
                    Some(handle) => complete(i, handle, started.elapsed()),
                    None => {
                        failed = Some(i);
                        break;
                    }
                }
            }
            failed.map_or(Ok(()), Err)
        } else {
            self.dart
                .pull_many(&keys, self.cfg.get_timeout, &mut complete)
        };
        if let Err(i) = result {
            let op = &schedule.ops[i];
            return Err(CodsError::Timeout {
                var: vid,
                version,
                region: op.region,
                owner: op.src_client,
            });
        }
        self.note_get_complete(vid, version);
        let data = match view {
            Some(bytes) => FieldData::from_bytes(bytes),
            None => FieldData::Owned(out),
        };
        if data.is_view() {
            self.view_count.inc();
        }
        Ok(data)
    }

    /// Highest version of `var` visible in the DHT (sequential couplings
    /// only; concurrent puts are not indexed).
    pub fn latest_version(&self, var: &str) -> Option<u64> {
        self.dht.latest_version(self.key_of(var))
    }

    /// Drop a version's buffers and DHT records (memory management between
    /// workflow stages). Frees the owners' staging accounting.
    /// Eviction is *in-order*: all versions up to and including `version`
    /// are dropped from both the DHT and the registry.
    pub fn evict_version(&self, var: &str, version: u64) {
        let vid = self.key_of(var);
        self.evict_vid(vid, version);
        if let Some(m) = &self.mirror {
            m.evict(vid, version);
        }
    }

    fn evict_vid(&self, vid: u64, version: u64) {
        self.dht.remove_versions_up_to(vid, version);
        let removed = self.dart.registry().evict_below(vid, version + 1);
        self.evict_count.add(removed.len() as u64);
        let mut staging = self.staging.lock().unwrap();
        for (owner, bytes) in removed {
            let node = self.dart.placement().node_of(owner);
            if let Some(used) = staging.get_mut(&node) {
                *used = used.saturating_sub(bytes);
            }
        }
        self.staging_gauge
            .set(staging.values().copied().max().unwrap_or(0));
    }

    /// Bytes currently staged in CoDS memory on `node`.
    pub fn staging_bytes(&self, node: u32) -> u64 {
        self.staging
            .lock()
            .unwrap()
            .get(&node)
            .copied()
            .unwrap_or(0)
    }

    /// The highest per-node staging occupancy observed so far.
    pub fn staging_peak(&self) -> u64 {
        self.staging_peak.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_domain::{layout, Distribution, ProcessGrid};
    use insitu_fabric::{MachineSpec, Placement, TransferLedger};
    use insitu_sfc::HilbertCurve;

    /// 4 clients on 2 nodes of 2 cores; DHT core per node on clients 0, 2.
    fn space() -> Arc<CodsSpace> {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
    }

    fn tagfn(p: &[u64]) -> f64 {
        (p[0] * 100 + p[1]) as f64 + 0.25
    }

    /// Producer decomposition 2x2 blocked over 8x8; clients 0..4 hold it.
    fn produce(space: &CodsSpace, var: &str, version: u64) -> (Decomposition, Vec<ClientId>) {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        let clients: Vec<ClientId> = (0..4).collect();
        for r in 0..4u64 {
            let b = dec.blocked_box(r).unwrap();
            let data = layout::fill_with(&b, tagfn);
            space
                .put_seq(clients[r as usize], 1, var, version, 0, &b, &data)
                .unwrap();
        }
        (dec, clients)
    }

    #[derive(Default)]
    struct RecordingMirror {
        inserts: Mutex<Vec<(u64, u64, LocationEntry)>>,
        dones: Mutex<Vec<(u64, u64)>>,
        evicts: Mutex<Vec<(u64, u64)>>,
    }

    impl SpaceMirror for RecordingMirror {
        fn dht_insert(&self, var: u64, version: u64, entry: &LocationEntry) {
            self.inserts.lock().unwrap().push((var, version, *entry));
        }
        fn get_done(&self, var: u64, version: u64) {
            self.dones.lock().unwrap().push((var, version));
        }
        fn evict(&self, var: u64, version: u64) {
            self.evicts.lock().unwrap().push((var, version));
        }
    }

    fn mirrored_space(mirror: Arc<RecordingMirror>) -> Arc<CodsSpace> {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        CodsSpace::with_mirror(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_secs(2),
                ..Default::default()
            },
            mirror,
        )
    }

    #[test]
    fn mirror_sees_local_changes_but_not_remote_applies() {
        let mirror = Arc::new(RecordingMirror::default());
        let s = mirrored_space(Arc::clone(&mirror));
        produce(&s, "temp", 0);
        let vid = var_id("temp");
        assert_eq!(mirror.inserts.lock().unwrap().len(), 4);
        let q = BoundingBox::from_sizes(&[8, 8]);
        s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert_eq!(*mirror.dones.lock().unwrap(), vec![(vid, 0)]);
        s.evict_version("temp", 0);
        assert_eq!(*mirror.evicts.lock().unwrap(), vec![(vid, 0)]);
        // Remote applies replay the same changes without re-mirroring.
        let entry = mirror.inserts.lock().unwrap()[0].2;
        s.apply_remote_dht_insert(vid, 1, entry);
        s.apply_remote_get_done(vid, 1);
        s.apply_remote_evict(vid, 1);
        assert_eq!(mirror.inserts.lock().unwrap().len(), 4);
        assert_eq!(mirror.dones.lock().unwrap().len(), 1);
        assert_eq!(mirror.evicts.lock().unwrap().len(), 1);
        // And nothing above accounted any traffic beyond the local run's.
        assert_eq!(s.dht().latest_version(vid), None);
    }

    #[test]
    fn remote_dht_insert_is_queryable_without_accounting() {
        let s = space();
        let vid = var_id("remote_var");
        let before = s.dart().ledger().snapshot();
        s.apply_remote_dht_insert(
            vid,
            3,
            LocationEntry {
                bbox: BoundingBox::from_sizes(&[4, 4]),
                owner: 2,
                piece: 0,
            },
        );
        assert_eq!(s.dht().latest_version(vid), Some(3));
        assert_eq!(s.dart().ledger().snapshot(), before);
    }

    #[test]
    fn remote_get_done_releases_waiting_producer() {
        let s = space();
        s.set_expected_gets("vel", 2);
        let vid = var_id("vel");
        s.apply_remote_get_done(vid, 0);
        assert!(!s.wait_version_consumed("vel", 0, Duration::from_millis(20)));
        s.apply_remote_get_done(vid, 0);
        assert!(s.wait_version_consumed("vel", 0, Duration::from_millis(20)));
    }

    #[test]
    fn put_get_seq_roundtrip_full_domain() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (data, report) = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert_eq!(data.len(), 64);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
        assert_eq!(report.ops, 4);
        assert!(report.dht_cores_queried > 0);
        assert!(!report.cache_hit);
    }

    #[test]
    fn get_seq_sub_region_crossing_owners() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let (data, report) = s.get_seq(0, 2, "temp", 0, &q).unwrap();
        assert_eq!(report.ops, 4); // crosses all four quadrants
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn second_get_hits_schedule_cache() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[0, 0], &[3, 3]);
        let (_, r1) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        let (_, r2) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        assert!(!r1.cache_hit);
        assert!(r2.cache_hit);
        assert_eq!(r2.dht_cores_queried, 0);
    }

    #[test]
    fn cached_schedule_replays_across_versions() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[0, 0], &[7, 7]);
        let _ = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        produce(&s, "temp", 1);
        let (data, r) = s.get_seq(1, 2, "temp", 1, &q).unwrap();
        assert!(r.cache_hit);
        assert_eq!(data.len(), 64);
    }

    #[test]
    fn locality_accounting_matches_placement() {
        let s = space();
        produce(&s, "temp", 0);
        // Client 1 is on node 0 with clients {0, 1}; producers 0,1 are
        // co-located with it, producers 2,3 are not.
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (_, report) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        // Each producer piece is 16 cells = 128 bytes.
        assert_eq!(report.shm_bytes, 2 * 128);
        assert_eq!(report.net_bytes, 2 * 128);
        let snap = s.dart().ledger().snapshot();
        assert_eq!(snap.shm_bytes(TrafficClass::InterApp), 256);
        assert_eq!(snap.network_bytes(TrafficClass::InterApp), 256);
    }

    #[test]
    fn get_cont_without_dht() {
        let s = space();
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2]),
            Distribution::Blocked,
        );
        let clients: Vec<ClientId> = (0..4).collect();
        for r in 0..4u64 {
            let b = dec.blocked_box(r).unwrap();
            let data = layout::fill_with(&b, tagfn);
            s.put_cont(clients[r as usize], 1, "vel", 7, 0, &b, &data)
                .unwrap();
        }
        let q = BoundingBox::new(&[1, 1], &[6, 6]);
        let (data, report) = s.get_cont(2, 2, "vel", 7, &q, &dec, &clients).unwrap();
        assert_eq!(report.dht_cores_queried, 0);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
        // No DHT traffic at all for the concurrent path.
        assert_eq!(
            s.dart().ledger().snapshot().total_bytes(TrafficClass::Dht),
            0
        );
    }

    #[test]
    fn get_cont_rendezvous_producer_late() {
        let s = space();
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[1, 1]),
            Distribution::Blocked,
        );
        let s2 = Arc::clone(&s);
        let consumer = std::thread::spawn(move || {
            let q = BoundingBox::from_sizes(&[8, 8]);
            s2.get_cont(1, 2, "late", 0, &q, &dec, &[0]).unwrap().0
        });
        std::thread::sleep(Duration::from_millis(30));
        let b = BoundingBox::from_sizes(&[8, 8]);
        let data = layout::fill_with(&b, tagfn);
        s.put_cont(0, 1, "late", 0, 0, &b, &data).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn version_isolation() {
        let s = space();
        produce(&s, "temp", 0);
        let q = BoundingBox::new(&[0, 0], &[1, 1]);
        // Version 5 was never put: schedule comes up empty -> incomplete.
        let err = s.get_seq(0, 2, "x", 5, &q).unwrap_err();
        assert!(matches!(err, CodsError::IncompleteCover { .. }));
    }

    #[test]
    fn timeout_when_piece_missing() {
        // Build an uncached space with tiny timeout; DHT knows about a
        // piece that was never registered (e.g. producer died).
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(1, 2), 2));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                get_timeout: Duration::from_millis(20),
                ..Default::default()
            },
        );
        let b = BoundingBox::from_sizes(&[4, 4]);
        s.dht().insert(
            var_id("ghost"),
            0,
            LocationEntry {
                bbox: b,
                owner: 1,
                piece: 0,
            },
        );
        let err = s.get_seq(0, 1, "ghost", 0, &b).unwrap_err();
        assert!(matches!(err, CodsError::Timeout { .. }));
    }

    #[test]
    fn size_mismatch_rejected() {
        let s = space();
        let b = BoundingBox::from_sizes(&[4, 4]);
        let err = s.put_seq(0, 1, "bad", 0, 0, &b, &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            CodsError::SizeMismatch {
                expected: 16,
                got: 2
            }
        );
    }

    #[test]
    fn evict_version_removes_data() {
        let s = space();
        produce(&s, "temp", 0);
        s.evict_version("temp", 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        // Schedules were cached before eviction? No get happened, so the
        // DHT is consulted and finds nothing.
        let err = s.get_seq(0, 2, "temp", 0, &q).unwrap_err();
        assert!(matches!(err, CodsError::IncompleteCover { .. }));
    }

    #[test]
    fn consumption_tracking_counts_gets() {
        let s = space();
        produce(&s, "temp", 0);
        s.set_expected_gets("temp", 2);
        assert_eq!(s.gets_completed("temp", 0), 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        let _ = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        assert_eq!(s.gets_completed("temp", 0), 1);
        assert!(!s.wait_version_consumed("temp", 0, Duration::from_millis(10)));
        let _ = s.get_seq(2, 2, "temp", 0, &q).unwrap();
        assert!(s.wait_version_consumed("temp", 0, Duration::from_millis(10)));
    }

    #[test]
    fn wait_version_consumed_without_expectation_is_false() {
        let s = space();
        assert!(!s.wait_version_consumed("nobody", 0, Duration::from_millis(5)));
    }

    #[test]
    fn wait_version_consumed_unblocks_across_threads() {
        let s = space();
        produce(&s, "temp", 0);
        s.set_expected_gets("temp", 1);
        let s2 = Arc::clone(&s);
        let waiter =
            std::thread::spawn(move || s2.wait_version_consumed("temp", 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        let q = BoundingBox::from_sizes(&[8, 8]);
        let _ = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn latest_version_discovery() {
        let s = space();
        assert_eq!(s.latest_version("temp"), None);
        produce(&s, "temp", 0);
        assert_eq!(s.latest_version("temp"), Some(0));
        produce(&s, "temp", 5);
        assert_eq!(s.latest_version("temp"), Some(5));
        // In-order eviction drops every version up to the given one.
        s.evict_version("temp", 5);
        assert_eq!(s.latest_version("temp"), None);
    }

    #[test]
    fn staging_accounting_tracks_puts_and_evictions() {
        let s = space();
        // Clients 0,1 on node 0; 2,3 on node 1. Each piece = 16 cells.
        produce(&s, "temp", 0);
        assert_eq!(s.staging_bytes(0), 2 * 16 * 8);
        assert_eq!(s.staging_bytes(1), 2 * 16 * 8);
        assert_eq!(s.staging_peak(), 2 * 16 * 8);
        s.evict_version("temp", 0);
        assert_eq!(s.staging_bytes(0), 0);
        assert_eq!(s.staging_bytes(1), 0);
        // Peak is sticky.
        assert_eq!(s.staging_peak(), 2 * 16 * 8);
    }

    #[test]
    fn staging_limit_rejects_oversubscription() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(1, 2), 2));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                staging_limit_per_node: Some(200),
                ..Default::default()
            },
        );
        let b = BoundingBox::from_sizes(&[4, 4]); // 128 bytes
        let data = layout::fill_with(&b, tagfn);
        s.put_seq(0, 1, "x", 0, 0, &b, &data).unwrap();
        let err = s.put_seq(1, 1, "x", 0, 1, &b, &data).unwrap_err();
        assert!(matches!(
            err,
            CodsError::StagingFull {
                node: 0,
                used: 128,
                limit: 200
            }
        ));
        // Evicting frees capacity for a retry.
        s.evict_version("x", 0);
        s.put_seq(1, 1, "x", 1, 1, &b, &data).unwrap();
    }

    #[test]
    fn exact_cover_single_piece_is_zero_copy() {
        let s = space();
        produce(&s, "temp", 0);
        // Query exactly one producer's piece: the result must be a view
        // of the staged buffer, not a copy.
        let piece = BoundingBox::from_sizes(&[4, 4]);
        let (data, report) = s.get_seq(1, 2, "temp", 0, &piece).unwrap();
        assert_eq!(report.ops, 1);
        assert!(data.is_view(), "single exact piece should not be copied");
        for p in piece.iter_points() {
            assert_eq!(data[layout::linear_index(&piece, &p[..2])], tagfn(&p[..2]));
        }
        // A multi-piece query assembles into an owned buffer.
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (data, report) = s.get_seq(1, 2, "temp", 0, &q).unwrap();
        assert!(report.ops > 1);
        assert!(!data.is_view());
        // A sub-piece query is a single op but not an exact cover.
        let sub = BoundingBox::new(&[1, 1], &[2, 2]);
        let (data, report) = s.get_seq(1, 2, "temp", 0, &sub).unwrap();
        assert_eq!(report.ops, 1);
        assert!(!data.is_view());
        for p in sub.iter_points() {
            assert_eq!(data[layout::linear_index(&sub, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn sequential_pulls_knob_matches_overlapped_results() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]);
        let s = CodsSpace::new(
            dart,
            dht,
            CodsConfig {
                sequential_pulls: true,
                ..Default::default()
            },
        );
        produce(&s, "temp", 0);
        let q = BoundingBox::from_sizes(&[8, 8]);
        let (data, report) = s.get_seq(3, 2, "temp", 0, &q).unwrap();
        assert_eq!(report.ops, 4);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn multi_piece_producer() {
        // One producer holding two disjoint pieces (cyclic-style put).
        let s = space();
        let b1 = BoundingBox::new(&[0, 0], &[3, 7]);
        let b2 = BoundingBox::new(&[4, 0], &[7, 7]);
        s.put_seq(0, 1, "mp", 0, 0, &b1, &layout::fill_with(&b1, tagfn))
            .unwrap();
        s.put_seq(0, 1, "mp", 0, 1, &b2, &layout::fill_with(&b2, tagfn))
            .unwrap();
        let q = BoundingBox::new(&[2, 2], &[5, 5]);
        let (data, report) = s.get_seq(3, 2, "mp", 0, &q).unwrap();
        assert_eq!(report.ops, 2);
        for p in q.iter_points() {
            assert_eq!(data[layout::linear_index(&q, &p[..2])], tagfn(&p[..2]));
        }
    }

    #[test]
    fn epoch_salt_is_identity_at_zero_and_diffuse_otherwise() {
        assert_eq!(epoch_salt(0), 0);
        let salts: Vec<u64> = (1..64u64).map(epoch_salt).collect();
        for (i, &a) in salts.iter().enumerate() {
            assert_ne!(a, 0);
            for &b in &salts[i + 1..] {
                assert_ne!(a, b, "epoch salts must be distinct");
            }
        }
    }

    #[test]
    fn key_epoch_zero_keys_equal_raw_var_ids() {
        let s = space();
        assert_eq!(s.key_of("temperature"), var_id("temperature"));
    }

    /// Two epoched spaces over ONE runtime (one registry, one ledger):
    /// identical variable names and versions stay fully independent —
    /// each run's get sees exactly its own producer's data.
    #[test]
    fn distinct_epochs_isolate_identical_var_names_on_a_shared_runtime() {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
        let mk = |epoch: u64| {
            CodsSpace::new(
                Arc::clone(&dart),
                Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 2]),
                CodsConfig {
                    get_timeout: Duration::from_secs(2),
                    key_epoch: epoch,
                    ..Default::default()
                },
            )
        };
        let (a, b) = (mk(1), mk(2));
        assert_ne!(a.key_of("temp"), b.key_of("temp"));
        let bbox = BoundingBox::from_sizes(&[4, 4]);
        let fill_a = layout::fill_with(&bbox, |p| tagfn(p) + 1000.0);
        let fill_b = layout::fill_with(&bbox, |p| tagfn(p) + 2000.0);
        a.put_seq(0, 1, "temp", 0, 0, &bbox, &fill_a).unwrap();
        b.put_seq(0, 1, "temp", 0, 0, &bbox, &fill_b).unwrap();
        // Same name, same version, same query — each space resolves to
        // its own run's bytes.
        let (da, _) = a.get_seq(3, 2, "temp", 0, &bbox).unwrap();
        let (db, _) = b.get_seq(3, 2, "temp", 0, &bbox).unwrap();
        assert_eq!(&da[..], &fill_a[..]);
        assert_eq!(&db[..], &fill_b[..]);
        // Eviction in one epoch must not disturb the other.
        a.evict_version("temp", 0);
        assert_eq!(a.latest_version("temp"), None);
        assert_eq!(b.latest_version("temp"), Some(0));
        let (db2, _) = b.get_seq(1, 2, "temp", 0, &bbox).unwrap();
        assert_eq!(&db2[..], &fill_b[..]);
    }
}
