//! A deterministic property-test driver.
//!
//! Replaces `proptest` for this workspace: a property is an ordinary
//! closure over a seeded [`SplitMix64`], run for a fixed number of cases.
//! Failures are reproducible (the failing case index and its derived seed
//! are printed by the panic message), and there is no shrinking — cases
//! are kept small by construction instead.
//!
//! ```
//! insitu_util::check::forall(64, |rng| {
//!     let a = rng.range_u64(0, 100);
//!     let b = rng.range_u64(0, 100);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::SplitMix64;

/// Run `prop` for `cases` deterministic random cases.
///
/// Each case gets a fresh generator derived from the case index, so a
/// failure message's case number pins down the exact inputs.
pub fn forall(cases: u64, mut prop: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(0x5EED_2012u64 ^ case.wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed at case {case}/{cases}");
            std::panic::resume_unwind(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_deterministically() {
        let mut first = Vec::new();
        forall(16, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        forall(16, |rng| second.push(rng.next_u64()));
        assert_eq!(first.len(), 16);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic]
    fn propagates_failures() {
        forall(8, |rng| {
            assert!(rng.next_u64() % 2 == 0, "will fail quickly")
        });
    }
}
