//! An immutable, reference-counted byte buffer.
//!
//! Covers the subset of the `bytes` crate's `Bytes` API the workspace
//! uses: cheap clones (`Arc` bump, no copy), construction from vectors,
//! slices and strings, and `Deref` to `[u8]`. Buffers registered with
//! HybridDART are shared zero-copy between the producer's registration
//! and every consumer's one-sided read.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer backed by a static byte string (copied once).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }

    /// Buffer holding a copy of `s`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} B)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"xy").as_slice(), b"xy");
        assert_eq!(Bytes::from("ab".to_string()).as_ref(), b"ab");
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn equality_by_content() {
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_ne!(
            Bytes::copy_from_slice(b"abc"),
            Bytes::copy_from_slice(b"abd")
        );
    }
}
