//! An immutable, reference-counted byte buffer.
//!
//! Covers the subset of the `bytes` crate's `Bytes` API the workspace
//! uses: cheap clones (`Arc` bump, no copy), construction from vectors,
//! slices and strings, and `Deref` to `[u8]`. Buffers registered with
//! HybridDART are shared zero-copy between the producer's registration
//! and every consumer's one-sided read.
//!
//! A buffer can also borrow a [`crate::shm::MapRegion`] — a view into a
//! shared-memory segment another process staged — so the intra-host
//! data plane registers pulled pieces without ever copying them out of
//! the producer's arena. Equality and hashing are by content in both
//! representations, so the two kinds mix freely in maps and
//! comparisons.

use crate::shm::MapRegion;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Process-local heap storage.
    Heap(Arc<[u8]>),
    /// A view into a shared memory mapping (zero-copy intra-host path).
    /// Dropping the last clone fires the region's release callback.
    Map(Arc<MapRegion>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer backed by a static byte string (copied once).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Heap(Arc::from(s)),
        }
    }

    /// Buffer holding a copy of `s`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            repr: Repr::Heap(Arc::from(s)),
        }
    }

    /// Buffer borrowing a shared-memory region, without copying. The
    /// region's release callback fires when the last clone drops.
    pub fn from_map(region: Arc<MapRegion>) -> Self {
        Bytes {
            repr: Repr::Map(region),
        }
    }

    /// Whether this buffer borrows a shared-memory mapping rather than
    /// owning heap storage.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Map(_))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Heap(data) => data,
            Repr::Map(region) => region.as_slice(),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            repr: Repr::Heap(Arc::from(&[][..])),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Heap(Arc::from(v)),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Bytes({} B{})",
            self.len(),
            if self.is_mapped() { ", mapped" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shm::RingMem;

    #[test]
    fn construction_and_access() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"xy").as_slice(), b"xy");
        assert_eq!(Bytes::from("ab".to_string()).as_ref(), b"ab");
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn equality_by_content() {
        assert_eq!(Bytes::copy_from_slice(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_ne!(
            Bytes::copy_from_slice(b"abc"),
            Bytes::copy_from_slice(b"abd")
        );
    }

    /// Stage `content` through a heap-backed ring and wrap the popped
    /// record as mapped Bytes — the exact shape the shm data plane
    /// builds.
    fn mapped(content: &[u8]) -> Bytes {
        use crate::shm::{RecordDesc, Ring};
        let mem = RingMem::heap(Ring::required_len(1, 64));
        let ring = Ring::create(mem.clone(), 1, 64);
        ring.push(
            &RecordDesc {
                name: 0,
                version: 0,
                piece: 0,
                owner: 0,
            },
            content,
        )
        .unwrap();
        let rec = ring.pop().unwrap();
        Bytes::from_map(Arc::new(MapRegion::new(mem, rec.off, rec.len, None)))
    }

    #[test]
    // The interior mutability clippy flags is the map's release closure,
    // which never participates in Eq/Hash — those go by content alone.
    #[allow(clippy::mutable_key_type)]
    fn mapped_bytes_compare_and_hash_by_content() {
        let m = mapped(&[7u8; 16]);
        assert!(m.is_mapped());
        assert_eq!(m, Bytes::copy_from_slice(&[7u8; 16]));
        assert_ne!(m, Bytes::copy_from_slice(&[1u8; 16]));
        let mut set = std::collections::HashSet::new();
        set.insert(m.clone());
        assert!(set.contains(&Bytes::from(vec![7u8; 16])));
        // Clones of a mapped buffer share the mapping.
        let c = m.clone();
        assert_eq!(m.as_slice().as_ptr(), c.as_slice().as_ptr());
    }
}
