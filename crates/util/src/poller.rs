//! A minimal readiness poller for non-blocking `TcpStream`s.
//!
//! The workspace is std-only, so there is no `epoll`/`kqueue` binding to
//! lean on. This shim provides the one primitive the `insitu-net`
//! reactor needs — "which of these sockets have bytes (or EOF) waiting
//! to be read?" — using `TcpStream::peek` on non-blocking streams:
//! `peek` returns `WouldBlock` when nothing is buffered, a byte count
//! when data is ready, and `Ok(0)` at EOF (which is also a readiness
//! event: the owner must observe the hang-up).
//!
//! The poll loop is adaptive rather than busy: the first few sweeps
//! yield the CPU, after which it parks in short sleeps until either a
//! socket becomes ready or the caller's timeout elapses. On loopback —
//! the only transport the test battery and the `launch` smoke exercise —
//! the sub-millisecond sleep quantum keeps added latency well under the
//! network stack's own noise floor while capping idle CPU burn.

use std::io::ErrorKind;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long the poller parks between readiness sweeps once the initial
/// spin-yield phase is over. Bounds the added tail latency of a frame
/// that arrives while the poller naps, so it is kept well under the
/// loopback round-trip noise floor.
const SLEEP_QUANTUM: Duration = Duration::from_micros(50);

/// Number of yield-only sweeps before the poller starts sleeping. Sized
/// so request/response traffic with microsecond gaps (a pull burst on a
/// direct peer link) is caught in the spin phase and never pays the
/// sleep quantum.
const SPIN_SWEEPS: u32 = 512;

/// Readiness poller over a set of registered non-blocking streams.
///
/// Each stream is registered under a caller-chosen `u64` token;
/// [`Poller::poll`] reports the tokens whose streams are readable (data
/// buffered, EOF, or a pending socket error — all three require the
/// owner to act). Registration switches the stream to non-blocking
/// mode; the caller keeps its own handle (`try_clone`) for actual I/O.
pub struct Poller {
    entries: Vec<(u64, TcpStream)>,
}

impl Default for Poller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller {
    /// Create an empty poller.
    pub fn new() -> Self {
        Poller {
            entries: Vec::new(),
        }
    }

    /// Register `stream` under `token`, switching it to non-blocking
    /// mode. A token may only be registered once; re-registering an
    /// existing token replaces the previous stream.
    ///
    /// Non-blocking mode lives on the underlying socket, not the Rust
    /// handle: every `try_clone` of `stream` (including the one the
    /// caller keeps for I/O) becomes non-blocking too, and must not be
    /// switched back while the registration is live — a blocking clone
    /// would make [`Poller::poll`] block inside its readiness probe.
    pub fn register(&mut self, token: u64, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        self.deregister(token);
        self.entries.push((token, stream));
        Ok(())
    }

    /// Remove the stream registered under `token` (no-op if absent).
    pub fn deregister(&mut self, token: u64) {
        self.entries.retain(|(t, _)| *t != token);
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sweep every registered stream once and collect ready tokens.
    fn sweep(&self, ready: &mut Vec<u64>) {
        let mut probe = [0u8; 1];
        for (token, stream) in &self.entries {
            match stream.peek(&mut probe) {
                // Data buffered (Ok(n>0)) or EOF (Ok(0)): readable.
                Ok(_) => ready.push(*token),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                // Socket error (reset, etc.): report ready so the owner
                // discovers the failure on its next read.
                Err(_) => ready.push(*token),
            }
        }
    }

    /// Wait up to `timeout` for at least one registered stream to become
    /// readable; returns the ready tokens (empty on timeout). Returns
    /// immediately when something is already readable.
    pub fn poll(&self, timeout: Duration) -> Vec<u64> {
        let deadline = Instant::now() + timeout;
        let mut ready = Vec::new();
        let mut sweeps = 0u32;
        loop {
            self.sweep(&mut ready);
            if !ready.is_empty() {
                return ready;
            }
            let now = Instant::now();
            if now >= deadline || self.entries.is_empty() {
                return ready;
            }
            if sweeps < SPIN_SWEEPS {
                sweeps += 1;
                std::thread::yield_now();
            } else {
                let nap = SLEEP_QUANTUM.min(deadline - now);
                std::thread::sleep(nap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A connected loopback pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn idle_stream_times_out_with_no_ready_tokens() {
        let (a, _b) = pair();
        let mut poller = Poller::new();
        poller.register(7, a.try_clone().unwrap()).unwrap();
        let ready = poller.poll(Duration::from_millis(10));
        assert!(ready.is_empty(), "idle stream reported ready: {ready:?}");
    }

    #[test]
    fn written_stream_becomes_ready_and_stays_ready_until_drained() {
        let (a, mut b) = pair();
        let mut poller = Poller::new();
        poller.register(3, a.try_clone().unwrap()).unwrap();
        b.write_all(b"x").unwrap();
        let ready = poller.poll(Duration::from_secs(5));
        assert_eq!(ready, vec![3]);
        // Readiness is level-triggered: still ready until the owner reads.
        assert_eq!(poller.poll(Duration::from_secs(5)), vec![3]);
        // Registration switched the shared socket to non-blocking (the
        // mode lives on the socket, not the clone), so read without
        // flipping it back — the byte is buffered and returns at once.
        let mut byte = [0u8; 1];
        let mut owner = a.try_clone().unwrap();
        owner.read_exact(&mut byte).unwrap();
        assert!(poller.poll(Duration::from_millis(5)).is_empty());
    }

    #[test]
    fn eof_is_a_readiness_event() {
        let (a, b) = pair();
        let mut poller = Poller::new();
        poller.register(11, a.try_clone().unwrap()).unwrap();
        drop(b);
        let ready = poller.poll(Duration::from_secs(5));
        assert_eq!(ready, vec![11]);
    }

    #[test]
    fn multiple_streams_report_every_ready_token() {
        let (a1, mut b1) = pair();
        let (a2, _b2) = pair();
        let (a3, mut b3) = pair();
        let mut poller = Poller::new();
        poller.register(1, a1.try_clone().unwrap()).unwrap();
        poller.register(2, a2.try_clone().unwrap()).unwrap();
        poller.register(3, a3.try_clone().unwrap()).unwrap();
        b1.write_all(b"a").unwrap();
        b3.write_all(b"c").unwrap();
        let mut ready = poller.poll(Duration::from_secs(5));
        ready.sort_unstable();
        assert_eq!(ready, vec![1, 3]);
    }

    #[test]
    fn deregistered_stream_is_never_reported() {
        let (a, mut b) = pair();
        let mut poller = Poller::new();
        poller.register(9, a.try_clone().unwrap()).unwrap();
        poller.deregister(9);
        assert!(poller.is_empty());
        b.write_all(b"x").unwrap();
        assert!(poller.poll(Duration::from_millis(10)).is_empty());
    }
}
