//! Shared-memory segments and the SPSC frame-descriptor ring.
//!
//! The intra-host data plane (DESIGN.md §13) moves `PullData` payloads
//! between two processes on the same host through a file-backed memory
//! mapping instead of loopback TCP. This module supplies the std-only
//! building blocks:
//!
//! - [`ShmMap`] — a `MAP_SHARED` mapping of a regular file (created
//!   under `/dev/shm` when present), via a minimal self-declared `mmap`
//!   shim: std already links libc on unix, so no external crate is
//!   needed. Non-unix builds get a graceful `Unsupported` error and the
//!   transport falls back to TCP.
//! - [`Ring`] — a lock-free single-producer single-consumer ring of
//!   fixed-size record descriptors over a circular payload arena. The
//!   producer bump-allocates 8-aligned payload space (so a consumer can
//!   reinterpret staged `f64` data in place), publishes a descriptor,
//!   and the consumer pops records in FIFO order. Arena space is
//!   reclaimed when the consumer drops its payload views, in allocation
//!   order, through the shared `released` cursor.
//! - [`MapRegion`] — a refcounted payload view used to back
//!   `insitu_util::Bytes` without copying; dropping the region fires a
//!   release callback so the producer's arena space comes back.
//! - Segment naming, the per-host fingerprint used for same-host
//!   detection, and the stale-segment sweep/reap helpers used by
//!   `insitu serve` / `launch`.
//!
//! The ring works over any stable memory region ([`RingMem`]), so the
//! wrap-around/full/empty property tests run on a heap buffer with no
//! filesystem involvement, while the transport runs the same code over
//! a cross-process mapping.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic word at offset 0 of every segment ("INSITSHM" little-endian).
pub const SEGMENT_MAGIC: u64 = 0x4d48_5354_4953_4e49;

/// Ring layout version, bumped on any incompatible header change.
pub const RING_LAYOUT_VERSION: u64 = 1;

/// Header bytes before the descriptor table.
pub const RING_HEADER_BYTES: usize = 64;

/// Bytes per record descriptor.
pub const DESC_BYTES: usize = 64;

// Header field offsets (all u64 slots).
const OFF_MAGIC: usize = 0;
const OFF_LAYOUT: usize = 8;
const OFF_SLOTS: usize = 16;
const OFF_ARENA_LEN: usize = 24;
const OFF_HEAD: usize = 32;
const OFF_TAIL: usize = 40;
const OFF_ALLOC: usize = 48;
const OFF_RELEASED: usize = 56;

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    pub fn map_shared(file: &File, len: usize) -> io::Result<*mut u8> {
        // SAFETY: a fresh MAP_SHARED mapping of `len` bytes over an open
        // fd; the pointer is validated against MAP_FAILED below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr)
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        // SAFETY: `ptr`/`len` came from a successful map_shared call and
        // are unmapped exactly once (from ShmMap::drop).
        unsafe {
            munmap(ptr, len);
        }
    }
}

/// A `MAP_SHARED` memory mapping of a regular file. The mapping stays
/// valid until drop even if the file is unlinked, so producers can
/// remove the segment name deterministically at teardown while a
/// consumer still holds payload views.
pub struct ShmMap {
    ptr: *mut u8,
    len: usize,
    /// Keeps the fd open for the mapping's lifetime (not required by
    /// POSIX, but makes the ownership explicit).
    _file: Option<File>,
}

// SAFETY: the mapping is plain shared memory; all mutation goes through
// atomics or producer/consumer-exclusive regions managed by `Ring`.
unsafe impl Send for ShmMap {}
unsafe impl Sync for ShmMap {}

impl ShmMap {
    /// Create (or truncate) `path` at `len` bytes and map it shared.
    #[cfg(unix)]
    pub fn create(path: &Path, len: usize) -> io::Result<ShmMap> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len as u64)?;
        let ptr = sys::map_shared(&file, len)?;
        Ok(ShmMap {
            ptr,
            len,
            _file: Some(file),
        })
    }

    /// Map an existing segment file shared, at its current length.
    #[cfg(unix)]
    pub fn open(path: &Path) -> io::Result<ShmMap> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if len < RING_HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment shorter than the ring header",
            ));
        }
        let ptr = sys::map_shared(&file, len)?;
        Ok(ShmMap {
            ptr,
            len,
            _file: Some(file),
        })
    }

    /// Shared mappings need mmap; on non-unix targets the transport
    /// falls back to TCP.
    #[cfg(not(unix))]
    pub fn create(_path: &Path, _len: usize) -> io::Result<ShmMap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory segments need a unix mmap",
        ))
    }

    /// See [`ShmMap::create`].
    #[cfg(not(unix))]
    pub fn open(_path: &Path) -> io::Result<ShmMap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory segments need a unix mmap",
        ))
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a created map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for ShmMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

/// A stable memory region a [`Ring`] can live in: either a
/// cross-process [`ShmMap`] or a process-local heap buffer (tests, and
/// the in-process bench baseline).
#[derive(Clone)]
pub struct RingMem {
    ptr: *mut u8,
    len: usize,
    // Never read — holds the mapping/allocation alive behind `ptr`.
    #[allow(dead_code)]
    backing: Backing,
}

// The variants' payloads are never read — they exist to keep the
// mapping (or heap allocation) alive for as long as `ptr` is reachable.
#[allow(dead_code)]
#[derive(Clone)]
enum Backing {
    Map(Arc<ShmMap>),
    // The Vec<u64> guarantees 8-aligned storage; it is never touched
    // through the Arc again, only through `ptr`.
    Heap(Arc<Vec<u64>>),
}

// SAFETY: all access goes through atomics or regions the ring protocol
// makes exclusive to one side.
unsafe impl Send for RingMem {}
unsafe impl Sync for RingMem {}

impl RingMem {
    /// Wrap a shared mapping.
    pub fn from_map(map: Arc<ShmMap>) -> RingMem {
        RingMem {
            ptr: map.ptr,
            len: map.len,
            backing: Backing::Map(map),
        }
    }

    /// Allocate a process-local 8-aligned region of `len` bytes.
    pub fn heap(len: usize) -> RingMem {
        let words = len.div_ceil(8);
        let buf = Arc::new(vec![0u64; words]);
        RingMem {
            ptr: buf.as_ptr() as *mut u8,
            len,
            backing: Backing::Heap(buf),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn atomic(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.len && off % 8 == 0);
        // SAFETY: in-bounds, 8-aligned (header offsets are multiples of
        // 8 and both backings are 8-aligned), and only ever accessed as
        // an atomic from here on.
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    fn read_u64(&self, off: usize) -> u64 {
        self.atomic(off).load(Ordering::Relaxed)
    }

    fn write_u64(&self, off: usize, v: u64) {
        self.atomic(off).store(v, Ordering::Relaxed);
    }

    /// Copy `src` into the region at `off`. Producer-exclusive space.
    fn write_bytes(&self, off: usize, src: &[u8]) {
        debug_assert!(off + src.len() <= self.len);
        // SAFETY: in-bounds; the ring protocol gives the producer
        // exclusive ownership of unpublished arena space.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(off), src.len());
        }
    }

    /// Borrow `len` bytes at `off`. Published-record space: immutable
    /// from publication until release.
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        assert!(off + len <= self.len, "region slice out of bounds");
        // SAFETY: in-bounds; published payloads are immutable until the
        // consumer releases them, which requires dropping this borrow's
        // owner first.
        unsafe { std::slice::from_raw_parts(self.ptr.add(off), len) }
    }
}

/// Descriptor of one staged record, as published through the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordDesc {
    /// Buffer-key name hash.
    pub name: u64,
    /// Buffer-key version.
    pub version: u64,
    /// Buffer-key piece (owner client packed in the upper half).
    pub piece: u64,
    /// Registering client id.
    pub owner: u32,
}

/// A popped record: the descriptor plus where its payload lives.
#[derive(Clone, Copy, Debug)]
pub struct Record {
    /// The published descriptor.
    pub desc: RecordDesc,
    /// Sequence number (0-based publication order).
    pub seq: u64,
    /// Payload offset inside the arena (relative to the region start).
    pub off: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Allocation range (absolute cursors) to hand to [`Ring::release`].
    pub range: (u64, u64),
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// Every descriptor slot is occupied.
    SlotsFull,
    /// The arena cannot hold the payload until the consumer releases
    /// space.
    ArenaFull,
    /// The payload can never fit this arena; the caller must fall back
    /// to the wire path.
    TooBig,
}

/// Errors attaching to an existing segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttachError {
    /// Magic or layout version mismatch.
    BadHeader(&'static str),
    /// Region too small for the declared geometry.
    Truncated,
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::BadHeader(what) => write!(f, "bad segment header: {what}"),
            AttachError::Truncated => write!(f, "segment shorter than its declared geometry"),
        }
    }
}

/// The SPSC descriptor ring over a [`RingMem`] region.
///
/// Layout: 64-byte header (magic, layout version, slot count, arena
/// length, `head`/`tail` sequence cursors, `alloc`/`released` byte
/// cursors), `slots` 64-byte descriptors, then the 8-aligned circular
/// payload arena. `head`/`tail` and `released` are the cross-process
/// synchronization points; everything else is single-writer.
pub struct Ring {
    mem: RingMem,
    slots: u64,
    arena_off: usize,
    arena_len: u64,
    /// Consumer-side out-of-order release tracking: dropped payload
    /// ranges waiting to become the contiguous prefix of `released`.
    pending_release: Mutex<std::collections::BTreeMap<u64, u64>>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ring({} slots, {} B arena, {} B in use)",
            self.slots,
            self.arena_len,
            self.in_use()
        )
    }
}

impl Ring {
    /// Region bytes needed for `slots` descriptors over an
    /// `arena_len`-byte arena.
    pub fn required_len(slots: u32, arena_len: u64) -> usize {
        RING_HEADER_BYTES + slots as usize * DESC_BYTES + arena_len as usize
    }

    /// Initialize a fresh ring in `mem` (producer side).
    ///
    /// # Panics
    /// Panics when the region is too small for the geometry or the
    /// arena length is not a multiple of 8.
    pub fn create(mem: RingMem, slots: u32, arena_len: u64) -> Ring {
        assert!(slots > 0, "ring needs at least one slot");
        assert_eq!(arena_len % 8, 0, "arena length must be 8-aligned");
        assert!(
            mem.len() >= Self::required_len(slots, arena_len),
            "region too small for ring geometry"
        );
        mem.write_u64(OFF_LAYOUT, RING_LAYOUT_VERSION);
        mem.write_u64(OFF_SLOTS, slots as u64);
        mem.write_u64(OFF_ARENA_LEN, arena_len);
        mem.write_u64(OFF_HEAD, 0);
        mem.write_u64(OFF_TAIL, 0);
        mem.write_u64(OFF_ALLOC, 0);
        mem.write_u64(OFF_RELEASED, 0);
        // Magic last, with a release store: an attacher that sees the
        // magic sees the whole header.
        mem.atomic(OFF_MAGIC)
            .store(SEGMENT_MAGIC, Ordering::Release);
        Ring {
            arena_off: RING_HEADER_BYTES + slots as usize * DESC_BYTES,
            slots: slots as u64,
            arena_len,
            mem,
            pending_release: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Attach to a ring another process created in `mem` (consumer
    /// side). Validates the header before trusting any geometry.
    pub fn attach(mem: RingMem) -> Result<Ring, AttachError> {
        if mem.len() < RING_HEADER_BYTES {
            return Err(AttachError::Truncated);
        }
        if mem.atomic(OFF_MAGIC).load(Ordering::Acquire) != SEGMENT_MAGIC {
            return Err(AttachError::BadHeader("magic"));
        }
        if mem.read_u64(OFF_LAYOUT) != RING_LAYOUT_VERSION {
            return Err(AttachError::BadHeader("layout version"));
        }
        let slots = mem.read_u64(OFF_SLOTS);
        let arena_len = mem.read_u64(OFF_ARENA_LEN);
        if slots == 0 || arena_len % 8 != 0 {
            return Err(AttachError::BadHeader("geometry"));
        }
        let needed = Ring::required_len(
            u32::try_from(slots).map_err(|_| AttachError::BadHeader("geometry"))?,
            arena_len,
        );
        if mem.len() < needed {
            return Err(AttachError::Truncated);
        }
        Ok(Ring {
            arena_off: RING_HEADER_BYTES + slots as usize * DESC_BYTES,
            slots,
            arena_len,
            mem,
            pending_release: Mutex::new(std::collections::BTreeMap::new()),
        })
    }

    /// The underlying region (for payload views).
    pub fn mem(&self) -> &RingMem {
        &self.mem
    }

    /// Descriptor slot count.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Arena capacity in bytes.
    pub fn arena_len(&self) -> u64 {
        self.arena_len
    }

    fn desc_off(&self, seq: u64) -> usize {
        RING_HEADER_BYTES + (seq % self.slots) as usize * DESC_BYTES
    }

    /// Publish a record (producer side). Returns the record's sequence
    /// number.
    pub fn push(&self, desc: &RecordDesc, payload: &[u8]) -> Result<u64, PushError> {
        // Every record consumes at least 8 bytes so allocation ranges
        // are strictly increasing — release tracking keys on the range
        // start.
        let need = ((payload.len() as u64 + 7) & !7).max(8);
        if need > self.arena_len {
            return Err(PushError::TooBig);
        }
        let head = self.mem.read_u64(OFF_HEAD);
        let tail = self.mem.atomic(OFF_TAIL).load(Ordering::Acquire);
        if head - tail >= self.slots {
            return Err(PushError::SlotsFull);
        }
        // Bump-allocate, padding past the arena end so a payload never
        // wraps (keeps payload views contiguous and 8-aligned).
        let alloc = self.mem.read_u64(OFF_ALLOC);
        let at = alloc % self.arena_len;
        let start = if at + need <= self.arena_len {
            alloc
        } else {
            alloc + (self.arena_len - at)
        };
        let end = start + need;
        let released = self.mem.atomic(OFF_RELEASED).load(Ordering::Acquire);
        if end - released > self.arena_len {
            return Err(PushError::ArenaFull);
        }
        let off = self.arena_off + (start % self.arena_len) as usize;
        self.mem.write_bytes(off, payload);
        let d = self.desc_off(head);
        self.mem.write_u64(d, desc.name);
        self.mem.write_u64(d + 8, desc.version);
        self.mem.write_u64(d + 16, desc.piece);
        self.mem.write_u64(d + 24, desc.owner as u64);
        self.mem.write_u64(d + 32, off as u64);
        self.mem.write_u64(d + 40, payload.len() as u64);
        self.mem.write_u64(d + 48, alloc);
        self.mem.write_u64(d + 56, end);
        self.mem.write_u64(OFF_ALLOC, end);
        self.mem.atomic(OFF_HEAD).store(head + 1, Ordering::Release);
        Ok(head)
    }

    fn read_record(&self, seq: u64) -> Record {
        let d = self.desc_off(seq);
        Record {
            desc: RecordDesc {
                name: self.mem.read_u64(d),
                version: self.mem.read_u64(d + 8),
                piece: self.mem.read_u64(d + 16),
                owner: self.mem.read_u64(d + 24) as u32,
            },
            seq,
            off: self.mem.read_u64(d + 32) as usize,
            len: self.mem.read_u64(d + 40) as usize,
            range: (self.mem.read_u64(d + 48), self.mem.read_u64(d + 56)),
        }
    }

    /// Consume the next record (consumer side). `None` when empty. The
    /// caller must eventually [`Ring::release`] the record's range.
    pub fn pop(&self) -> Option<Record> {
        let tail = self.mem.read_u64(OFF_TAIL);
        let head = self.mem.atomic(OFF_HEAD).load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let rec = self.read_record(tail);
        self.mem.atomic(OFF_TAIL).store(tail + 1, Ordering::Release);
        Some(rec)
    }

    /// Records published but not yet consumed (producer side, used to
    /// resend over the wire when the consumer never attached). The
    /// consumer must not be running while this is read.
    pub fn unconsumed(&self) -> Vec<Record> {
        let tail = self.mem.atomic(OFF_TAIL).load(Ordering::Acquire);
        let head = self.mem.read_u64(OFF_HEAD);
        (tail..head).map(|seq| self.read_record(seq)).collect()
    }

    /// Return a consumed record's arena range (consumer side). Ranges
    /// may be released out of order; the shared `released` cursor only
    /// advances over the contiguous prefix, exactly like the allocator
    /// hands ranges out.
    pub fn release(&self, range: (u64, u64)) {
        let mut pending = self.pending_release.lock().unwrap();
        pending.insert(range.0, range.1);
        let released = self.mem.read_u64(OFF_RELEASED);
        let mut cursor = released;
        while let Some(end) = pending.remove(&cursor) {
            cursor = end;
        }
        if cursor != released {
            self.mem
                .atomic(OFF_RELEASED)
                .store(cursor, Ordering::Release);
        }
    }

    /// Arena bytes currently allocated and not yet released.
    pub fn in_use(&self) -> u64 {
        self.mem.read_u64(OFF_ALLOC) - self.mem.atomic(OFF_RELEASED).load(Ordering::Acquire)
    }

    /// Whether every published record has been consumed.
    pub fn is_drained(&self) -> bool {
        self.mem.atomic(OFF_TAIL).load(Ordering::Acquire)
            == self.mem.atomic(OFF_HEAD).load(Ordering::Acquire)
    }
}

/// A refcounted payload view inside a mapped (or heap) region, used to
/// back `insitu_util::Bytes` without copying. Dropping the region fires
/// its release callback — the consumer side uses that to return arena
/// space to the producer.
pub struct MapRegion {
    mem: RingMem,
    off: usize,
    len: usize,
    on_drop: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl MapRegion {
    /// View `len` bytes at `off` in `mem`, firing `on_drop` when the
    /// last clone of the owning `Arc` goes away.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn new(
        mem: RingMem,
        off: usize,
        len: usize,
        on_drop: Option<Box<dyn FnOnce() + Send>>,
    ) -> MapRegion {
        assert!(off + len <= mem.len(), "map region out of bounds");
        MapRegion {
            mem,
            off,
            len,
            on_drop: Mutex::new(on_drop),
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.mem.slice(self.off, self.len)
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        if let Some(f) = self.on_drop.lock().unwrap().take() {
            f();
        }
    }
}

/// Per-host fingerprint for same-host detection: the kernel boot id,
/// which is stable for every process on one booted host and differs
/// across hosts. Empty when unavailable — an empty fingerprint never
/// matches, so shared memory silently stays off.
pub fn host_fingerprint() -> String {
    std::fs::read_to_string("/proc/sys/kernel/random/boot_id")
        .map(|s| s.trim().to_string())
        .unwrap_or_default()
}

/// Directory segments live in: `/dev/shm` when the host has it (a real
/// tmpfs), the system temp directory otherwise.
pub fn segment_dir() -> PathBuf {
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// Segment file name for the directed pair `src -> dst`, tagged with
/// the creating pid (for the stale sweep) and a creator-chosen nonce
/// (so runs in one process never collide).
pub fn segment_name(pid: u32, nonce: u64, src: u32, dst: u32) -> String {
    format!("insitu-{pid}-{nonce:x}-s{src}-d{dst}")
}

/// Parse the creator pid out of a segment file name produced by
/// [`segment_name`]. `None` for foreign files.
pub fn segment_pid(name: &str) -> Option<u32> {
    name.strip_prefix("insitu-")?
        .split('-')
        .next()?
        .parse()
        .ok()
}

fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Remove segments in `dir` whose creator process is gone. Returns the
/// number removed. Used by `insitu serve` at startup so a crashed
/// earlier run cannot leak `/dev/shm` space forever.
pub fn sweep_stale(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = segment_pid(name) else {
            continue;
        };
        if !pid_alive(pid) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Remove every segment in `dir` created by `pid`. Returns the number
/// removed. Used by `insitu launch` to reap a dead joiner's segments.
pub fn reap_pid(dir: &Path, pid: u32) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if segment_pid(name) == Some(pid) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::forall;
    use std::collections::VecDeque;

    fn heap_ring(slots: u32, arena: u64) -> Ring {
        Ring::create(
            RingMem::heap(Ring::required_len(slots, arena)),
            slots,
            arena,
        )
    }

    fn desc(tag: u64) -> RecordDesc {
        RecordDesc {
            name: tag,
            version: tag.wrapping_mul(3),
            piece: tag.wrapping_mul(7),
            owner: tag as u32,
        }
    }

    fn payload(tag: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (tag as u8).wrapping_add(i as u8))
            .collect()
    }

    #[test]
    fn push_pop_roundtrip_fifo() {
        let ring = heap_ring(4, 64);
        assert_eq!(ring.push(&desc(1), &payload(1, 10)).unwrap(), 0);
        assert_eq!(ring.push(&desc(2), &payload(2, 24)).unwrap(), 1);
        let a = ring.pop().unwrap();
        assert_eq!(a.desc, desc(1));
        assert_eq!(ring.mem().slice(a.off, a.len), &payload(1, 10)[..]);
        let b = ring.pop().unwrap();
        assert_eq!(b.desc, desc(2));
        assert_eq!(ring.mem().slice(b.off, b.len), &payload(2, 24)[..]);
        assert!(ring.pop().is_none());
        assert!(ring.is_drained());
    }

    #[test]
    fn slots_full_and_arena_full_are_distinct() {
        let ring = heap_ring(2, 64);
        ring.push(&desc(1), &payload(1, 8)).unwrap();
        ring.push(&desc(2), &payload(2, 8)).unwrap();
        assert_eq!(
            ring.push(&desc(3), &payload(3, 8)),
            Err(PushError::SlotsFull)
        );
        let ring = heap_ring(8, 32);
        ring.push(&desc(1), &payload(1, 24)).unwrap();
        assert_eq!(
            ring.push(&desc(2), &payload(2, 16)),
            Err(PushError::ArenaFull)
        );
        assert_eq!(
            ring.push(&desc(3), &payload(3, 100)),
            Err(PushError::TooBig)
        );
    }

    #[test]
    fn release_reopens_arena_space_across_wraps() {
        let ring = heap_ring(4, 32);
        for round in 0..50u64 {
            let seq = ring.push(&desc(round), &payload(round, 24)).unwrap();
            assert_eq!(seq, round);
            let rec = ring.pop().unwrap();
            assert_eq!(rec.desc, desc(round));
            assert_eq!(ring.mem().slice(rec.off, rec.len), &payload(round, 24)[..]);
            // 24 B in a 32 B arena: the next push must wait for this
            // release, then wrap cleanly.
            ring.release(rec.range);
        }
        assert_eq!(ring.in_use(), 0);
    }

    #[test]
    fn out_of_order_release_advances_only_contiguously() {
        let ring = heap_ring(8, 64);
        ring.push(&desc(1), &payload(1, 16)).unwrap();
        ring.push(&desc(2), &payload(2, 16)).unwrap();
        ring.push(&desc(3), &payload(3, 16)).unwrap();
        let a = ring.pop().unwrap();
        let b = ring.pop().unwrap();
        let c = ring.pop().unwrap();
        ring.release(c.range);
        ring.release(b.range);
        // a still holds the prefix: nothing is reusable yet.
        assert_eq!(ring.in_use(), 48);
        ring.release(a.range);
        assert_eq!(ring.in_use(), 0);
    }

    #[test]
    fn attach_validates_header() {
        let mem = RingMem::heap(Ring::required_len(4, 64));
        assert_eq!(
            Ring::attach(mem.clone()).unwrap_err(),
            AttachError::BadHeader("magic")
        );
        let _ring = Ring::create(mem.clone(), 4, 64);
        assert!(Ring::attach(mem).is_ok());
        assert_eq!(
            Ring::attach(RingMem::heap(8)).unwrap_err(),
            AttachError::Truncated
        );
    }

    #[test]
    fn producer_and_consumer_views_share_one_region() {
        // Same region, two Ring instances — the cross-process shape.
        let mem = RingMem::heap(Ring::required_len(4, 256));
        let producer = Ring::create(mem.clone(), 4, 256);
        let consumer = Ring::attach(mem).unwrap();
        producer.push(&desc(9), &payload(9, 40)).unwrap();
        let rec = consumer.pop().unwrap();
        assert_eq!(rec.desc, desc(9));
        assert_eq!(consumer.mem().slice(rec.off, rec.len), &payload(9, 40)[..]);
        consumer.release(rec.range);
        // The producer observes the released space through the shared
        // header.
        assert_eq!(producer.in_use(), 0);
    }

    /// The satellite property test: arbitrary push/pop/release
    /// interleavings against a FIFO model, exercising wrap-around,
    /// slots-full and arena-full.
    #[test]
    fn ring_matches_fifo_model_under_arbitrary_interleavings() {
        forall(64, |rng| {
            let slots = rng.range_u32(1, 6);
            let arena = rng.range_u64(1, 16) * 8;
            let ring = heap_ring(slots, arena);
            // Model: queue of (tag, len); plus the set of popped but
            // unreleased records.
            let mut queued: VecDeque<(u64, usize)> = VecDeque::new();
            let mut unreleased: Vec<Record> = Vec::new();
            let mut next_tag = 0u64;
            // Shadow allocation cursor, mirroring the producer's
            // bump-with-wrap-padding arithmetic.
            let mut model_alloc = 0u64;
            for _ in 0..200 {
                match rng.range_u32(0, 3) {
                    0 => {
                        let len = rng.range_usize(0, arena as usize + 9);
                        let need = ((len as u64 + 7) & !7).max(8);
                        let at = model_alloc % arena;
                        let start = if at + need <= arena {
                            model_alloc
                        } else {
                            model_alloc + (arena - at)
                        };
                        let tag = next_tag;
                        match ring.push(&desc(tag), &payload(tag, len)) {
                            Ok(seq) => {
                                assert_eq!(seq, tag, "sequence numbers are dense");
                                queued.push_back((tag, len));
                                next_tag += 1;
                                model_alloc = start + need;
                            }
                            Err(PushError::TooBig) => {
                                assert!(need > arena);
                                // TooBig consumes no sequence number and
                                // must not poison the ring.
                            }
                            Err(PushError::SlotsFull) => {
                                assert_eq!(queued.len(), slots as usize);
                            }
                            Err(PushError::ArenaFull) => {
                                // in_use = alloc - released, so the
                                // refusal condition (end - released >
                                // arena) is checkable from outside.
                                let released = model_alloc - ring.in_use();
                                assert!(start + need - released > arena);
                            }
                        }
                    }
                    1 => match (ring.pop(), queued.pop_front()) {
                        (None, None) => {}
                        (Some(rec), Some((tag, len))) => {
                            assert_eq!(rec.desc, desc(tag), "FIFO order");
                            assert_eq!(rec.len, len);
                            assert_eq!(
                                ring.mem().slice(rec.off, rec.len),
                                &payload(tag, len)[..],
                                "payload intact at pop"
                            );
                            assert_eq!(rec.off % 8, 0, "payloads stay 8-aligned");
                            unreleased.push(rec);
                        }
                        (got, want) => {
                            panic!("ring/model disagree on emptiness: {got:?} vs {want:?}")
                        }
                    },
                    _ => {
                        if !unreleased.is_empty() {
                            let i = rng.range_usize(0, unreleased.len());
                            let rec = unreleased.swap_remove(i);
                            // Payload must still be intact right up to
                            // its release.
                            assert_eq!(
                                ring.mem().slice(rec.off, rec.len),
                                &payload(rec.desc.name, rec.len)[..],
                                "payload intact until release"
                            );
                            ring.release(rec.range);
                        }
                    }
                }
            }
            // Drain: everything still queued pops in order, and after
            // releasing everything the arena is fully reusable.
            while let Some((tag, len)) = queued.pop_front() {
                let rec = ring.pop().expect("model says non-empty");
                assert_eq!(rec.desc, desc(tag));
                assert_eq!(ring.mem().slice(rec.off, rec.len), &payload(tag, len)[..]);
                unreleased.push(rec);
            }
            assert!(ring.pop().is_none());
            for rec in unreleased.drain(..) {
                ring.release(rec.range);
            }
            assert_eq!(ring.in_use(), 0);
            assert!(ring.is_drained());
        });
    }

    #[test]
    fn unconsumed_snapshots_published_records() {
        let ring = heap_ring(8, 256);
        ring.push(&desc(1), &payload(1, 16)).unwrap();
        ring.push(&desc(2), &payload(2, 16)).unwrap();
        ring.pop().unwrap();
        let rest = ring.unconsumed();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].desc, desc(2));
        assert_eq!(
            ring.mem().slice(rest[0].off, rest[0].len),
            &payload(2, 16)[..]
        );
    }

    #[test]
    fn map_region_fires_release_on_last_drop() {
        let ring = Arc::new(heap_ring(4, 64));
        ring.push(&desc(5), &payload(5, 16)).unwrap();
        let rec = ring.pop().unwrap();
        let r2 = Arc::clone(&ring);
        let region = Arc::new(MapRegion::new(
            ring.mem().clone(),
            rec.off,
            rec.len,
            Some(Box::new(move || r2.release(rec.range))),
        ));
        assert_eq!(region.as_slice(), &payload(5, 16)[..]);
        let clone = Arc::clone(&region);
        drop(region);
        assert_eq!(ring.in_use(), 16, "space held while a view lives");
        drop(clone);
        assert_eq!(ring.in_use(), 0, "last drop releases the range");
    }

    #[cfg(unix)]
    #[test]
    fn file_backed_ring_round_trips_and_survives_unlink() {
        let dir = segment_dir();
        let path = dir.join(segment_name(std::process::id(), 0xfeed, 0, 1));
        let len = Ring::required_len(4, 4096);
        let producer_map = Arc::new(ShmMap::create(&path, len).unwrap());
        let producer = Ring::create(RingMem::from_map(producer_map), 4, 4096);
        // A second, independent mapping of the same file — as the
        // consumer process would make.
        let consumer_map = Arc::new(ShmMap::open(&path).unwrap());
        let consumer = Ring::attach(RingMem::from_map(consumer_map)).unwrap();
        producer.push(&desc(3), &payload(3, 128)).unwrap();
        // Unlink while both mappings live: POSIX keeps them valid.
        std::fs::remove_file(&path).unwrap();
        let rec = consumer.pop().unwrap();
        assert_eq!(rec.desc, desc(3));
        assert_eq!(consumer.mem().slice(rec.off, rec.len), &payload(3, 128)[..]);
        consumer.release(rec.range);
        assert_eq!(producer.in_use(), 0, "release crosses the two mappings");
    }

    #[test]
    fn segment_names_parse_and_sweep_reaps_dead_pids() {
        assert_eq!(
            segment_pid(&segment_name(1234, 7, 0, 1)),
            Some(1234),
            "round-trip"
        );
        assert_eq!(segment_pid("not-ours"), None);
        let dir = std::env::temp_dir().join(format!("insitu-shm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A segment from a pid that cannot exist, one from us, and a
        // foreign file.
        let dead = dir.join(segment_name(u32::MAX - 1, 1, 0, 1));
        let live = dir.join(segment_name(std::process::id(), 2, 1, 0));
        let foreign = dir.join("unrelated.txt");
        for p in [&dead, &live, &foreign] {
            std::fs::write(p, b"x").unwrap();
        }
        assert_eq!(sweep_stale(&dir), 1);
        assert!(!dead.exists(), "dead pid swept");
        assert!(live.exists(), "live pid kept");
        assert!(foreign.exists(), "foreign files untouched");
        // reap_pid removes ours regardless of liveness.
        assert_eq!(reap_pid(&dir, std::process::id()), 1);
        assert!(!live.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
