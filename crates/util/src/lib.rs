//! Std-only shared utilities for the insitu workspace.
//!
//! The workspace builds with no network access, so the external crates a
//! system like this would normally pull in are replaced by small local
//! equivalents:
//!
//! - [`Bytes`] — a cheaply clonable, immutable byte buffer (replaces
//!   `bytes::Bytes` for the subset of its API the workspace uses);
//! - [`channel`] — an unbounded MPMC channel with `len`/`recv_timeout`
//!   (replaces `crossbeam::channel` for the mailbox use case);
//! - [`rng::SplitMix64`] — a tiny seeded PRNG (replaces `rand` in tests
//!   and synthetic workloads);
//! - [`check`] — a deterministic property-test driver (replaces
//!   `proptest`: seeded random cases, plain `assert!`s, reproducible
//!   failures);
//! - [`Poller`] — a readiness poller over non-blocking `TcpStream`s
//!   (replaces `mio`/`epoll` for the `insitu-net` reactor's needs);
//! - [`shm`] — file-backed shared-memory mappings and the SPSC
//!   descriptor ring of the intra-host data plane (replaces `memmap2`
//!   with a minimal self-declared `mmap` shim).

#![warn(missing_docs)]

pub mod bytes;
pub mod channel;
pub mod check;
pub mod poller;
pub mod rng;
pub mod shm;

pub use bytes::Bytes;
pub use channel::{unbounded, Receiver, RecvTimeoutError, SendError, Sender};
pub use poller::Poller;
pub use rng::SplitMix64;
