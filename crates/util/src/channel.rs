//! An unbounded multi-producer multi-consumer channel.
//!
//! Replaces `crossbeam::channel` for the mailbox use case: senders are
//! `Clone + Send + Sync`, `send` never blocks, and receivers support
//! `len`, `try_recv` and `recv_timeout`. Disconnection (every sender
//! dropped) is reported so receivers do not block forever.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
///
/// The mailbox pattern keeps a receiver alive for the channel's lifetime,
/// so in practice sends only fail during teardown.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender was dropped and the queue is drained.
    Disconnected,
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // disconnection.
            let _guard = self.chan.queue.lock().unwrap();
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; never blocks.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.chan.queue.lock().unwrap();
        q.push_back(value);
        drop(q);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    fn disconnected(&self) -> bool {
        self.chan.senders.load(Ordering::Acquire) == 0
    }

    /// Blocking receive; `Err` when every sender is dropped and the queue
    /// is drained.
    pub fn recv(&self) -> Result<T, RecvTimeoutError> {
        let mut q = self.chan.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            q = self.chan.ready.wait(q).unwrap();
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.chan.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self.chan.ready.wait_timeout(q, deadline - now).unwrap();
            q = guard;
            if res.timed_out() {
                return match q.pop_front() {
                    Some(v) => Ok(v),
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.chan.queue.lock().unwrap().pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.chan.queue.lock().unwrap().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn timeout_and_try_recv() {
        let (_tx, rx) = unbounded::<u8>();
        assert!(rx.try_recv().is_none());
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap_err(), RecvTimeoutError::Disconnected);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 42);
        h.join().unwrap();
    }

    #[test]
    fn many_senders_lossless() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 800);
    }
}
