//! A tiny seeded pseudo-random number generator (SplitMix64).
//!
//! Replaces `rand` for synthetic workloads and randomized tests. The
//! generator is deterministic for a given seed, so every randomized test
//! in the workspace is reproducible by construction.

/// SplitMix64: fast, well-distributed, and trivially seedable.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all() {
        let mut r = SplitMix64::new(3);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*r.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }
}
