//! Morton (Z-order) curve, the ablation alternative to Hilbert.
//!
//! Morton interleaving is cheaper to compute but clusters space worse: the
//! curve takes long jumps at power-of-two boundaries, so a bounding box
//! decomposes into more index spans and neighborhoods spread over more DHT
//! cores (measured by the `ablation_sfc` bench).

use crate::SpaceFillingCurve;
use insitu_domain::{Pt, MAX_DIMS};

/// An n-dimensional Morton (Z-order) curve of side `2^order`.
#[derive(Clone, Copy, Debug)]
pub struct MortonCurve {
    ndim: usize,
    order: u32,
}

impl MortonCurve {
    /// Create a curve over `[0, 2^order)^ndim`.
    ///
    /// # Panics
    /// Same constraints as [`crate::HilbertCurve::new`].
    pub fn new(ndim: usize, order: u32) -> Self {
        assert!((1..=MAX_DIMS).contains(&ndim), "bad ndim {ndim}");
        assert!(order >= 1, "order must be >= 1");
        assert!(ndim as u32 * order <= 128, "index exceeds u128");
        MortonCurve { ndim, order }
    }
}

impl SpaceFillingCurve for MortonCurve {
    fn ndim(&self) -> usize {
        self.ndim
    }

    fn order(&self) -> u32 {
        self.order
    }

    #[allow(clippy::needless_range_loop)]
    fn index_of(&self, p: &[u64]) -> u128 {
        debug_assert!(p.len() >= self.ndim);
        let side = self.side();
        let mut h: u128 = 0;
        for k in (0..self.order).rev() {
            for i in 0..self.ndim {
                assert!(
                    p[i] < side,
                    "coordinate {} out of range (side {side})",
                    p[i]
                );
                h = (h << 1) | ((p[i] >> k) & 1) as u128;
            }
        }
        h
    }

    fn point_of(&self, mut idx: u128) -> Pt {
        assert!(idx < self.index_count(), "index out of range");
        let mut p = [0u64; MAX_DIMS];
        for k in 0..self.order {
            for i in (0..self.ndim).rev() {
                p[i] |= ((idx & 1) as u64) << k;
                idx >>= 1;
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_z_order_2d() {
        let m = MortonCurve::new(2, 1);
        // (0,0) -> 0, (0,1) -> 1, (1,0) -> 2, (1,1) -> 3.
        assert_eq!(m.index_of(&[0, 0]), 0);
        assert_eq!(m.index_of(&[0, 1]), 1);
        assert_eq!(m.index_of(&[1, 0]), 2);
        assert_eq!(m.index_of(&[1, 1]), 3);
    }

    #[test]
    fn bijective_2d_order_3() {
        let m = MortonCurve::new(2, 3);
        let mut seen = [false; 64];
        for x in 0..8u64 {
            for y in 0..8u64 {
                let i = m.index_of(&[x, y]) as usize;
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(m.point_of(i as u128)[..2], [x, y]);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bijective_3d_order_2() {
        let m = MortonCurve::new(3, 2);
        let mut seen = std::collections::HashSet::new();
        for x in 0..4u64 {
            for y in 0..4u64 {
                for z in 0..4u64 {
                    assert!(seen.insert(m.index_of(&[x, y, z])));
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn subtree_ranges_are_contiguous() {
        // Every aligned 2^k cube occupies a contiguous index range — the
        // property the span decomposition relies on.
        let m = MortonCurve::new(2, 4);
        // The 4x4 cube at (8, 4): prefix cells.
        let mut idx: Vec<u128> = Vec::new();
        for x in 8..12u64 {
            for y in 4..8u64 {
                idx.push(m.index_of(&[x, y]));
            }
        }
        idx.sort_unstable();
        assert_eq!(idx[idx.len() - 1] - idx[0] + 1, 16);
    }

    #[test]
    fn roundtrip_large_order() {
        let m = MortonCurve::new(4, 16);
        for &p in &[[0u64, 1, 2, 3], [65535, 0, 32768, 12345]] {
            assert_eq!(m.point_of(m.index_of(&p))[..4], p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_big_coordinate() {
        MortonCurve::new(2, 2).index_of(&[4, 0]);
    }
}
