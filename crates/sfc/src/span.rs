//! Decomposition of a bounding box into contiguous curve-index spans.
//!
//! A CoDS `get()` translates its geometric descriptor into "a set of spans
//! of the linearized index space" (paper §IV.A) and routes each span to the
//! DHT core owning that interval. Both Hilbert and Morton curves have the
//! property that every aligned `2^k`-sided subcube occupies a contiguous
//! index range, so the decomposition is a recursive descent over the
//! implicit `2^ndim`-ary tree: subtrees fully inside the query emit their
//! whole range, partial subtrees recurse, disjoint subtrees are pruned.

use crate::SpaceFillingCurve;
use insitu_domain::{BoundingBox, MAX_DIMS};

/// A contiguous, inclusive interval of curve indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Span {
    /// First index of the interval.
    pub first: u128,
    /// Last index of the interval (inclusive).
    pub last: u128,
}

impl Span {
    /// Number of indices covered.
    pub fn len(&self) -> u128 {
        self.last - self.first + 1
    }

    /// Spans are never empty; provided for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Intersection with another span.
    pub fn intersect(&self, other: &Span) -> Option<Span> {
        let first = self.first.max(other.first);
        let last = self.last.min(other.last);
        (first <= last).then_some(Span { first, last })
    }
}

/// Decompose `query` into the minimal set of maximal contiguous index
/// spans under `curve`, sorted ascending.
///
/// # Panics
/// Panics if `query`'s rank differs from the curve's or it exceeds the
/// curve's domain.
pub fn spans_of_box(curve: &dyn SpaceFillingCurve, query: &BoundingBox) -> Vec<Span> {
    assert_eq!(query.ndim(), curve.ndim(), "query rank mismatch");
    let side = curve.side();
    for d in 0..query.ndim() {
        assert!(query.ub(d) < side, "query exceeds curve domain");
    }
    let mut out = Vec::new();
    descend(curve, query, 0, 0, &mut out);
    out.sort_unstable();
    merge_spans(&mut out);
    out
}

fn descend(
    curve: &dyn SpaceFillingCurve,
    query: &BoundingBox,
    prefix: u128,
    depth: u32,
    out: &mut Vec<Span>,
) {
    let n = curve.ndim() as u32;
    let order = curve.order();
    let cell_bits = n * (order - depth);
    let first = prefix << cell_bits;
    // The subtree's cells form an aligned cube of side 2^(order-depth)
    // containing the point of its first index.
    let side = 1u64 << (order - depth);
    let rep = curve.point_of(first);
    let mut lb = [0u64; MAX_DIMS];
    let mut ub = [0u64; MAX_DIMS];
    for d in 0..curve.ndim() {
        lb[d] = rep[d] & !(side - 1);
        ub[d] = lb[d] + side - 1;
    }
    let cube = BoundingBox::new(&lb[..curve.ndim()], &ub[..curve.ndim()]);
    let Some(overlap) = cube.intersect(query) else {
        return;
    };
    if overlap == cube {
        out.push(Span {
            first,
            last: first + (1u128 << cell_bits) - 1,
        });
        return;
    }
    debug_assert!(depth < order, "leaf cells are fully in or out");
    for child in 0..(1u128 << n) {
        descend(curve, query, (prefix << n) | child, depth + 1, out);
    }
}

/// The inverse of [`spans_of_box`]: decompose a contiguous index span
/// into the minimal set of maximal axis-aligned boxes it covers. This is
/// how a DHT core materializes "the distinct data region of the
/// application data domain" its interval is responsible for (paper
/// §IV.A).
pub fn boxes_of_span(curve: &dyn SpaceFillingCurve, span: &Span) -> Vec<BoundingBox> {
    assert!(span.last < curve.index_count(), "span exceeds curve range");
    let mut out = Vec::new();
    boxes_descend(curve, span, 0, 0, &mut out);
    out
}

fn boxes_descend(
    curve: &dyn SpaceFillingCurve,
    span: &Span,
    prefix: u128,
    depth: u32,
    out: &mut Vec<BoundingBox>,
) {
    let n = curve.ndim() as u32;
    let order = curve.order();
    let cell_bits = n * (order - depth);
    let first = prefix << cell_bits;
    let last = first + (1u128 << cell_bits) - 1;
    if span.intersect(&Span { first, last }).is_none() {
        return;
    }
    if span.first <= first && last <= span.last {
        // Whole subtree inside the span: emit its cube.
        let side = 1u64 << (order - depth);
        let rep = curve.point_of(first);
        let mut lb = [0u64; MAX_DIMS];
        let mut ub = [0u64; MAX_DIMS];
        for d in 0..curve.ndim() {
            lb[d] = rep[d] & !(side - 1);
            ub[d] = lb[d] + side - 1;
        }
        out.push(BoundingBox::new(&lb[..curve.ndim()], &ub[..curve.ndim()]));
        return;
    }
    debug_assert!(depth < order);
    for child in 0..(1u128 << n) {
        boxes_descend(curve, span, (prefix << n) | child, depth + 1, out);
    }
}

/// Merge adjacent or overlapping spans in a sorted list, in place.
pub fn merge_spans(spans: &mut Vec<Span>) {
    debug_assert!(
        spans.windows(2).all(|w| w[0] <= w[1]),
        "spans must be sorted"
    );
    let mut w = 0;
    for i in 1..spans.len() {
        if spans[i].first <= spans[w].last.saturating_add(1) {
            spans[w].last = spans[w].last.max(spans[i].last);
        } else {
            w += 1;
            spans[w] = spans[i];
        }
    }
    spans.truncate(if spans.is_empty() { 0 } else { w + 1 });
}

/// Total number of indices covered by a span set.
pub fn total_len(spans: &[Span]) -> u128 {
    spans.iter().map(Span::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HilbertCurve, MortonCurve};

    fn check_exact_cover(curve: &dyn SpaceFillingCurve, query: &BoundingBox) {
        let spans = spans_of_box(curve, query);
        // Volume matches.
        assert_eq!(total_len(&spans), query.num_cells());
        // Sorted, disjoint, non-adjacent (maximal).
        for w in spans.windows(2) {
            assert!(w[0].last + 1 < w[1].first, "spans not maximal: {w:?}");
        }
        // Every covered index maps into the box, every box point is covered.
        for s in &spans {
            assert!(query.contains_point(&curve.point_of(s.first)));
            assert!(query.contains_point(&curve.point_of(s.last)));
        }
        for p in query.iter_points() {
            let i = curve.index_of(&p[..curve.ndim()]);
            assert!(
                spans.iter().any(|s| s.first <= i && i <= s.last),
                "point {p:?} (index {i}) uncovered"
            );
        }
    }

    #[test]
    fn full_domain_is_single_span() {
        let h = HilbertCurve::new(2, 3);
        let full = BoundingBox::from_sizes(&[8, 8]);
        let spans = spans_of_box(&h, &full);
        assert_eq!(spans, vec![Span { first: 0, last: 63 }]);
    }

    #[test]
    fn single_cell_is_single_span() {
        let h = HilbertCurve::new(2, 3);
        let cell = BoundingBox::new(&[5, 2], &[5, 2]);
        let spans = spans_of_box(&h, &cell);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len(), 1);
        assert_eq!(spans[0].first, h.index_of(&[5, 2]));
    }

    #[test]
    fn hilbert_2d_exact_cover_various_boxes() {
        let h = HilbertCurve::new(2, 4);
        for bb in [
            BoundingBox::new(&[0, 0], &[7, 3]),
            BoundingBox::new(&[3, 3], &[12, 9]),
            BoundingBox::new(&[1, 14], &[14, 15]),
            BoundingBox::new(&[0, 0], &[15, 15]),
        ] {
            check_exact_cover(&h, &bb);
        }
    }

    #[test]
    fn morton_2d_exact_cover() {
        let m = MortonCurve::new(2, 4);
        check_exact_cover(&m, &BoundingBox::new(&[2, 5], &[11, 13]));
    }

    #[test]
    fn hilbert_3d_exact_cover() {
        let h = HilbertCurve::new(3, 3);
        check_exact_cover(&h, &BoundingBox::new(&[1, 0, 2], &[6, 7, 5]));
    }

    #[test]
    fn paper_figure6_shape_8x8() {
        // Fig. 6: an 8x8 domain linearized and divided across 4 DHT cores
        // of 16 indices each. A quadrant-aligned box must be one span.
        let h = HilbertCurve::new(2, 3);
        let quadrant = BoundingBox::new(&[0, 0], &[3, 3]);
        let spans = spans_of_box(&h, &quadrant);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len(), 16);
    }

    #[test]
    fn merge_spans_merges_adjacent() {
        let mut v = vec![
            Span { first: 0, last: 3 },
            Span { first: 4, last: 7 },
            Span {
                first: 10,
                last: 11,
            },
        ];
        merge_spans(&mut v);
        assert_eq!(
            v,
            vec![
                Span { first: 0, last: 7 },
                Span {
                    first: 10,
                    last: 11
                }
            ]
        );
    }

    #[test]
    fn merge_spans_handles_empty() {
        let mut v: Vec<Span> = Vec::new();
        merge_spans(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn span_intersect() {
        let a = Span { first: 0, last: 10 };
        let b = Span { first: 5, last: 20 };
        assert_eq!(a.intersect(&b), Some(Span { first: 5, last: 10 }));
        let c = Span {
            first: 11,
            last: 12,
        };
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn boxes_of_span_roundtrip() {
        // spans(box) -> boxes(span) covers exactly the original cells.
        let h = HilbertCurve::new(2, 4);
        let query = BoundingBox::new(&[3, 5], &[12, 11]);
        let spans = spans_of_box(&h, &query);
        let mut covered = std::collections::HashSet::new();
        for s in &spans {
            for b in boxes_of_span(&h, s) {
                for p in b.iter_points() {
                    assert!(covered.insert((p[0], p[1])), "cell covered twice at {p:?}");
                    assert!(query.contains_point(&p), "cell {p:?} outside query");
                }
            }
        }
        assert_eq!(covered.len() as u128, query.num_cells());
    }

    #[test]
    fn boxes_of_span_volume_matches_length() {
        let h = HilbertCurve::new(3, 3);
        for s in [
            Span { first: 0, last: 63 },
            Span {
                first: 17,
                last: 93,
            },
            Span {
                first: 511,
                last: 511,
            },
        ] {
            let boxes = boxes_of_span(&h, &s);
            let vol: u128 = boxes.iter().map(|b| b.num_cells()).sum();
            assert_eq!(vol, s.len(), "{s:?}");
        }
    }

    #[test]
    fn dht_interval_region_figure6() {
        // Fig. 6: core 0 of four owns indices [0, 15] of the 8x8 domain —
        // exactly the first Hilbert quadrant.
        let h = HilbertCurve::new(2, 3);
        let boxes = boxes_of_span(&h, &Span { first: 0, last: 15 });
        assert_eq!(boxes, vec![BoundingBox::new(&[0, 0], &[3, 3])]);
    }

    #[test]
    #[should_panic(expected = "exceeds curve domain")]
    fn rejects_oversized_query() {
        let h = HilbertCurve::new(2, 3);
        spans_of_box(&h, &BoundingBox::new(&[0, 0], &[8, 8]));
    }

    #[test]
    fn hilbert_fewer_spans_than_morton_typically() {
        // Locality ablation: across a family of offset boxes the Hilbert
        // decomposition should not need more spans in aggregate.
        let h = HilbertCurve::new(2, 5);
        let m = MortonCurve::new(2, 5);
        let mut hs = 0usize;
        let mut ms = 0usize;
        for off in 0..8u64 {
            let b = BoundingBox::new(&[off, off + 1], &[off + 12, off + 9]);
            hs += spans_of_box(&h, &b).len();
            ms += spans_of_box(&m, &b).len();
        }
        assert!(hs <= ms, "hilbert {hs} spans vs morton {ms}");
    }
}
