//! Space-filling-curve linearization of Cartesian domains.
//!
//! CoDS indexes the application data domain by linearizing n-dimensional
//! Cartesian coordinates into a 1-dimensional index space, which is then
//! divided into intervals assigned to DHT cores (paper §IV.A, Fig. 6). The
//! paper uses the Hilbert curve; we provide [`HilbertCurve`] plus
//! [`MortonCurve`] as an ablation alternative, and [`span::spans_of_box`]
//! to convert a geometric descriptor (bounding box) into the set of
//! contiguous index spans that CoDS queries are routed by.

#![warn(missing_docs)]

pub mod hilbert;
pub mod morton;
pub mod span;

pub use hilbert::HilbertCurve;
pub use morton::MortonCurve;
pub use span::{boxes_of_span, spans_of_box, Span};

use insitu_domain::Pt;

/// A bijection between the lattice `[0, 2^order)^ndim` and the index range
/// `[0, 2^(order*ndim))`.
pub trait SpaceFillingCurve: Send + Sync {
    /// Number of dimensions.
    fn ndim(&self) -> usize;

    /// Bits per dimension; the curve covers a side of `2^order` cells.
    fn order(&self) -> u32;

    /// Linear index of a lattice point.
    ///
    /// # Panics
    /// Panics if a coordinate is out of the curve's range.
    fn index_of(&self, p: &[u64]) -> u128;

    /// Lattice point of a linear index.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    fn point_of(&self, idx: u128) -> Pt;

    /// One past the largest valid index: `2^(order*ndim)`.
    fn index_count(&self) -> u128 {
        1u128 << (self.order() as u128 * self.ndim() as u128)
    }

    /// Side length of the covered cube.
    fn side(&self) -> u64 {
        1u64 << self.order()
    }
}

/// Mean index distance between spatially adjacent points.
///
/// Note this is *not* the metric on which Hilbert beats Morton (Morton has
/// a lower mean 1-step jump in 2-D); the DHT-relevant metric is the number
/// of spans a box query decomposes into ([`span::spans_of_box`]), where
/// Hilbert's superior clustering shows. Both are reported by the
/// `ablation_sfc` bench.
pub fn neighbor_locality(curve: &dyn SpaceFillingCurve, samples: u64) -> f64 {
    let side = curve.side();
    let n = curve.ndim();
    let mut total: f64 = 0.0;
    let mut count: u64 = 0;
    // Deterministic LCG so the score is reproducible without rand.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    let mut p = vec![0u64; n];
    for _ in 0..samples {
        for c in p.iter_mut() {
            *c = next() % side;
        }
        let base = curve.index_of(&p);
        for d in 0..n {
            if p[d] + 1 >= side {
                continue;
            }
            p[d] += 1;
            let adj = curve.index_of(&p);
            p[d] -= 1;
            total += base.abs_diff(adj) as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_scores_are_finite_and_positive() {
        let h = HilbertCurve::new(2, 6);
        let m = MortonCurve::new(2, 6);
        let lh = neighbor_locality(&h, 256);
        let lm = neighbor_locality(&m, 256);
        assert!(lh > 0.0 && lh.is_finite());
        assert!(lm > 0.0 && lm.is_finite());
    }

    #[test]
    fn hilbert_clusters_boxes_better_than_morton() {
        // The DHT-relevant locality metric: total spans over a family of
        // query boxes (Moon et al., "Analysis of the clustering properties
        // of the Hilbert space-filling curve").
        let h = HilbertCurve::new(2, 6);
        let m = MortonCurve::new(2, 6);
        let mut hs = 0;
        let mut ms = 0;
        for off in 0..16u64 {
            let b = insitu_domain::BoundingBox::new(&[off, off / 2], &[off + 17, off / 2 + 11]);
            hs += span::spans_of_box(&h, &b).len();
            ms += span::spans_of_box(&m, &b).len();
        }
        assert!(hs < ms, "hilbert {hs} spans vs morton {ms}");
    }

    #[test]
    fn index_count_matches_volume() {
        let h = HilbertCurve::new(3, 4);
        assert_eq!(h.index_count(), 1u128 << 12);
        assert_eq!(h.side(), 16);
    }
}
