//! n-dimensional Hilbert curve via Skilling's transposed-bits algorithm.
//!
//! Reference: John Skilling, "Programming the Hilbert curve", AIP
//! Conference Proceedings 707, 381 (2004). The algorithm transforms the
//! coordinates in place into a "transposed" form of the Hilbert index —
//! bit k of dimension i holds index bit `k*ndim + (ndim-1-i)` — which we
//! then gather into a single `u128`.

use crate::SpaceFillingCurve;
use insitu_domain::{Pt, MAX_DIMS};

/// An n-dimensional Hilbert curve of side `2^order`.
#[derive(Clone, Copy, Debug)]
pub struct HilbertCurve {
    ndim: usize,
    order: u32,
}

impl HilbertCurve {
    /// Create a curve over `[0, 2^order)^ndim`.
    ///
    /// # Panics
    /// Panics if `ndim` is 0 or exceeds [`MAX_DIMS`], if `order` is 0, or
    /// if `ndim * order > 128` (index would overflow `u128`).
    pub fn new(ndim: usize, order: u32) -> Self {
        assert!((1..=MAX_DIMS).contains(&ndim), "bad ndim {ndim}");
        assert!(order >= 1, "order must be >= 1");
        assert!(ndim as u32 * order <= 128, "index exceeds u128");
        HilbertCurve { ndim, order }
    }

    /// Axes -> transposed Hilbert index (in place), Skilling's algorithm.
    fn axes_to_transpose(&self, x: &mut [u64]) {
        let n = self.ndim;
        let b = self.order;
        let mut q: u64 = 1 << (b - 1);
        // Inverse undo.
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t: u64 = 0;
        let mut q: u64 = 1 << (b - 1);
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut().take(n) {
            *xi ^= t;
        }
    }

    /// Transposed Hilbert index -> axes (in place), Skilling's algorithm.
    fn transpose_to_axes(&self, x: &mut [u64]) {
        let n = self.ndim;
        let b = self.order;
        let top: u64 = 2u64 << (b - 1);
        // Gray decode by H ^ (H/2).
        let t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q: u64 = 2;
        while q != top {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Gather the transposed form into a single index: index bit
    /// `(order-1-k)*ndim + (ndim-1-i)` is bit `(order-1-k)` of `x[i]`.
    fn gather(&self, x: &[u64]) -> u128 {
        let n = self.ndim;
        let b = self.order;
        let mut h: u128 = 0;
        for k in (0..b).rev() {
            for xi in x.iter().take(n) {
                h = (h << 1) | ((xi >> k) & 1) as u128;
            }
        }
        h
    }

    /// Scatter an index back into transposed form.
    fn scatter(&self, mut h: u128) -> [u64; MAX_DIMS] {
        let n = self.ndim;
        let b = self.order;
        let mut x = [0u64; MAX_DIMS];
        for k in 0..b {
            for i in (0..n).rev() {
                x[i] |= ((h & 1) as u64) << k;
                h >>= 1;
            }
        }
        x
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn ndim(&self) -> usize {
        self.ndim
    }

    fn order(&self) -> u32 {
        self.order
    }

    fn index_of(&self, p: &[u64]) -> u128 {
        debug_assert!(p.len() >= self.ndim);
        let side = self.side();
        let mut x = [0u64; MAX_DIMS];
        for i in 0..self.ndim {
            assert!(
                p[i] < side,
                "coordinate {} out of range (side {side})",
                p[i]
            );
            x[i] = p[i];
        }
        self.axes_to_transpose(&mut x[..self.ndim]);
        self.gather(&x[..self.ndim])
    }

    fn point_of(&self, idx: u128) -> Pt {
        assert!(idx < self.index_count(), "index out of range");
        let mut x = self.scatter(idx);
        self.transpose_to_axes(&mut x[..self.ndim]);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_1_2d_is_the_canonical_u() {
        // The 2x2 Hilbert curve visits (0,0),(0,1),(1,1),(1,0) or its
        // reflection; indices must be a bijection and consecutive points
        // must be grid neighbors.
        let h = HilbertCurve::new(2, 1);
        let seq: Vec<Pt> = (0..4).map(|i| h.point_of(i)).collect();
        for w in seq.windows(2) {
            let dist = (0..2).map(|d| w[0][d].abs_diff(w[1][d])).sum::<u64>();
            assert_eq!(dist, 1, "consecutive points must be adjacent");
        }
    }

    #[test]
    fn bijective_2d_order_3() {
        let h = HilbertCurve::new(2, 3);
        let mut seen = [false; 64];
        for x in 0..8u64 {
            for y in 0..8u64 {
                let i = h.index_of(&[x, y]) as usize;
                assert!(!seen[i], "index {i} hit twice");
                seen[i] = true;
                assert_eq!(h.point_of(i as u128)[..2], [x, y]);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bijective_3d_order_2() {
        let h = HilbertCurve::new(3, 2);
        let mut seen = [false; 64];
        for x in 0..4u64 {
            for y in 0..4u64 {
                for z in 0..4u64 {
                    let i = h.index_of(&[x, y, z]) as usize;
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_grid_neighbors_3d() {
        let h = HilbertCurve::new(3, 3);
        let mut prev = h.point_of(0);
        for i in 1..h.index_count() {
            let p = h.point_of(i);
            let dist: u64 = (0..3).map(|d| prev[d].abs_diff(p[d])).sum();
            assert_eq!(dist, 1, "break between {} and {}", i - 1, i);
            prev = p;
        }
    }

    #[test]
    fn consecutive_indices_are_grid_neighbors_4d() {
        let h = HilbertCurve::new(4, 2);
        let mut prev = h.point_of(0);
        for i in 1..h.index_count() {
            let p = h.point_of(i);
            let dist: u64 = (0..4).map(|d| prev[d].abs_diff(p[d])).sum();
            assert_eq!(dist, 1);
            prev = p;
        }
    }

    #[test]
    fn one_dimensional_curve_is_identity() {
        let h = HilbertCurve::new(1, 5);
        for x in 0..32u64 {
            assert_eq!(h.index_of(&[x]), x as u128);
            assert_eq!(h.point_of(x as u128)[0], x);
        }
    }

    #[test]
    fn large_order_roundtrip() {
        let h = HilbertCurve::new(3, 20);
        for &p in &[[0u64, 0, 0], [1 << 19, 12345, 999_999], [(1 << 20) - 1; 3]] {
            let i = h.index_of(&p);
            assert_eq!(h.point_of(i)[..3], p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_coordinate() {
        HilbertCurve::new(2, 3).index_of(&[8, 0]);
    }

    #[test]
    #[should_panic(expected = "index exceeds u128")]
    fn rejects_overflowing_order() {
        HilbertCurve::new(4, 33);
    }
}
