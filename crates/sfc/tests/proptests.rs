//! Property tests: curve bijectivity, adjacency, and span-cover exactness.

use insitu_domain::BoundingBox;
use insitu_sfc::span::total_len;
use insitu_sfc::{spans_of_box, HilbertCurve, MortonCurve, SpaceFillingCurve};
use insitu_util::check::forall;

#[test]
fn hilbert_roundtrip_2d() {
    forall(256, |rng| {
        let order = rng.range_u32(1, 10);
        let seed = rng.next_u64();
        let h = HilbertCurve::new(2, order);
        let side = h.side();
        let x = seed % side;
        let y = (seed >> 16) % side;
        let i = h.index_of(&[x, y]);
        assert_eq!(&h.point_of(i)[..2], &[x, y][..]);
    });
}

#[test]
fn hilbert_roundtrip_3d() {
    forall(256, |rng| {
        let order = rng.range_u32(1, 8);
        let seed = rng.next_u64();
        let h = HilbertCurve::new(3, order);
        let side = h.side();
        let p = [seed % side, (seed >> 12) % side, (seed >> 24) % side];
        assert_eq!(&h.point_of(h.index_of(&p))[..3], &p[..]);
    });
}

#[test]
fn morton_roundtrip_3d() {
    forall(256, |rng| {
        let order = rng.range_u32(1, 8);
        let seed = rng.next_u64();
        let m = MortonCurve::new(3, order);
        let side = m.side();
        let p = [seed % side, (seed >> 12) % side, (seed >> 24) % side];
        assert_eq!(&m.point_of(m.index_of(&p))[..3], &p[..]);
    });
}

#[test]
fn hilbert_adjacent_indices_adjacent_points() {
    forall(256, |rng| {
        let order = rng.range_u32(1, 6);
        let seed = rng.next_u64();
        let h = HilbertCurve::new(2, order);
        let i = seed as u128 % (h.index_count() - 1);
        let a = h.point_of(i);
        let b = h.point_of(i + 1);
        let dist: u64 = (0..2).map(|d| a[d].abs_diff(b[d])).sum();
        assert_eq!(dist, 1);
    });
}

#[test]
fn spans_cover_box_exactly_hilbert() {
    forall(128, |rng| {
        let order = rng.range_u32(2, 6);
        let ax = rng.range_u64(0, 16);
        let ay = rng.range_u64(0, 16);
        let w = rng.range_u64(0, 16);
        let hgt = rng.range_u64(0, 16);
        let h = HilbertCurve::new(2, order);
        let side = h.side();
        let lb = [ax % side, ay % side];
        let ub = [(lb[0] + w).min(side - 1), (lb[1] + hgt).min(side - 1)];
        let b = BoundingBox::new(&lb, &ub);
        let spans = spans_of_box(&h, &b);
        assert_eq!(total_len(&spans), b.num_cells());
        // Disjoint + sorted + maximal.
        for wd in spans.windows(2) {
            assert!(wd[0].last + 1 < wd[1].first);
        }
        // Sampled membership: corners of the box map into some span.
        for p in [[lb[0], lb[1]], [ub[0], ub[1]], [lb[0], ub[1]]] {
            let i = h.index_of(&p);
            assert!(spans.iter().any(|s| s.first <= i && i <= s.last));
        }
    });
}

#[test]
fn spans_cover_box_exactly_morton() {
    forall(128, |rng| {
        let order = rng.range_u32(2, 6);
        let ax = rng.range_u64(0, 16);
        let ay = rng.range_u64(0, 16);
        let w = rng.range_u64(0, 16);
        let hgt = rng.range_u64(0, 16);
        let m = MortonCurve::new(2, order);
        let side = m.side();
        let lb = [ax % side, ay % side];
        let ub = [(lb[0] + w).min(side - 1), (lb[1] + hgt).min(side - 1)];
        let b = BoundingBox::new(&lb, &ub);
        let spans = spans_of_box(&m, &b);
        assert_eq!(total_len(&spans), b.num_cells());
    });
}

/// Expand a span cover back into the set of lattice points it names.
fn cells_of_spans(
    curve: &dyn SpaceFillingCurve,
    spans: &[insitu_sfc::Span],
    ndim: usize,
) -> std::collections::BTreeSet<Vec<u64>> {
    let mut cells = std::collections::BTreeSet::new();
    for s in spans {
        let mut i = s.first;
        loop {
            cells.insert(curve.point_of(i)[..ndim].to_vec());
            if i == s.last {
                break;
            }
            i += 1;
        }
    }
    cells
}

#[test]
fn hilbert_and_morton_cover_identical_cell_sets_2d() {
    forall(64, |rng| {
        let order = rng.range_u32(2, 5);
        let h = HilbertCurve::new(2, order);
        let m = MortonCurve::new(2, order);
        let side = h.side();
        let lb = [rng.range_u64(0, side), rng.range_u64(0, side)];
        let ub = [
            (lb[0] + rng.range_u64(0, side)).min(side - 1),
            (lb[1] + rng.range_u64(0, side)).min(side - 1),
        ];
        let b = BoundingBox::new(&lb, &ub);
        let hc = cells_of_spans(&h, &spans_of_box(&h, &b), 2);
        let mc = cells_of_spans(&m, &spans_of_box(&m, &b), 2);
        assert_eq!(hc, mc, "curves disagree on box {b:?}");
        assert_eq!(hc.len() as u128, b.num_cells());
    });
}

#[test]
fn hilbert_and_morton_cover_identical_cell_sets_3d() {
    forall(32, |rng| {
        let order = rng.range_u32(1, 4);
        let h = HilbertCurve::new(3, order);
        let m = MortonCurve::new(3, order);
        let side = h.side();
        let lb = [
            rng.range_u64(0, side),
            rng.range_u64(0, side),
            rng.range_u64(0, side),
        ];
        let ub = [
            (lb[0] + rng.range_u64(0, side)).min(side - 1),
            (lb[1] + rng.range_u64(0, side)).min(side - 1),
            (lb[2] + rng.range_u64(0, side)).min(side - 1),
        ];
        let b = BoundingBox::new(&lb, &ub);
        let hc = cells_of_spans(&h, &spans_of_box(&h, &b), 3);
        let mc = cells_of_spans(&m, &spans_of_box(&m, &b), 3);
        assert_eq!(hc, mc, "curves disagree on box {b:?}");
        assert_eq!(hc.len() as u128, b.num_cells());
    });
}

#[test]
fn spans_outside_points_not_covered() {
    forall(128, |rng| {
        let order = rng.range_u32(2, 5);
        let seed = rng.next_u64();
        let h = HilbertCurve::new(2, order);
        let side = h.side();
        if side < 4 {
            return;
        }
        let b = BoundingBox::new(&[1, 1], &[side / 2, side / 2]);
        let spans = spans_of_box(&h, &b);
        // A point outside the box must not fall in any span.
        let outside = [0u64, seed % side];
        let i = h.index_of(&outside);
        assert!(!spans.iter().any(|s| s.first <= i && i <= s.last));
    });
}
