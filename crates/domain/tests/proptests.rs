//! Property-based tests for the domain geometry invariants.

use insitu_domain::bbox::pt;
use insitu_domain::dist::count_owned_in_range;
use insitu_domain::layout::{copy_region, copy_region_bytes, fill_with, linear_index};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_util::check::forall;
use insitu_util::SplitMix64;

fn arb_box_2d(rng: &mut SplitMix64, max: u64) -> BoundingBox {
    let a = rng.range_u64(0, max);
    let b = rng.range_u64(0, max);
    let c = rng.range_u64(0, max);
    let d = rng.range_u64(0, max);
    BoundingBox::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)])
}

fn arb_dist(rng: &mut SplitMix64) -> Distribution {
    match rng.range_u32(0, 3) {
        0 => Distribution::Blocked,
        1 => Distribution::Cyclic,
        _ => {
            let a = rng.range_u64(1, 5);
            let b = rng.range_u64(1, 5);
            Distribution::block_cyclic(&[a, b])
        }
    }
}

#[test]
fn intersect_commutative_and_contained() {
    forall(256, |rng| {
        let a = arb_box_2d(rng, 32);
        let b = arb_box_2d(rng, 32);
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        assert_eq!(ab, ba);
        if let Some(i) = ab {
            assert!(a.contains_box(&i));
            assert!(b.contains_box(&i));
            assert!(i.num_cells() <= a.num_cells().min(b.num_cells()));
        }
    });
}

#[test]
fn intersect_idempotent() {
    forall(256, |rng| {
        let a = arb_box_2d(rng, 32);
        assert_eq!(a.intersect(&a), Some(a));
    });
}

#[test]
fn hull_contains_both() {
    forall(256, |rng| {
        let a = arb_box_2d(rng, 32);
        let b = arb_box_2d(rng, 32);
        let h = a.hull(&b);
        assert!(h.contains_box(&a));
        assert!(h.contains_box(&b));
    });
}

#[test]
fn count_owned_matches_brute() {
    forall(256, |rng| {
        let lo = rng.range_u64(0, 40);
        let len = rng.range_u64(0, 40);
        let b = rng.range_u64(1, 6);
        let p = rng.range_u64(1, 6);
        let g = rng.range_u64(0, 6) % p;
        let hi = lo + len;
        let brute = (lo..=hi).filter(|x| (x / b) % p == g).count() as u64;
        assert_eq!(count_owned_in_range(lo, hi, b, p, g), brute);
    });
}

#[test]
fn decomposition_tiles_domain() {
    forall(64, |rng| {
        let sx = rng.range_u64(1, 24);
        let sy = rng.range_u64(1, 24);
        let px = rng.range_u64(1, 4);
        let py = rng.range_u64(1, 4);
        let dist = arb_dist(rng);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        // Every cell owned by exactly one rank; rank_cells sums to volume.
        let total: u128 = (0..dec.num_ranks()).map(|r| dec.rank_cells(r)).sum();
        assert_eq!(total, dec.domain().num_cells());
        for ptt in dec.domain().iter_points() {
            let owner = dec.owner_of_point(&ptt[..2]);
            assert!(owner < dec.num_ranks());
        }
    });
}

#[test]
fn overlaps_consistent_with_overlap_cells() {
    forall(64, |rng| {
        let sx = rng.range_u64(4, 20);
        let sy = rng.range_u64(4, 20);
        let px = rng.range_u64(1, 4);
        let py = rng.range_u64(1, 4);
        let dist = arb_dist(rng);
        let q = arb_box_2d(rng, 24);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        let overlaps = dec.overlaps(&q);
        // Reported entries match per-rank closed form and are non-zero.
        for o in &overlaps {
            assert!(o.cells > 0);
            assert_eq!(o.cells, dec.overlap_cells(o.rank, &q));
        }
        // Non-reported ranks overlap nothing.
        let reported: std::collections::HashSet<u64> = overlaps.iter().map(|o| o.rank).collect();
        for r in 0..dec.num_ranks() {
            if !reported.contains(&r) {
                assert_eq!(dec.overlap_cells(r, &q), 0);
            }
        }
    });
}

#[test]
fn pieces_partition_overlap() {
    forall(64, |rng| {
        let sx = rng.range_u64(4, 16);
        let sy = rng.range_u64(4, 16);
        let px = rng.range_u64(1, 4);
        let py = rng.range_u64(1, 4);
        let dist = arb_dist(rng);
        let q = arb_box_2d(rng, 20);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        for r in 0..dec.num_ranks() {
            let pieces = dec.pieces(r, &q);
            let vol: u128 = pieces.iter().map(|p| p.num_cells()).sum();
            assert_eq!(vol, dec.overlap_cells(r, &q));
            for (i, a) in pieces.iter().enumerate() {
                for b in &pieces[i + 1..] {
                    assert!(a.intersect(b).is_none());
                }
            }
        }
    });
}

#[test]
fn copy_region_moves_exactly_region() {
    forall(128, |rng| {
        let ax = rng.range_u64(0, 6);
        let ay = rng.range_u64(0, 6);
        let ex = rng.range_u64(1, 6);
        let ey = rng.range_u64(1, 6);
        // src and dst boxes both contain the region; src larger.
        let region = BoundingBox::new(&[ax + 2, ay + 2], &[ax + 1 + ex, ay + 1 + ey]);
        let src_box = BoundingBox::new(&[0, 0], &[15, 15]);
        let dst_box = BoundingBox::new(&[1, 1], &[14, 14]);
        let tag = |p: &[u64]| p[0] * 100 + p[1] + 1;
        let src = fill_with(&src_box, tag);
        let mut dst = vec![0u64; dst_box.num_cells() as usize];
        copy_region(&src, &src_box, &mut dst, &dst_box, &region);
        for p in dst_box.iter_points() {
            let got = dst[linear_index(&dst_box, &p[..2])];
            if region.contains_point(&p) {
                assert_eq!(got, tag(&p[..2]));
            } else {
                assert_eq!(got, 0);
            }
        }
    });
}

#[test]
fn copy_region_fast_and_general_paths_agree() {
    // Half the cases deliberately hit the contiguous full-row fast path
    // (region covers every dim but the first of both boxes); the rest are
    // arbitrary strided sub-regions. Both must agree with a per-point
    // reference copy, in the typed and the byte-granularity variant.
    forall(256, |rng| {
        let (src_box, dst_box, region) = if rng.bool() {
            let sx = rng.range_u64(2, 10);
            let sy = rng.range_u64(1, 10);
            let b = BoundingBox::new(&[0, 0], &[sx - 1, sy - 1]);
            let r0 = rng.range_u64(0, sx);
            let r1 = rng.range_u64(r0, sx);
            (b, b, BoundingBox::new(&[r0, 0], &[r1, sy - 1]))
        } else {
            let ax = rng.range_u64(2, 9);
            let ay = rng.range_u64(2, 9);
            let ex = rng.range_u64(0, 5);
            let ey = rng.range_u64(0, 5);
            (
                BoundingBox::new(&[0, 0], &[15, 15]),
                BoundingBox::new(&[1, 1], &[14, 14]),
                BoundingBox::new(&[ax, ay], &[ax + ex, ay + ey]),
            )
        };
        let tag = |p: &[u64]| p[0] * 1000 + p[1] + 7;
        let src = fill_with(&src_box, tag);

        // Per-point reference.
        let mut want = vec![0u64; dst_box.num_cells() as usize];
        for p in region.iter_points() {
            want[linear_index(&dst_box, &p[..2])] = src[linear_index(&src_box, &p[..2])];
        }

        let mut got = vec![0u64; want.len()];
        copy_region(&src, &src_box, &mut got, &dst_box, &region);
        assert_eq!(got, want, "typed copy, region {region:?}");

        let src_bytes: Vec<u8> = src.iter().flat_map(|v| v.to_ne_bytes()).collect();
        let mut got_bytes = vec![0u8; want.len() * 8];
        copy_region_bytes(&src_bytes, &src_box, &mut got_bytes, &dst_box, &region, 8);
        let decoded: Vec<u64> = got_bytes
            .chunks_exact(8)
            .map(|c| u64::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(decoded, want, "byte copy, region {region:?}");
    });
}

#[test]
fn owner_of_point_agrees_with_pieces() {
    forall(64, |rng| {
        let sx = rng.range_u64(2, 12);
        let sy = rng.range_u64(2, 12);
        let px = rng.range_u64(1, 3);
        let py = rng.range_u64(1, 3);
        let dist = arb_dist(rng);
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        for p in dec.domain().iter_points() {
            let owner = dec.owner_of_point(&p[..2]);
            let cell = BoundingBox::new(&[p[0], p[1]], &[p[0], p[1]]);
            assert_eq!(dec.overlap_cells(owner, &cell), 1);
        }
        // silence unused import lint for pt in some configurations
        let _ = pt(&[0, 0]);
    });
}
