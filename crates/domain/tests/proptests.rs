//! Property-based tests for the domain geometry invariants.

use insitu_domain::bbox::pt;
use insitu_domain::dist::count_owned_in_range;
use insitu_domain::layout::{copy_region, fill_with, linear_index};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use proptest::prelude::*;

fn arb_box_2d(max: u64) -> impl Strategy<Value = BoundingBox> {
    (0..max, 0..max, 0..max, 0..max).prop_map(move |(a, b, c, d)| {
        BoundingBox::new(&[a.min(b), c.min(d)], &[a.max(b), c.max(d)])
    })
}

fn arb_dist() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Blocked),
        Just(Distribution::Cyclic),
        (1u64..5, 1u64..5).prop_map(|(a, b)| Distribution::block_cyclic(&[a, b])),
    ]
}

proptest! {
    #[test]
    fn intersect_commutative_and_contained(a in arb_box_2d(32), b in arb_box_2d(32)) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_box(&i));
            prop_assert!(b.contains_box(&i));
            prop_assert!(i.num_cells() <= a.num_cells().min(b.num_cells()));
        }
    }

    #[test]
    fn intersect_idempotent(a in arb_box_2d(32)) {
        prop_assert_eq!(a.intersect(&a), Some(a));
    }

    #[test]
    fn hull_contains_both(a in arb_box_2d(32), b in arb_box_2d(32)) {
        let h = a.hull(&b);
        prop_assert!(h.contains_box(&a));
        prop_assert!(h.contains_box(&b));
    }

    #[test]
    fn count_owned_matches_brute(
        lo in 0u64..40, len in 0u64..40, b in 1u64..6, p in 1u64..6, g_seed in 0u64..6,
    ) {
        let g = g_seed % p;
        let hi = lo + len;
        let brute = (lo..=hi).filter(|x| (x / b) % p == g).count() as u64;
        prop_assert_eq!(count_owned_in_range(lo, hi, b, p, g), brute);
    }

    #[test]
    fn decomposition_tiles_domain(
        sx in 1u64..24, sy in 1u64..24, px in 1u64..4, py in 1u64..4, dist in arb_dist(),
    ) {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        // Every cell owned by exactly one rank; rank_cells sums to volume.
        let total: u128 = (0..dec.num_ranks()).map(|r| dec.rank_cells(r)).sum();
        prop_assert_eq!(total, dec.domain().num_cells());
        for ptt in dec.domain().iter_points() {
            let owner = dec.owner_of_point(&ptt[..2]);
            prop_assert!(owner < dec.num_ranks());
        }
    }

    #[test]
    fn overlaps_consistent_with_overlap_cells(
        sx in 4u64..20, sy in 4u64..20, px in 1u64..4, py in 1u64..4,
        dist in arb_dist(), q in arb_box_2d(24),
    ) {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        let overlaps = dec.overlaps(&q);
        // Reported entries match per-rank closed form and are non-zero.
        for o in &overlaps {
            prop_assert!(o.cells > 0);
            prop_assert_eq!(o.cells, dec.overlap_cells(o.rank, &q));
        }
        // Non-reported ranks overlap nothing.
        let reported: std::collections::HashSet<u64> =
            overlaps.iter().map(|o| o.rank).collect();
        for r in 0..dec.num_ranks() {
            if !reported.contains(&r) {
                prop_assert_eq!(dec.overlap_cells(r, &q), 0);
            }
        }
    }

    #[test]
    fn pieces_partition_overlap(
        sx in 4u64..16, sy in 4u64..16, px in 1u64..4, py in 1u64..4,
        dist in arb_dist(), q in arb_box_2d(20),
    ) {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        for r in 0..dec.num_ranks() {
            let pieces = dec.pieces(r, &q);
            let vol: u128 = pieces.iter().map(|p| p.num_cells()).sum();
            prop_assert_eq!(vol, dec.overlap_cells(r, &q));
            for (i, a) in pieces.iter().enumerate() {
                for b in &pieces[i + 1..] {
                    prop_assert!(a.intersect(b).is_none());
                }
            }
        }
    }

    #[test]
    fn copy_region_moves_exactly_region(
        ax in 0u64..6, ay in 0u64..6, ex in 1u64..6, ey in 1u64..6,
    ) {
        // src and dst boxes both contain the region; src larger.
        let region = BoundingBox::new(&[ax + 2, ay + 2], &[ax + 1 + ex, ay + 1 + ey]);
        let src_box = BoundingBox::new(&[0, 0], &[15, 15]);
        let dst_box = BoundingBox::new(&[1, 1], &[14, 14]);
        let tag = |p: &[u64]| p[0] * 100 + p[1] + 1;
        let src = fill_with(&src_box, tag);
        let mut dst = vec![0u64; dst_box.num_cells() as usize];
        copy_region(&src, &src_box, &mut dst, &dst_box, &region);
        for p in dst_box.iter_points() {
            let got = dst[linear_index(&dst_box, &p[..2])];
            if region.contains_point(&p) {
                prop_assert_eq!(got, tag(&p[..2]));
            } else {
                prop_assert_eq!(got, 0);
            }
        }
    }

    #[test]
    fn owner_of_point_agrees_with_pieces(
        sx in 2u64..12, sy in 2u64..12, px in 1u64..3, py in 1u64..3, dist in arb_dist(),
    ) {
        let dec = Decomposition::new(
            BoundingBox::from_sizes(&[sx, sy]),
            ProcessGrid::new(&[px, py]),
            dist,
        );
        for p in dec.domain().iter_points() {
            let owner = dec.owner_of_point(&p[..2]);
            let cell = BoundingBox::new(&[p[0], p[1]], &[p[0], p[1]]);
            prop_assert_eq!(dec.overlap_cells(owner, &cell), 1);
        }
        // silence unused import lint for pt in some configurations
        let _ = pt(&[0, 0]);
    }
}
