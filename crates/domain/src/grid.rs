//! Process grids: the `(p_1, ..., p_n)` layout of a data-parallel
//! application's ranks over the dimensions of its data domain.

use crate::bbox::{pt, Pt, MAX_DIMS};

/// A Cartesian process layout. Rank 0 owns grid coordinate `(0,...,0)`;
/// ranks are numbered row-major with the last dimension varying fastest,
/// matching common MPI Cartesian-communicator conventions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProcessGrid {
    ndim: u8,
    dims: Pt,
}

impl ProcessGrid {
    /// Create a grid from per-dimension process counts.
    ///
    /// # Panics
    /// Panics on an empty slice, more than [`MAX_DIMS`] dimensions, or a
    /// zero count in any dimension.
    pub fn new(dims: &[u64]) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "bad rank {}",
            dims.len()
        );
        for (d, &p) in dims.iter().enumerate() {
            assert!(p > 0, "zero processes in dim {d}");
        }
        ProcessGrid {
            ndim: dims.len() as u8,
            dims: pt(dims),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Process count along dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> u64 {
        debug_assert!(d < self.ndim());
        self.dims[d]
    }

    /// Total number of ranks in the grid.
    pub fn num_ranks(&self) -> u64 {
        (0..self.ndim()).map(|d| self.dims[d]).product()
    }

    /// Grid coordinates of `rank` (row-major, last dimension fastest).
    ///
    /// # Panics
    /// Panics if `rank >= num_ranks()`.
    pub fn coords_of(&self, rank: u64) -> Pt {
        assert!(rank < self.num_ranks(), "rank {rank} out of range");
        let mut c = [0u64; MAX_DIMS];
        let mut rem = rank;
        for d in (0..self.ndim()).rev() {
            c[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        c
    }

    /// Rank owning grid coordinates `coords`.
    ///
    /// # Panics
    /// Panics if any coordinate exceeds the grid.
    pub fn rank_of(&self, coords: &[u64]) -> u64 {
        debug_assert!(coords.len() >= self.ndim());
        let mut rank = 0u64;
        for d in 0..self.ndim() {
            assert!(
                coords[d] < self.dims[d],
                "grid coord {} out of range in dim {d}",
                coords[d]
            );
            rank = rank * self.dims[d] + coords[d];
        }
        rank
    }

    /// Iterate all ranks whose grid coordinate in each dimension `d` lies in
    /// `range[d] = (lo, hi)` inclusive. Used to enumerate the ranks of a
    /// blocked decomposition that intersect a query box.
    pub fn ranks_in_coord_ranges(&self, ranges: &[(u64, u64)]) -> Vec<u64> {
        debug_assert_eq!(ranges.len(), self.ndim());
        let mut out = Vec::new();
        let mut cur: Vec<u64> = ranges.iter().map(|r| r.0).collect();
        loop {
            out.push(self.rank_of(&crate::bbox::pt(&cur)));
            let mut d = self.ndim();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if cur[d] < ranges[d].1 {
                    cur[d] += 1;
                    for cd in d + 1..self.ndim() {
                        cur[cd] = ranges[cd].0;
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip_3d() {
        let g = ProcessGrid::new(&[2, 3, 4]);
        assert_eq!(g.num_ranks(), 24);
        for r in 0..24 {
            let c = g.coords_of(r);
            assert_eq!(g.rank_of(&c), r);
        }
    }

    #[test]
    fn row_major_last_dim_fastest() {
        let g = ProcessGrid::new(&[2, 3]);
        assert_eq!(g.coords_of(0)[..2], [0, 0]);
        assert_eq!(g.coords_of(1)[..2], [0, 1]);
        assert_eq!(g.coords_of(3)[..2], [1, 0]);
    }

    #[test]
    #[should_panic(expected = "zero processes")]
    fn rejects_zero_dim() {
        ProcessGrid::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_of_rejects_large_rank() {
        ProcessGrid::new(&[2, 2]).coords_of(4);
    }

    #[test]
    fn ranks_in_coord_ranges_enumerates_subgrid() {
        let g = ProcessGrid::new(&[3, 3]);
        let ranks = g.ranks_in_coord_ranges(&[(1, 2), (0, 1)]);
        assert_eq!(ranks, vec![3, 4, 6, 7]);
    }

    #[test]
    fn single_rank_grid() {
        let g = ProcessGrid::new(&[1, 1, 1]);
        assert_eq!(g.num_ranks(), 1);
        assert_eq!(g.ranks_in_coord_ranges(&[(0, 0), (0, 0), (0, 0)]), vec![0]);
    }
}
