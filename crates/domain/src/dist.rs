//! Data distribution types and the separable per-dimension ownership math.
//!
//! The framework supports the paper's three distribution types: standard
//! blocked, cyclic, and block-cyclic. All three are instances of a
//! block-cyclic layout: with block size `b` and `p` processes in a
//! dimension, position `x` (relative to the domain origin) belongs to grid
//! coordinate `(x / b) mod p`. Blocked uses `b = ceil(extent / p)` (a single
//! cycle), cyclic uses `b = 1`.
//!
//! Because ownership factors per dimension, overlap *volumes* between a
//! query box and a rank's owned set are products of per-dimension counts,
//! each computable in O(1). This is what lets the mapper build communication
//! graphs for 8192-task applications without enumerating cells.

use crate::bbox::{pt, Pt, MAX_DIMS};

/// A data distribution over a process grid, one of the three types the
/// framework supports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Distribution {
    /// Contiguous blocks: rank grid coordinate `g` in a dimension owns
    /// positions `[g*b, (g+1)*b)` with `b = ceil(extent / p)`.
    Blocked,
    /// Element-wise round-robin (block-cyclic with block size 1).
    Cyclic,
    /// Round-robin of fixed-size blocks, per-dimension block sizes given.
    BlockCyclic(Pt),
}

impl Distribution {
    /// Convenience constructor for [`Distribution::BlockCyclic`].
    pub fn block_cyclic(blocks: &[u64]) -> Self {
        for (d, &b) in blocks.iter().enumerate() {
            assert!(b > 0, "zero block size in dim {d}");
        }
        Distribution::BlockCyclic(pt(blocks))
    }

    /// Effective block size in dimension `d` for a domain extent and
    /// process count.
    #[inline]
    pub fn block_extent(&self, d: usize, extent: u64, procs: u64) -> u64 {
        match self {
            Distribution::Blocked => extent.div_ceil(procs),
            Distribution::Cyclic => 1,
            Distribution::BlockCyclic(b) => {
                debug_assert!(d < MAX_DIMS);
                b[d]
            }
        }
    }

    /// Short human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Blocked => "blocked",
            Distribution::Cyclic => "cyclic",
            Distribution::BlockCyclic(_) => "block-cyclic",
        }
    }
}

/// Count of positions `x` in the inclusive range `[lo, hi]` (relative to
/// the domain origin) owned by grid coordinate `g`, under a block-cyclic
/// layout with block size `b` over `p` grid coordinates. O(1).
pub fn count_owned_in_range(lo: u64, hi: u64, b: u64, p: u64, g: u64) -> u64 {
    debug_assert!(b > 0 && p > 0 && g < p);
    if lo > hi {
        return 0;
    }
    // f(y) = number of owned positions in [0, y].
    let f = |y: u64| -> u64 {
        let period = b * p;
        let len = y + 1;
        let full = len / period;
        let rem = len % period;
        let start = g * b; // block for g begins here within each period
        let extra = rem.saturating_sub(start).min(b);
        full * b + extra
    };
    if lo == 0 {
        f(hi)
    } else {
        f(hi) - f(lo - 1)
    }
}

/// Iterator over the owned block sub-ranges `[start, end]` (inclusive,
/// relative positions) of grid coordinate `g` within `[lo, hi]`.
pub struct OwnedRanges {
    b: u64,
    period: u64,
    hi: u64,
    next_start: u64,
    done: bool,
}

impl OwnedRanges {
    /// Ranges of positions in `[lo, hi]` owned by `g` with block size `b`
    /// over `p` coordinates.
    pub fn new(lo: u64, hi: u64, b: u64, p: u64, g: u64) -> Self {
        debug_assert!(b > 0 && p > 0 && g < p);
        let period = b * p;
        // First block of g at or before lo.
        let cycle = lo / period;
        let mut start = cycle * period + g * b;
        if start + b <= lo {
            start += period;
        }
        OwnedRanges {
            b,
            period,
            hi,
            next_start: start,
            done: lo > hi,
        }
    }
}

impl Iterator for OwnedRanges {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.done || self.next_start > self.hi {
            self.done = true;
            return None;
        }
        let s = self.next_start;
        let e = (s + self.b - 1).min(self.hi);
        self.next_start = s + self.period;
        // Clamp the start to the query window (only relevant for the first
        // block, which may begin before `lo`; the constructor guarantees the
        // block overlaps the window).
        Some((s, e))
    }
}

/// Owned sub-ranges of `g` intersected with `[lo, hi]`, clamped to the
/// window. Convenience wrapper over [`OwnedRanges`].
pub fn owned_ranges_in(lo: u64, hi: u64, b: u64, p: u64, g: u64) -> Vec<(u64, u64)> {
    OwnedRanges::new(lo, hi, b, p, g)
        .map(|(s, e)| (s.max(lo), e))
        .filter(|(s, e)| s <= e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_count(lo: u64, hi: u64, b: u64, p: u64, g: u64) -> u64 {
        (lo..=hi).filter(|x| (x / b) % p == g).count() as u64
    }

    #[test]
    fn count_matches_brute_force() {
        for b in [1u64, 2, 3, 5] {
            for p in [1u64, 2, 3, 4] {
                for g in 0..p {
                    for lo in 0..12 {
                        for hi in lo..30 {
                            assert_eq!(
                                count_owned_in_range(lo, hi, b, p, g),
                                brute_count(lo, hi, b, p, g),
                                "b={b} p={p} g={g} [{lo},{hi}]"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn count_single_proc_owns_everything() {
        assert_eq!(count_owned_in_range(3, 17, 4, 1, 0), 15);
    }

    #[test]
    fn count_empty_range() {
        assert_eq!(count_owned_in_range(5, 4, 2, 2, 0), 0);
    }

    #[test]
    fn owned_ranges_match_brute_force() {
        for b in [1u64, 2, 4] {
            for p in [1u64, 2, 3] {
                for g in 0..p {
                    for lo in 0..10 {
                        for hi in lo..25 {
                            let ranges = owned_ranges_in(lo, hi, b, p, g);
                            let mut cover: Vec<u64> = Vec::new();
                            for (s, e) in &ranges {
                                assert!(s <= e && *s >= lo && *e <= hi);
                                cover.extend(*s..=*e);
                            }
                            let expect: Vec<u64> = (lo..=hi).filter(|x| (x / b) % p == g).collect();
                            assert_eq!(cover, expect, "b={b} p={p} g={g} [{lo},{hi}]");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn block_extent_per_type() {
        assert_eq!(Distribution::Blocked.block_extent(0, 100, 8), 13);
        assert_eq!(Distribution::Cyclic.block_extent(0, 100, 8), 1);
        let bc = Distribution::block_cyclic(&[4, 2]);
        assert_eq!(bc.block_extent(0, 100, 8), 4);
        assert_eq!(bc.block_extent(1, 100, 8), 2);
    }

    #[test]
    #[should_panic(expected = "zero block size")]
    fn rejects_zero_block() {
        Distribution::block_cyclic(&[4, 0]);
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::Blocked.label(), "blocked");
        assert_eq!(Distribution::Cyclic.label(), "cyclic");
        assert_eq!(Distribution::block_cyclic(&[2]).label(), "block-cyclic");
    }
}
