//! Near-neighbor (halo) exchange geometry.
//!
//! The paper models intra-application communication with "2D or 3D
//! stencil-like near-neighbor data exchanges", the dominant pattern of the
//! targeted data-parallel codes. This module enumerates the exchange pairs
//! and per-pair cell volumes for a decomposition: each rank trades a halo
//! of width `w` with its grid neighbors along every dimension.

use crate::decomp::Decomposition;
use crate::dist::count_owned_in_range;

/// One bidirectional halo exchange between two grid-neighbor ranks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HaloExchange {
    /// Lower-coordinate rank of the pair.
    pub rank_a: u64,
    /// Higher-coordinate rank (neighbor of `rank_a` along `dim`).
    pub rank_b: u64,
    /// Dimension along which the pair are neighbors.
    pub dim: usize,
    /// Cells sent in each direction of the exchange.
    pub cells: u128,
}

/// Number of positions owned by grid coordinate `g` of dimension `d`.
fn owned_extent(dec: &Decomposition, d: usize, g: u64) -> u64 {
    let extent = dec.domain().extent(d);
    count_owned_in_range(0, extent - 1, dec.block_extent(d), dec.grid().dim(d), g)
}

/// Enumerate all halo exchanges of `dec` with halo width `halo` (cells per
/// direction per face). Pairs whose shared face is empty (an edge rank that
/// owns no cells in some dimension) are omitted.
///
/// Boundaries are non-periodic: coordinate `p-1` has no `+1` neighbor.
pub fn halo_exchanges(dec: &Decomposition, halo: u64) -> Vec<HaloExchange> {
    let ndim = dec.domain().ndim();
    let mut out = Vec::new();
    for rank in 0..dec.num_ranks() {
        let c = dec.coords_of(rank);
        // Face area factors per dimension for this rank.
        let owned: Vec<u64> = (0..ndim).map(|d| owned_extent(dec, d, c[d])).collect();
        if owned.contains(&0) {
            continue; // rank owns nothing
        }
        for d in 0..ndim {
            if c[d] + 1 >= dec.grid().dim(d) {
                continue;
            }
            // Neighbor one step up in dim d.
            let mut nc = c;
            nc[d] += 1;
            if owned_extent(dec, d, nc[d]) == 0 {
                continue;
            }
            let neighbor = dec.grid().rank_of(&nc);
            let face: u128 = (0..ndim)
                .filter(|&dd| dd != d)
                .map(|dd| owned[dd] as u128)
                .product();
            let depth = (halo as u128).min(owned[d] as u128);
            out.push(HaloExchange {
                rank_a: rank,
                rank_b: neighbor,
                dim: d,
                cells: face * depth,
            });
        }
    }
    out
}

/// Total cells exchanged (both directions summed) across all pairs.
pub fn total_halo_cells(dec: &Decomposition, halo: u64) -> u128 {
    halo_exchanges(dec, halo).iter().map(|e| 2 * e.cells).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BoundingBox;
    use crate::dist::Distribution;
    use crate::grid::ProcessGrid;

    fn dec(sizes: &[u64], procs: &[u64], dist: Distribution) -> Decomposition {
        Decomposition::new(
            BoundingBox::from_sizes(sizes),
            ProcessGrid::new(procs),
            dist,
        )
    }

    #[test]
    fn exchange_count_2d_grid() {
        // 3x3 grid: 2 edges per row x 3 rows x 2 orientations = 12 pairs.
        let d = dec(&[9, 9], &[3, 3], Distribution::Blocked);
        assert_eq!(halo_exchanges(&d, 1).len(), 12);
    }

    #[test]
    fn face_sizes_blocked_divisible() {
        // 8x8 over 2x2: each rank owns 4x4, each face = 4 cells x halo 1.
        let d = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let ex = halo_exchanges(&d, 1);
        assert_eq!(ex.len(), 4);
        assert!(ex.iter().all(|e| e.cells == 4));
    }

    #[test]
    fn halo_width_scales_volume() {
        let d = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let w1: u128 = halo_exchanges(&d, 1).iter().map(|e| e.cells).sum();
        let w2: u128 = halo_exchanges(&d, 2).iter().map(|e| e.cells).sum();
        assert_eq!(w2, 2 * w1);
    }

    #[test]
    fn halo_clamped_to_owned_depth() {
        // Each rank owns 4 cells deep; halo 10 clamps to 4.
        let d = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        let ex = halo_exchanges(&d, 10);
        assert!(ex.iter().all(|e| e.cells == 4 * 4));
    }

    #[test]
    fn empty_edge_ranks_skip_exchanges() {
        // extent 9 over 4 procs blocked: coord 3 owns nothing in dim 0.
        let d = dec(&[9], &[4], Distribution::Blocked);
        let ex = halo_exchanges(&d, 1);
        // Pairs (0,1), (1,2) only; (2,3) dropped.
        assert_eq!(ex.len(), 2);
    }

    #[test]
    fn exchange_3d_face_area() {
        let d = dec(&[8, 8, 8], &[2, 2, 2], Distribution::Blocked);
        let ex = halo_exchanges(&d, 1);
        // 2x2x2 grid: 12 pairs, each face 4x4 cells.
        assert_eq!(ex.len(), 12);
        assert!(ex.iter().all(|e| e.cells == 16));
    }

    #[test]
    fn total_counts_both_directions() {
        let d = dec(&[8, 8], &[2, 2], Distribution::Blocked);
        assert_eq!(total_halo_cells(&d, 1), 2 * 4 * 4);
    }

    #[test]
    fn cyclic_distribution_still_produces_exchanges() {
        let d = dec(&[8, 8], &[2, 2], Distribution::Cyclic);
        let ex = halo_exchanges(&d, 1);
        assert_eq!(ex.len(), 4);
        // Each coordinate owns 4 positions per dim.
        assert!(ex.iter().all(|e| e.cells == 4));
    }
}
