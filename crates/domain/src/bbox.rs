//! Axis-aligned bounding boxes over an unsigned integer lattice.
//!
//! Boxes use *inclusive* lower and upper bounds, matching the geometric
//! descriptors of the paper (e.g. `<0,0,0; 10,10,20>`). A constructed box is
//! never empty: `lb[d] <= ub[d]` holds in every dimension. Emptiness only
//! arises from intersections, which return `Option`.

/// Maximum number of dimensions supported by the framework.
///
/// The paper's applications use 2-D and 3-D meshes; we allow one extra
/// dimension for time-augmented domains while keeping coordinates inline
/// (no heap allocation in hot paths).
pub const MAX_DIMS: usize = 4;

/// An inline coordinate tuple. Dimensions beyond the box's `ndim` are zero.
pub type Pt = [u64; MAX_DIMS];

/// Build a [`Pt`] from a slice of at most [`MAX_DIMS`] coordinates.
#[inline]
pub fn pt(coords: &[u64]) -> Pt {
    assert!(
        coords.len() <= MAX_DIMS,
        "too many dimensions: {}",
        coords.len()
    );
    let mut p = [0u64; MAX_DIMS];
    p[..coords.len()].copy_from_slice(coords);
    p
}

/// An axis-aligned box with inclusive bounds, the framework's geometric
/// descriptor for data regions.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundingBox {
    ndim: u8,
    lb: Pt,
    ub: Pt,
}

impl std::fmt::Debug for BoundingBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for d in 0..self.ndim as usize {
            if d > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.lb[d])?;
        }
        write!(f, "; ")?;
        for d in 0..self.ndim as usize {
            if d > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.ub[d])?;
        }
        write!(f, ">")
    }
}

impl BoundingBox {
    /// Create a box from inclusive lower and upper bounds.
    ///
    /// # Panics
    /// Panics if the slices differ in length, exceed [`MAX_DIMS`], are
    /// empty, or if `lb[d] > ub[d]` for any dimension.
    pub fn new(lb: &[u64], ub: &[u64]) -> Self {
        assert_eq!(lb.len(), ub.len(), "bound rank mismatch");
        assert!(
            !lb.is_empty() && lb.len() <= MAX_DIMS,
            "bad rank {}",
            lb.len()
        );
        for d in 0..lb.len() {
            assert!(
                lb[d] <= ub[d],
                "empty extent in dim {d}: {} > {}",
                lb[d],
                ub[d]
            );
        }
        BoundingBox {
            ndim: lb.len() as u8,
            lb: pt(lb),
            ub: pt(ub),
        }
    }

    /// A box spanning `[0, size_d - 1]` in each dimension.
    ///
    /// # Panics
    /// Panics if any size is zero.
    pub fn from_sizes(sizes: &[u64]) -> Self {
        let lb = vec![0u64; sizes.len()];
        let ub: Vec<u64> = sizes
            .iter()
            .map(|&s| {
                assert!(s > 0, "zero-size dimension");
                s - 1
            })
            .collect();
        Self::new(&lb, &ub)
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// Inclusive lower bound in dimension `d`.
    #[inline]
    pub fn lb(&self, d: usize) -> u64 {
        debug_assert!(d < self.ndim());
        self.lb[d]
    }

    /// Inclusive upper bound in dimension `d`.
    #[inline]
    pub fn ub(&self, d: usize) -> u64 {
        debug_assert!(d < self.ndim());
        self.ub[d]
    }

    /// The lower corner as an inline point.
    #[inline]
    pub fn lower(&self) -> Pt {
        self.lb
    }

    /// The upper corner as an inline point.
    #[inline]
    pub fn upper(&self) -> Pt {
        self.ub
    }

    /// Extent (number of lattice cells) along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> u64 {
        self.ub[d] - self.lb[d] + 1
    }

    /// Total number of lattice cells in the box.
    pub fn num_cells(&self) -> u128 {
        (0..self.ndim()).map(|d| self.extent(d) as u128).product()
    }

    /// Whether `p` (first `ndim` coordinates) lies inside the box.
    pub fn contains_point(&self, p: &[u64]) -> bool {
        debug_assert!(p.len() >= self.ndim());
        (0..self.ndim()).all(|d| self.lb[d] <= p[d] && p[d] <= self.ub[d])
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        debug_assert_eq!(self.ndim, other.ndim);
        (0..self.ndim()).all(|d| self.lb[d] <= other.lb[d] && other.ub[d] <= self.ub[d])
    }

    /// Intersection of two boxes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &BoundingBox) -> Option<BoundingBox> {
        debug_assert_eq!(self.ndim, other.ndim, "rank mismatch in intersect");
        let mut lb = [0u64; MAX_DIMS];
        let mut ub = [0u64; MAX_DIMS];
        for d in 0..self.ndim() {
            let lo = self.lb[d].max(other.lb[d]);
            let hi = self.ub[d].min(other.ub[d]);
            if lo > hi {
                return None;
            }
            lb[d] = lo;
            ub[d] = hi;
        }
        Some(BoundingBox {
            ndim: self.ndim,
            lb,
            ub,
        })
    }

    /// Smallest box containing both inputs.
    pub fn hull(&self, other: &BoundingBox) -> BoundingBox {
        debug_assert_eq!(self.ndim, other.ndim);
        let mut lb = [0u64; MAX_DIMS];
        let mut ub = [0u64; MAX_DIMS];
        for d in 0..self.ndim() {
            lb[d] = self.lb[d].min(other.lb[d]);
            ub[d] = self.ub[d].max(other.ub[d]);
        }
        BoundingBox {
            ndim: self.ndim,
            lb,
            ub,
        }
    }

    /// Translate the box so coordinates become relative to `origin`.
    ///
    /// # Panics
    /// Panics (via underflow in debug) if the box does not lie at or above
    /// `origin` in every dimension.
    pub fn relative_to(&self, origin: &[u64]) -> BoundingBox {
        let mut lb = [0u64; MAX_DIMS];
        let mut ub = [0u64; MAX_DIMS];
        for d in 0..self.ndim() {
            lb[d] = self.lb[d] - origin[d];
            ub[d] = self.ub[d] - origin[d];
        }
        BoundingBox {
            ndim: self.ndim,
            lb,
            ub,
        }
    }

    /// Iterate all lattice points of the box in row-major order (last
    /// dimension fastest). Intended for tests and small regions.
    pub fn iter_points(&self) -> PointIter {
        PointIter {
            bbox: *self,
            cur: self.lb,
            done: false,
        }
    }
}

/// Row-major iterator over the lattice points of a box.
pub struct PointIter {
    bbox: BoundingBox,
    cur: Pt,
    done: bool,
}

impl Iterator for PointIter {
    type Item = Pt;

    fn next(&mut self) -> Option<Pt> {
        if self.done {
            return None;
        }
        let out = self.cur;
        // Advance, last dimension fastest.
        let n = self.bbox.ndim();
        let mut d = n;
        loop {
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
            if self.cur[d] < self.bbox.ub[d] {
                self.cur[d] += 1;
                for cd in d + 1..n {
                    self.cur[cd] = self.bbox.lb[cd];
                }
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let b = BoundingBox::new(&[0, 0, 0], &[10, 10, 20]);
        assert_eq!(b.ndim(), 3);
        assert_eq!(b.extent(0), 11);
        assert_eq!(b.extent(2), 21);
        assert_eq!(b.num_cells(), 11 * 11 * 21);
    }

    #[test]
    fn from_sizes_spans_origin() {
        let b = BoundingBox::from_sizes(&[4, 8]);
        assert_eq!(b.lb(0), 0);
        assert_eq!(b.ub(1), 7);
        assert_eq!(b.num_cells(), 32);
    }

    #[test]
    #[should_panic(expected = "empty extent")]
    fn rejects_inverted_bounds() {
        BoundingBox::new(&[5], &[4]);
    }

    #[test]
    #[should_panic(expected = "zero-size dimension")]
    fn rejects_zero_size() {
        BoundingBox::from_sizes(&[4, 0]);
    }

    #[test]
    fn single_cell_box() {
        let b = BoundingBox::new(&[3, 3], &[3, 3]);
        assert_eq!(b.num_cells(), 1);
        assert!(b.contains_point(&[3, 3, 0, 0]));
        assert!(!b.contains_point(&[3, 4, 0, 0]));
    }

    #[test]
    fn intersect_overlapping() {
        let a = BoundingBox::new(&[0, 0], &[7, 7]);
        let b = BoundingBox::new(&[4, 6], &[12, 9]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, BoundingBox::new(&[4, 6], &[7, 7]));
        // Commutative.
        assert_eq!(b.intersect(&a).unwrap(), i);
    }

    #[test]
    fn intersect_disjoint() {
        let a = BoundingBox::new(&[0, 0], &[3, 3]);
        let b = BoundingBox::new(&[4, 0], &[7, 3]);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_touching_edge_shares_cells() {
        // Inclusive bounds: boxes sharing a face row do intersect.
        let a = BoundingBox::new(&[0, 0], &[4, 4]);
        let b = BoundingBox::new(&[4, 0], &[8, 4]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.num_cells(), 5);
    }

    #[test]
    fn contains_box_cases() {
        let outer = BoundingBox::new(&[0, 0], &[9, 9]);
        let inner = BoundingBox::new(&[2, 3], &[5, 9]);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(outer.contains_box(&outer));
    }

    #[test]
    fn hull_covers_both() {
        let a = BoundingBox::new(&[0, 5], &[2, 6]);
        let b = BoundingBox::new(&[4, 0], &[5, 2]);
        let h = a.hull(&b);
        assert!(h.contains_box(&a) && h.contains_box(&b));
        assert_eq!(h, BoundingBox::new(&[0, 0], &[5, 6]));
    }

    #[test]
    fn relative_to_shifts() {
        let a = BoundingBox::new(&[10, 20], &[14, 29]);
        let r = a.relative_to(&[10, 20, 0, 0]);
        assert_eq!(r, BoundingBox::new(&[0, 0], &[4, 9]));
    }

    #[test]
    fn iter_points_row_major() {
        let b = BoundingBox::new(&[1, 2], &[2, 3]);
        let pts: Vec<Pt> = b.iter_points().collect();
        assert_eq!(
            pts,
            vec![pt(&[1, 2]), pt(&[1, 3]), pt(&[2, 2]), pt(&[2, 3])]
        );
    }

    #[test]
    fn iter_points_counts_match_volume() {
        let b = BoundingBox::new(&[0, 0, 0], &[2, 1, 3]);
        assert_eq!(b.iter_points().count() as u128, b.num_cells());
    }

    #[test]
    fn debug_format_matches_paper_notation() {
        let b = BoundingBox::new(&[0, 0, 0], &[10, 10, 20]);
        assert_eq!(format!("{b:?}"), "<0,0,0; 10,10,20>");
    }
}
