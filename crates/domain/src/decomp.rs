//! Domain decompositions: domain + process grid + distribution.
//!
//! A [`Decomposition`] answers the two questions the framework needs:
//!
//! 1. *Who owns what, and how much?* — overlap volumes between a query box
//!    and each rank's owned cell set, computed in closed form per dimension
//!    (never by enumerating cells). These weights drive the
//!    inter-application communication graph of the server-side data-centric
//!    mapper.
//! 2. *Which exact sub-boxes move?* — the rectangular pieces of a rank's
//!    owned set inside a query box, used to build M×N redistribution
//!    schedules for the actual data transfers.

use crate::bbox::{BoundingBox, Pt, MAX_DIMS};
use crate::dist::{count_owned_in_range, owned_ranges_in, Distribution};
use crate::grid::ProcessGrid;

/// Overlap between a query box and one rank's owned cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RankOverlap {
    /// Rank within the decomposition's process grid.
    pub rank: u64,
    /// Number of overlapped lattice cells.
    pub cells: u128,
}

/// A data-parallel application's decomposition of a multidimensional
/// domain across a process grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decomposition {
    domain: BoundingBox,
    grid: ProcessGrid,
    dist: Distribution,
}

impl Decomposition {
    /// Create a decomposition.
    ///
    /// # Panics
    /// Panics if the domain and grid rank differ.
    pub fn new(domain: BoundingBox, grid: ProcessGrid, dist: Distribution) -> Self {
        assert_eq!(domain.ndim(), grid.ndim(), "domain/grid rank mismatch");
        Decomposition { domain, grid, dist }
    }

    /// The decomposed domain.
    #[inline]
    pub fn domain(&self) -> &BoundingBox {
        &self.domain
    }

    /// The process grid.
    #[inline]
    pub fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    /// The distribution type.
    #[inline]
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> u64 {
        self.grid.num_ranks()
    }

    /// Effective block extent in dimension `d`.
    #[inline]
    pub fn block_extent(&self, d: usize) -> u64 {
        self.dist
            .block_extent(d, self.domain.extent(d), self.grid.dim(d))
    }

    /// Rank owning the lattice point `p`.
    ///
    /// # Panics
    /// Panics if the point lies outside the domain.
    pub fn owner_of_point(&self, p: &[u64]) -> u64 {
        assert!(self.domain.contains_point(p), "point outside domain");
        let mut coords = [0u64; MAX_DIMS];
        for d in 0..self.domain.ndim() {
            let rel = p[d] - self.domain.lb(d);
            let b = self.block_extent(d);
            coords[d] = (rel / b) % self.grid.dim(d);
        }
        self.grid.rank_of(&coords)
    }

    /// Total number of cells owned by `rank`.
    pub fn rank_cells(&self, rank: u64) -> u128 {
        self.overlap_cells(rank, &self.domain)
    }

    /// Number of cells of `query` (clamped to the domain) owned by `rank`.
    /// O(ndim), never enumerates cells.
    pub fn overlap_cells(&self, rank: u64, query: &BoundingBox) -> u128 {
        let Some(q) = self.domain.intersect(query) else {
            return 0;
        };
        let g = self.grid.coords_of(rank);
        let mut total: u128 = 1;
        for d in 0..self.domain.ndim() {
            let lo = q.lb(d) - self.domain.lb(d);
            let hi = q.ub(d) - self.domain.lb(d);
            let c = count_owned_in_range(lo, hi, self.block_extent(d), self.grid.dim(d), g[d]);
            if c == 0 {
                return 0;
            }
            total *= c as u128;
        }
        total
    }

    /// All ranks overlapping `query`, with overlap cell counts. Cost is
    /// O(sum of per-dim grid extents + number of overlapping ranks), which
    /// is what makes 8192-rank communication graphs cheap to build.
    pub fn overlaps(&self, query: &BoundingBox) -> Vec<RankOverlap> {
        let Some(q) = self.domain.intersect(query) else {
            return Vec::new();
        };
        let ndim = self.domain.ndim();
        // Per-dimension: count of overlapped positions for each grid coord.
        let mut counts: Vec<Vec<(u64, u64)>> = Vec::with_capacity(ndim); // (coord, count)
        for d in 0..ndim {
            let lo = q.lb(d) - self.domain.lb(d);
            let hi = q.ub(d) - self.domain.lb(d);
            let b = self.block_extent(d);
            let p = self.grid.dim(d);
            let mut v = Vec::new();
            for g in 0..p {
                let c = count_owned_in_range(lo, hi, b, p, g);
                if c > 0 {
                    v.push((g, c));
                }
            }
            counts.push(v);
        }
        // Cartesian product of nonzero coords across dimensions.
        let mut out = Vec::new();
        let mut idx = vec![0usize; ndim];
        if counts.iter().any(|v| v.is_empty()) {
            return out;
        }
        loop {
            let mut coords = [0u64; MAX_DIMS];
            let mut cells: u128 = 1;
            for d in 0..ndim {
                let (g, c) = counts[d][idx[d]];
                coords[d] = g;
                cells *= c as u128;
            }
            out.push(RankOverlap {
                rank: self.grid.rank_of(&coords),
                cells,
            });
            let mut d = ndim;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if idx[d] + 1 < counts[d].len() {
                    idx[d] += 1;
                    for cd in d + 1..ndim {
                        idx[cd] = 0;
                    }
                    break;
                }
            }
        }
    }

    /// The rectangular pieces of `rank`'s owned set inside `query`
    /// (absolute coordinates). For blocked distributions this is at most a
    /// single box; for (block-)cyclic it is the lattice of owned blocks
    /// clipped to the query. Used to build redistribution schedules.
    pub fn pieces(&self, rank: u64, query: &BoundingBox) -> Vec<BoundingBox> {
        let Some(q) = self.domain.intersect(query) else {
            return Vec::new();
        };
        let ndim = self.domain.ndim();
        let g = self.grid.coords_of(rank);
        let mut ranges: Vec<Vec<(u64, u64)>> = Vec::with_capacity(ndim);
        for d in 0..ndim {
            let lo = q.lb(d) - self.domain.lb(d);
            let hi = q.ub(d) - self.domain.lb(d);
            let r = owned_ranges_in(lo, hi, self.block_extent(d), self.grid.dim(d), g[d]);
            if r.is_empty() {
                return Vec::new();
            }
            ranges.push(r);
        }
        let mut out = Vec::new();
        let mut idx = vec![0usize; ndim];
        loop {
            let mut lb = [0u64; MAX_DIMS];
            let mut ub = [0u64; MAX_DIMS];
            for d in 0..ndim {
                let (s, e) = ranges[d][idx[d]];
                lb[d] = s + self.domain.lb(d);
                ub[d] = e + self.domain.lb(d);
            }
            out.push(BoundingBox::new(&lb[..ndim], &ub[..ndim]));
            let mut d = ndim;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if idx[d] + 1 < ranges[d].len() {
                    idx[d] += 1;
                    for cd in d + 1..ndim {
                        idx[cd] = 0;
                    }
                    break;
                }
            }
        }
    }

    /// All pieces of `rank`'s owned set (absolute coordinates).
    pub fn rank_region(&self, rank: u64) -> Vec<BoundingBox> {
        self.pieces(rank, &self.domain)
    }

    /// For blocked distributions, the single box owned by `rank`, if any
    /// (edge ranks of a non-divisible domain may own nothing).
    pub fn blocked_box(&self, rank: u64) -> Option<BoundingBox> {
        debug_assert!(matches!(self.dist, Distribution::Blocked));
        let mut v = self.rank_region(rank);
        debug_assert!(v.len() <= 1);
        v.pop()
    }

    /// Grid coordinates of `rank` (delegates to the grid).
    pub fn coords_of(&self, rank: u64) -> Pt {
        self.grid.coords_of(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d3(sizes: &[u64], procs: &[u64], dist: Distribution) -> Decomposition {
        Decomposition::new(
            BoundingBox::from_sizes(sizes),
            ProcessGrid::new(procs),
            dist,
        )
    }

    #[test]
    fn blocked_regions_tile_domain() {
        let dec = d3(&[8, 8], &[2, 4], Distribution::Blocked);
        let mut total = 0u128;
        for r in 0..dec.num_ranks() {
            let region = dec.rank_region(r);
            assert_eq!(region.len(), 1);
            total += region[0].num_cells();
        }
        assert_eq!(total, 64);
    }

    #[test]
    fn blocked_nondivisible_edge_ranks_shrink() {
        // extent 10 over 4 procs: b=3, coords own 3,3,3,1 positions.
        let dec = d3(&[10], &[4], Distribution::Blocked);
        let sizes: Vec<u128> = (0..4).map(|r| dec.rank_cells(r)).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn blocked_empty_edge_rank() {
        // extent 9 over 4 procs: b=3 -> coord 3 owns nothing.
        let dec = d3(&[9], &[4], Distribution::Blocked);
        assert_eq!(dec.rank_cells(3), 0);
        assert!(dec.rank_region(3).is_empty());
        assert!(dec.blocked_box(3).is_none());
    }

    #[test]
    fn owner_of_point_blocked() {
        let dec = d3(&[8, 8], &[2, 2], Distribution::Blocked);
        assert_eq!(dec.owner_of_point(&[0, 0, 0, 0]), 0);
        assert_eq!(dec.owner_of_point(&[0, 7, 0, 0]), 1);
        assert_eq!(dec.owner_of_point(&[7, 0, 0, 0]), 2);
        assert_eq!(dec.owner_of_point(&[7, 7, 0, 0]), 3);
    }

    #[test]
    fn cyclic_rank_cells_balanced() {
        let dec = d3(&[8, 8], &[2, 2], Distribution::Cyclic);
        for r in 0..4 {
            assert_eq!(dec.rank_cells(r), 16);
        }
    }

    #[test]
    fn overlap_cells_equals_brute_force() {
        for dist in [
            Distribution::Blocked,
            Distribution::Cyclic,
            Distribution::block_cyclic(&[3, 2]),
        ] {
            let dec = d3(&[11, 9], &[3, 2], dist);
            let q = BoundingBox::new(&[2, 1], &[9, 7]);
            for r in 0..dec.num_ranks() {
                let brute = q
                    .iter_points()
                    .filter(|p| dec.owner_of_point(&p[..2]) == r)
                    .count() as u128;
                assert_eq!(dec.overlap_cells(r, &q), brute, "{dist:?} rank {r}");
            }
        }
    }

    #[test]
    fn overlaps_sum_to_query_volume() {
        for dist in [
            Distribution::Blocked,
            Distribution::Cyclic,
            Distribution::block_cyclic(&[2, 3]),
        ] {
            let dec = d3(&[12, 10], &[2, 3], dist);
            let q = BoundingBox::new(&[1, 2], &[10, 9]);
            let total: u128 = dec.overlaps(&q).iter().map(|o| o.cells).sum();
            assert_eq!(total, q.num_cells(), "{dist:?}");
        }
    }

    #[test]
    fn overlaps_of_disjoint_query_is_empty() {
        let dec = d3(&[8, 8], &[2, 2], Distribution::Blocked);
        let q = BoundingBox::new(&[20, 20], &[30, 30]);
        assert!(dec.overlaps(&q).is_empty());
        assert_eq!(dec.overlap_cells(0, &q), 0);
    }

    #[test]
    fn overlaps_clamps_query_to_domain() {
        let dec = d3(&[8, 8], &[2, 2], Distribution::Blocked);
        let q = BoundingBox::new(&[4, 4], &[100, 100]);
        let total: u128 = dec.overlaps(&q).iter().map(|o| o.cells).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn pieces_cover_overlap_exactly() {
        for dist in [
            Distribution::Blocked,
            Distribution::Cyclic,
            Distribution::block_cyclic(&[2, 2]),
        ] {
            let dec = d3(&[9, 8], &[3, 2], dist);
            let q = BoundingBox::new(&[1, 1], &[7, 6]);
            for r in 0..dec.num_ranks() {
                let pieces = dec.pieces(r, &q);
                // Disjoint and total volume matches overlap_cells.
                let vol: u128 = pieces.iter().map(|b| b.num_cells()).sum();
                assert_eq!(vol, dec.overlap_cells(r, &q), "{dist:?} rank {r}");
                for (i, a) in pieces.iter().enumerate() {
                    assert!(q.contains_box(a));
                    for b in &pieces[i + 1..] {
                        assert!(a.intersect(b).is_none(), "pieces overlap");
                    }
                    for p in a.iter_points() {
                        assert_eq!(dec.owner_of_point(&p[..2]), r);
                    }
                }
            }
        }
    }

    #[test]
    fn nonzero_domain_origin() {
        let domain = BoundingBox::new(&[100, 50], &[107, 57]);
        let dec = Decomposition::new(domain, ProcessGrid::new(&[2, 2]), Distribution::Blocked);
        assert_eq!(dec.owner_of_point(&[100, 50, 0, 0]), 0);
        assert_eq!(dec.owner_of_point(&[107, 57, 0, 0]), 3);
        let q = BoundingBox::new(&[100, 50], &[107, 57]);
        let total: u128 = dec.overlaps(&q).iter().map(|o| o.cells).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn block_cyclic_3d_paper_scale_shape() {
        // A miniature of the paper's 3-D configuration.
        let dec = d3(
            &[64, 64, 64],
            &[4, 4, 4],
            Distribution::block_cyclic(&[8, 8, 8]),
        );
        assert_eq!(dec.num_ranks(), 64);
        for r in [0, 13, 63] {
            assert_eq!(dec.rank_cells(r), (64u128 * 64 * 64) / 64);
        }
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rejects_rank_mismatch() {
        Decomposition::new(
            BoundingBox::from_sizes(&[8, 8]),
            ProcessGrid::new(&[2, 2, 2]),
            Distribution::Blocked,
        );
    }
}
