//! n-dimensional domain geometry and data decompositions.
//!
//! This crate provides the geometric substrate used throughout the in-situ
//! workflow framework:
//!
//! * [`BoundingBox`] — axis-aligned boxes with inclusive bounds over an
//!   unsigned integer lattice, the "geometric descriptor" of the paper's
//!   CoDS `put()`/`get()` operators;
//! * [`ProcessGrid`] — the `(p_1, ..., p_n)` process layout of a data
//!   parallel application;
//! * [`Distribution`] — the three distribution types supported by the
//!   framework: blocked, cyclic and block-cyclic;
//! * [`Decomposition`] — a domain + grid + distribution triple that can
//!   answer ownership, overlap-volume and region-enumeration queries, the
//!   inputs for both the inter-application communication graph and the
//!   M×N redistribution schedules;
//! * [`layout`] — row-major linearization and strided sub-box copies used
//!   by the actual data movement;
//! * [`stencil`] — near-neighbor (halo) exchange geometry used to model
//!   intra-application communication.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // odometer/index loops read clearer with explicit dims

pub mod bbox;
pub mod decomp;
pub mod dist;
pub mod grid;
pub mod layout;
pub mod stencil;

pub use bbox::{BoundingBox, Pt, MAX_DIMS};
pub use decomp::{Decomposition, RankOverlap};
pub use dist::Distribution;
pub use grid::ProcessGrid;
