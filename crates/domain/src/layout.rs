//! Row-major linearization of boxes and strided sub-box copies.
//!
//! Data for a box is stored as a dense row-major array (last dimension
//! fastest), the layout a Fortran/C mesh code would register with the
//! framework. Redistribution assembles a destination box from pieces of
//! several source boxes, which is the n-dimensional strided copy
//! implemented here.

use crate::bbox::BoundingBox;

/// Linear index of point `p` inside the dense row-major array of `bbox`.
///
/// # Panics
/// Debug-panics if the point lies outside the box.
#[inline]
pub fn linear_index(bbox: &BoundingBox, p: &[u64]) -> usize {
    debug_assert!(bbox.contains_point(p));
    let mut idx: u64 = 0;
    for d in 0..bbox.ndim() {
        idx = idx * bbox.extent(d) + (p[d] - bbox.lb(d));
    }
    idx as usize
}

/// True when `region` covers every dimension of `b` except possibly the
/// first — then the region is one contiguous run in `b`'s dense array.
#[inline]
fn spans_full_rows(region: &BoundingBox, b: &BoundingBox) -> bool {
    (1..region.ndim()).all(|d| region.lb(d) == b.lb(d) && region.ub(d) == b.ub(d))
}

/// Copy the cells of `region` from the dense array of `src_box` into the
/// dense array of `dst_box`.
///
/// `region` must be contained in both boxes. Rows (runs along the last
/// dimension) are contiguous in both arrays and copied with `copy_from_slice`.
///
/// # Panics
/// Panics if `region` is not contained in both boxes or if array lengths
/// do not match their boxes.
pub fn copy_region<T: Copy>(
    src: &[T],
    src_box: &BoundingBox,
    dst: &mut [T],
    dst_box: &BoundingBox,
    region: &BoundingBox,
) {
    assert_eq!(
        src.len() as u128,
        src_box.num_cells(),
        "src length mismatch"
    );
    assert_eq!(
        dst.len() as u128,
        dst_box.num_cells(),
        "dst length mismatch"
    );
    assert!(src_box.contains_box(region), "region outside src box");
    assert!(dst_box.contains_box(region), "region outside dst box");

    let ndim = region.ndim();

    // Fast path: a region contiguous in both arrays is one memcpy.
    if spans_full_rows(region, src_box) && spans_full_rows(region, dst_box) {
        let n = region.num_cells() as usize;
        let lo = region.lower();
        let s = linear_index(src_box, &lo[..ndim]);
        let d = linear_index(dst_box, &lo[..ndim]);
        dst[d..d + n].copy_from_slice(&src[s..s + n]);
        return;
    }

    let last = ndim - 1;
    let row_len = region.extent(last) as usize;

    // Iterate the region's row starts (all dims except the last, which is
    // covered by the contiguous row copy).
    let mut cur = region.lower();
    loop {
        let s = linear_index(src_box, &cur[..ndim]);
        let d = linear_index(dst_box, &cur[..ndim]);
        dst[d..d + row_len].copy_from_slice(&src[s..s + row_len]);

        // Odometer advance over the prefix dims [0, last).
        let mut advanced = false;
        let mut dd = last;
        while dd > 0 {
            dd -= 1;
            if cur[dd] < region.ub(dd) {
                cur[dd] += 1;
                for cd in dd + 1..last {
                    cur[cd] = region.lb(cd);
                }
                advanced = true;
                break;
            }
            cur[dd] = region.lb(dd);
        }
        if !advanced {
            return;
        }
    }
}

/// Byte-granularity variant of [`copy_region`] for raw buffers holding
/// `elem_bytes`-sized cells. Used to extract coupled-data regions from
/// registered byte buffers without decoding whole pieces.
///
/// # Panics
/// Same containment/length requirements as [`copy_region`], with lengths
/// measured in bytes (`num_cells * elem_bytes`).
pub fn copy_region_bytes(
    src: &[u8],
    src_box: &BoundingBox,
    dst: &mut [u8],
    dst_box: &BoundingBox,
    region: &BoundingBox,
    elem_bytes: usize,
) {
    assert_eq!(
        src.len() as u128,
        src_box.num_cells() * elem_bytes as u128,
        "src length mismatch"
    );
    assert_eq!(
        dst.len() as u128,
        dst_box.num_cells() * elem_bytes as u128,
        "dst length mismatch"
    );
    assert!(src_box.contains_box(region), "region outside src box");
    assert!(dst_box.contains_box(region), "region outside dst box");

    let ndim = region.ndim();

    // Fast path: a region contiguous in both arrays is one memcpy.
    if spans_full_rows(region, src_box) && spans_full_rows(region, dst_box) {
        let n = region.num_cells() as usize * elem_bytes;
        let lo = region.lower();
        let s = linear_index(src_box, &lo[..ndim]) * elem_bytes;
        let d = linear_index(dst_box, &lo[..ndim]) * elem_bytes;
        dst[d..d + n].copy_from_slice(&src[s..s + n]);
        return;
    }

    let last = ndim - 1;
    let row_bytes = region.extent(last) as usize * elem_bytes;
    let mut cur = region.lower();
    loop {
        let s = linear_index(src_box, &cur[..ndim]) * elem_bytes;
        let d = linear_index(dst_box, &cur[..ndim]) * elem_bytes;
        dst[d..d + row_bytes].copy_from_slice(&src[s..s + row_bytes]);

        let mut advanced = false;
        let mut dd = last;
        while dd > 0 {
            dd -= 1;
            if cur[dd] < region.ub(dd) {
                cur[dd] += 1;
                for cd in dd + 1..last {
                    cur[cd] = region.lb(cd);
                }
                advanced = true;
                break;
            }
            cur[dd] = region.lb(dd);
        }
        if !advanced {
            return;
        }
    }
}

/// Fill the dense array of `bbox` with `f(point)` evaluated at every cell,
/// row-major. Used by tests and the synthetic workloads to create
/// verifiable data.
pub fn fill_with<T, F: FnMut(&[u64]) -> T>(bbox: &BoundingBox, mut f: F) -> Vec<T> {
    let mut out = Vec::with_capacity(bbox.num_cells() as usize);
    for p in bbox.iter_points() {
        out.push(f(&p[..bbox.ndim()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BoundingBox;

    #[test]
    fn linear_index_row_major() {
        let b = BoundingBox::new(&[0, 0], &[2, 3]);
        assert_eq!(linear_index(&b, &[0, 0]), 0);
        assert_eq!(linear_index(&b, &[0, 3]), 3);
        assert_eq!(linear_index(&b, &[1, 0]), 4);
        assert_eq!(linear_index(&b, &[2, 3]), 11);
    }

    #[test]
    fn linear_index_respects_origin() {
        let b = BoundingBox::new(&[5, 10], &[7, 13]);
        assert_eq!(linear_index(&b, &[5, 10]), 0);
        assert_eq!(linear_index(&b, &[6, 10]), 4);
    }

    fn tag(p: &[u64]) -> u64 {
        p.iter().fold(1u64, |a, &x| a * 1000 + x)
    }

    #[test]
    fn copy_region_2d() {
        let src_box = BoundingBox::new(&[0, 0], &[7, 7]);
        let dst_box = BoundingBox::new(&[4, 4], &[11, 11]);
        let region = BoundingBox::new(&[5, 4], &[7, 7]);
        let src = fill_with(&src_box, tag);
        let mut dst = vec![0u64; dst_box.num_cells() as usize];
        copy_region(&src, &src_box, &mut dst, &dst_box, &region);
        for p in dst_box.iter_points() {
            let expect = if region.contains_point(&p) {
                tag(&p[..2])
            } else {
                0
            };
            assert_eq!(dst[linear_index(&dst_box, &p[..2])], expect, "at {p:?}");
        }
    }

    #[test]
    fn copy_region_3d() {
        let src_box = BoundingBox::new(&[0, 0, 0], &[3, 3, 3]);
        let dst_box = BoundingBox::new(&[2, 2, 2], &[5, 5, 5]);
        let region = BoundingBox::new(&[2, 2, 2], &[3, 3, 3]);
        let src = fill_with(&src_box, tag);
        let mut dst = vec![0u64; dst_box.num_cells() as usize];
        copy_region(&src, &src_box, &mut dst, &dst_box, &region);
        for p in region.iter_points() {
            assert_eq!(dst[linear_index(&dst_box, &p[..3])], tag(&p[..3]));
        }
        // Outside the region must stay zero.
        let untouched = dst_box
            .iter_points()
            .filter(|p| !region.contains_point(p))
            .map(|p| dst[linear_index(&dst_box, &p[..3])])
            .all(|v| v == 0);
        assert!(untouched);
    }

    #[test]
    fn copy_region_1d() {
        let src_box = BoundingBox::new(&[0], &[9]);
        let dst_box = BoundingBox::new(&[5], &[14]);
        let region = BoundingBox::new(&[5], &[9]);
        let src: Vec<u64> = (0..10).collect();
        let mut dst = vec![0u64; 10];
        copy_region(&src, &src_box, &mut dst, &dst_box, &region);
        assert_eq!(&dst[..5], &[5, 6, 7, 8, 9]);
        assert_eq!(&dst[5..], &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn copy_region_full_overlap_is_identity() {
        let b = BoundingBox::new(&[0, 0, 0], &[2, 2, 2]);
        let src = fill_with(&b, tag);
        let mut dst = vec![0u64; src.len()];
        copy_region(&src, &b, &mut dst, &b, &b);
        assert_eq!(src, dst);
    }

    #[test]
    #[should_panic(expected = "region outside src box")]
    fn copy_region_rejects_bad_region() {
        let a = BoundingBox::new(&[0], &[3]);
        let b = BoundingBox::new(&[0], &[9]);
        let src = vec![0u64; 4];
        let mut dst = vec![0u64; 10];
        copy_region(&src, &a, &mut dst, &b, &BoundingBox::new(&[2], &[5]));
    }

    #[test]
    fn copy_region_bytes_matches_typed_copy() {
        let src_box = BoundingBox::new(&[0, 0], &[5, 5]);
        let dst_box = BoundingBox::new(&[2, 2], &[7, 7]);
        let region = BoundingBox::new(&[2, 2], &[5, 5]);
        let src: Vec<u64> = fill_with(&src_box, tag);
        let mut dst_typed = vec![0u64; dst_box.num_cells() as usize];
        copy_region(&src, &src_box, &mut dst_typed, &dst_box, &region);

        let src_bytes: Vec<u8> = src.iter().flat_map(|v| v.to_ne_bytes()).collect();
        let mut dst_bytes = vec![0u8; dst_box.num_cells() as usize * 8];
        copy_region_bytes(&src_bytes, &src_box, &mut dst_bytes, &dst_box, &region, 8);
        let dst_decoded: Vec<u64> = dst_bytes
            .chunks_exact(8)
            .map(|c| u64::from_ne_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(dst_typed, dst_decoded);
    }

    #[test]
    fn copy_region_bytes_elem_size_1() {
        let b = BoundingBox::new(&[0, 0], &[1, 1]);
        let src = vec![1u8, 2, 3, 4];
        let mut dst = vec![0u8; 4];
        copy_region_bytes(&src, &b, &mut dst, &b, &b, 1);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "src length mismatch")]
    fn copy_region_bytes_rejects_bad_length() {
        let b = BoundingBox::new(&[0], &[3]);
        let src = vec![0u8; 4];
        let mut dst = vec![0u8; 32];
        copy_region_bytes(&src, &b, &mut dst, &b, &b, 8);
    }

    #[test]
    #[should_panic(expected = "src length mismatch")]
    fn copy_region_rejects_bad_length() {
        let a = BoundingBox::new(&[0], &[3]);
        let src = vec![0u64; 3];
        let mut dst = vec![0u64; 4];
        copy_region(&src, &a, &mut dst, &a, &a);
    }
}
