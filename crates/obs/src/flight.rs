//! The bounded lock-sharded flight recorder.
//!
//! [`FlightRecorder`] mirrors the telemetry `Recorder` facade: it is a
//! thin `Option<Arc<..>>`, cheap to clone, and every operation on a
//! disabled recorder is a no-op. Events land in one of [`SHARDS`]
//! mutex-protected vectors selected by the event's track, so producer
//! and consumer threads rarely contend on the same lock. Each shard is
//! bounded; once full, *new* events are counted as dropped and
//! discarded — keeping the earliest iterations' causal chains complete,
//! which is what the critical-path profiler needs most.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::Event;

/// Default total event capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Number of lock shards.
const SHARDS: usize = 16;

struct Inner {
    epoch: Instant,
    seq: AtomicU64,
    shards: Vec<Mutex<Vec<Event>>>,
    shard_capacity: usize,
    dropped: AtomicU64,
}

/// Per-run causal event log.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl FlightRecorder {
    /// A recorder that records nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// A live recorder with [`DEFAULT_EVENT_CAPACITY`].
    pub fn enabled() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A live recorder holding at most `capacity` events in total.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let shard_capacity = capacity.div_ceil(SHARDS).max(1);
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
                shard_capacity,
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this recorder is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the recorder was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Allocate the next sequence number (1-based; 0 when disabled).
    ///
    /// Sequence numbers are handed out at event *start* so child events
    /// can reference a still-open parent.
    pub fn next_seq(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Record an event (no-op when disabled; counted as dropped when
    /// the target shard is full).
    pub fn record(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let shard = &inner.shards[event.track() as usize % SHARDS];
        let mut events = shard.lock().unwrap();
        if events.len() >= inner.shard_capacity {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    /// Events discarded because their shard was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| {
            i.shards.iter().map(|s| s.lock().unwrap().len()).sum()
        })
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out all events ordered by sequence number.
    pub fn snapshot(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut all: Vec<Event> = inner
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap().clone())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn disabled_recorder_is_inert() {
        let f = FlightRecorder::disabled();
        assert!(!f.is_enabled());
        assert_eq!(f.next_seq(), 0);
        f.record(Event::new(0, EventKind::Get { cont: true }));
        assert!(f.is_empty());
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.now_us(), 0);
    }

    #[test]
    fn snapshot_orders_across_shards() {
        let f = FlightRecorder::enabled();
        // Different dst → different shards; seq order must still hold.
        for dst in [3u32, 1, 7, 2] {
            let seq = f.next_seq();
            f.record(Event::new(seq, EventKind::Get { cont: true }).dst(dst));
        }
        let seqs: Vec<u64> = f.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bounded_log_drops_newest() {
        let f = FlightRecorder::with_capacity(SHARDS); // one event per shard
        for i in 0..3 {
            let seq = f.next_seq();
            f.record(
                Event::new(seq, EventKind::Put { indexed: false })
                    .src(5)
                    .piece(i),
            );
        }
        assert_eq!(f.len(), 1);
        assert_eq!(f.dropped(), 2);
        // The earliest event survives.
        assert_eq!(f.snapshot()[0].piece, 0);
    }

    #[test]
    fn concurrent_recording_is_lossless_under_capacity() {
        let f = FlightRecorder::enabled();
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let seq = f.next_seq();
                    f.record(Event::new(seq, EventKind::Pull { wait_us: 1 }).dst(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 4000);
        assert_eq!(f.dropped(), 0);
        let snap = f.snapshot();
        // Sequence numbers are unique and sorted.
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
